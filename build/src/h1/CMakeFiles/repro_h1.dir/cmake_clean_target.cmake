file(REMOVE_RECURSE
  "librepro_h1.a"
)
