# Empty compiler generated dependencies file for repro_h1.
# This may be replaced when dependencies are built.
