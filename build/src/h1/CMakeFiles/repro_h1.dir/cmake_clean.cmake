file(REMOVE_RECURSE
  "CMakeFiles/repro_h1.dir/message.cc.o"
  "CMakeFiles/repro_h1.dir/message.cc.o.d"
  "CMakeFiles/repro_h1.dir/server.cc.o"
  "CMakeFiles/repro_h1.dir/server.cc.o.d"
  "librepro_h1.a"
  "librepro_h1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_h1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
