file(REMOVE_RECURSE
  "librepro_h2.a"
)
