
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/h2/connection.cc" "src/h2/CMakeFiles/repro_h2.dir/connection.cc.o" "gcc" "src/h2/CMakeFiles/repro_h2.dir/connection.cc.o.d"
  "/root/repo/src/h2/flow_control.cc" "src/h2/CMakeFiles/repro_h2.dir/flow_control.cc.o" "gcc" "src/h2/CMakeFiles/repro_h2.dir/flow_control.cc.o.d"
  "/root/repo/src/h2/frame.cc" "src/h2/CMakeFiles/repro_h2.dir/frame.cc.o" "gcc" "src/h2/CMakeFiles/repro_h2.dir/frame.cc.o.d"
  "/root/repo/src/h2/origin_set.cc" "src/h2/CMakeFiles/repro_h2.dir/origin_set.cc.o" "gcc" "src/h2/CMakeFiles/repro_h2.dir/origin_set.cc.o.d"
  "/root/repo/src/h2/secondary_certs.cc" "src/h2/CMakeFiles/repro_h2.dir/secondary_certs.cc.o" "gcc" "src/h2/CMakeFiles/repro_h2.dir/secondary_certs.cc.o.d"
  "/root/repo/src/h2/settings.cc" "src/h2/CMakeFiles/repro_h2.dir/settings.cc.o" "gcc" "src/h2/CMakeFiles/repro_h2.dir/settings.cc.o.d"
  "/root/repo/src/h2/stream.cc" "src/h2/CMakeFiles/repro_h2.dir/stream.cc.o" "gcc" "src/h2/CMakeFiles/repro_h2.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpack/CMakeFiles/repro_hpack.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
