file(REMOVE_RECURSE
  "CMakeFiles/repro_h2.dir/connection.cc.o"
  "CMakeFiles/repro_h2.dir/connection.cc.o.d"
  "CMakeFiles/repro_h2.dir/flow_control.cc.o"
  "CMakeFiles/repro_h2.dir/flow_control.cc.o.d"
  "CMakeFiles/repro_h2.dir/frame.cc.o"
  "CMakeFiles/repro_h2.dir/frame.cc.o.d"
  "CMakeFiles/repro_h2.dir/origin_set.cc.o"
  "CMakeFiles/repro_h2.dir/origin_set.cc.o.d"
  "CMakeFiles/repro_h2.dir/secondary_certs.cc.o"
  "CMakeFiles/repro_h2.dir/secondary_certs.cc.o.d"
  "CMakeFiles/repro_h2.dir/settings.cc.o"
  "CMakeFiles/repro_h2.dir/settings.cc.o.d"
  "CMakeFiles/repro_h2.dir/stream.cc.o"
  "CMakeFiles/repro_h2.dir/stream.cc.o.d"
  "librepro_h2.a"
  "librepro_h2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_h2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
