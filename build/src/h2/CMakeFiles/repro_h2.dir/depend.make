# Empty dependencies file for repro_h2.
# This may be replaced when dependencies are built.
