# CMake generated Testfile for 
# Source directory: /root/repo/src/hpack
# Build directory: /root/repo/build/src/hpack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
