file(REMOVE_RECURSE
  "CMakeFiles/repro_hpack.dir/hpack.cc.o"
  "CMakeFiles/repro_hpack.dir/hpack.cc.o.d"
  "CMakeFiles/repro_hpack.dir/huffman.cc.o"
  "CMakeFiles/repro_hpack.dir/huffman.cc.o.d"
  "CMakeFiles/repro_hpack.dir/integer.cc.o"
  "CMakeFiles/repro_hpack.dir/integer.cc.o.d"
  "CMakeFiles/repro_hpack.dir/tables.cc.o"
  "CMakeFiles/repro_hpack.dir/tables.cc.o.d"
  "librepro_hpack.a"
  "librepro_hpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_hpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
