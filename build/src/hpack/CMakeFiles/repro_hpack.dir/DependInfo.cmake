
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpack/hpack.cc" "src/hpack/CMakeFiles/repro_hpack.dir/hpack.cc.o" "gcc" "src/hpack/CMakeFiles/repro_hpack.dir/hpack.cc.o.d"
  "/root/repo/src/hpack/huffman.cc" "src/hpack/CMakeFiles/repro_hpack.dir/huffman.cc.o" "gcc" "src/hpack/CMakeFiles/repro_hpack.dir/huffman.cc.o.d"
  "/root/repo/src/hpack/integer.cc" "src/hpack/CMakeFiles/repro_hpack.dir/integer.cc.o" "gcc" "src/hpack/CMakeFiles/repro_hpack.dir/integer.cc.o.d"
  "/root/repo/src/hpack/tables.cc" "src/hpack/CMakeFiles/repro_hpack.dir/tables.cc.o" "gcc" "src/hpack/CMakeFiles/repro_hpack.dir/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
