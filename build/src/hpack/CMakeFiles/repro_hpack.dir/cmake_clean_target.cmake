file(REMOVE_RECURSE
  "librepro_hpack.a"
)
