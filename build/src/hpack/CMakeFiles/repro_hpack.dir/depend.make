# Empty dependencies file for repro_hpack.
# This may be replaced when dependencies are built.
