file(REMOVE_RECURSE
  "librepro_tls.a"
)
