# Empty dependencies file for repro_tls.
# This may be replaced when dependencies are built.
