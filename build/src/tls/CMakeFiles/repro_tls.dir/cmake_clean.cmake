file(REMOVE_RECURSE
  "CMakeFiles/repro_tls.dir/ca.cc.o"
  "CMakeFiles/repro_tls.dir/ca.cc.o.d"
  "CMakeFiles/repro_tls.dir/certificate.cc.o"
  "CMakeFiles/repro_tls.dir/certificate.cc.o.d"
  "CMakeFiles/repro_tls.dir/handshake.cc.o"
  "CMakeFiles/repro_tls.dir/handshake.cc.o.d"
  "CMakeFiles/repro_tls.dir/ocsp.cc.o"
  "CMakeFiles/repro_tls.dir/ocsp.cc.o.d"
  "CMakeFiles/repro_tls.dir/sni.cc.o"
  "CMakeFiles/repro_tls.dir/sni.cc.o.d"
  "librepro_tls.a"
  "librepro_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
