
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/ca.cc" "src/tls/CMakeFiles/repro_tls.dir/ca.cc.o" "gcc" "src/tls/CMakeFiles/repro_tls.dir/ca.cc.o.d"
  "/root/repo/src/tls/certificate.cc" "src/tls/CMakeFiles/repro_tls.dir/certificate.cc.o" "gcc" "src/tls/CMakeFiles/repro_tls.dir/certificate.cc.o.d"
  "/root/repo/src/tls/handshake.cc" "src/tls/CMakeFiles/repro_tls.dir/handshake.cc.o" "gcc" "src/tls/CMakeFiles/repro_tls.dir/handshake.cc.o.d"
  "/root/repo/src/tls/ocsp.cc" "src/tls/CMakeFiles/repro_tls.dir/ocsp.cc.o" "gcc" "src/tls/CMakeFiles/repro_tls.dir/ocsp.cc.o.d"
  "/root/repo/src/tls/sni.cc" "src/tls/CMakeFiles/repro_tls.dir/sni.cc.o" "gcc" "src/tls/CMakeFiles/repro_tls.dir/sni.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
