file(REMOVE_RECURSE
  "CMakeFiles/repro_web.dir/har.cc.o"
  "CMakeFiles/repro_web.dir/har.cc.o.d"
  "CMakeFiles/repro_web.dir/har_json.cc.o"
  "CMakeFiles/repro_web.dir/har_json.cc.o.d"
  "CMakeFiles/repro_web.dir/resource.cc.o"
  "CMakeFiles/repro_web.dir/resource.cc.o.d"
  "librepro_web.a"
  "librepro_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
