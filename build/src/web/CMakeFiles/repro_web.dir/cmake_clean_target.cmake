file(REMOVE_RECURSE
  "librepro_web.a"
)
