# Empty compiler generated dependencies file for repro_web.
# This may be replaced when dependencies are built.
