
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/har.cc" "src/web/CMakeFiles/repro_web.dir/har.cc.o" "gcc" "src/web/CMakeFiles/repro_web.dir/har.cc.o.d"
  "/root/repo/src/web/har_json.cc" "src/web/CMakeFiles/repro_web.dir/har_json.cc.o" "gcc" "src/web/CMakeFiles/repro_web.dir/har_json.cc.o.d"
  "/root/repo/src/web/resource.cc" "src/web/CMakeFiles/repro_web.dir/resource.cc.o" "gcc" "src/web/CMakeFiles/repro_web.dir/resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/repro_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
