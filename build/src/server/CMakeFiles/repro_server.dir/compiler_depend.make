# Empty compiler generated dependencies file for repro_server.
# This may be replaced when dependencies are built.
