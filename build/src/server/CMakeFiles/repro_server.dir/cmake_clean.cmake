file(REMOVE_RECURSE
  "CMakeFiles/repro_server.dir/http2_server.cc.o"
  "CMakeFiles/repro_server.dir/http2_server.cc.o.d"
  "librepro_server.a"
  "librepro_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
