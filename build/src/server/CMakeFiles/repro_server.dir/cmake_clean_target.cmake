file(REMOVE_RECURSE
  "librepro_server.a"
)
