# Empty compiler generated dependencies file for repro_model.
# This may be replaced when dependencies are built.
