file(REMOVE_RECURSE
  "librepro_model.a"
)
