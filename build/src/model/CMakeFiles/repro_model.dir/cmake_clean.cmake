file(REMOVE_RECURSE
  "CMakeFiles/repro_model.dir/cert_planner.cc.o"
  "CMakeFiles/repro_model.dir/cert_planner.cc.o.d"
  "CMakeFiles/repro_model.dir/coalescing_model.cc.o"
  "CMakeFiles/repro_model.dir/coalescing_model.cc.o.d"
  "librepro_model.a"
  "librepro_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
