
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/record.cc" "src/dns/CMakeFiles/repro_dns.dir/record.cc.o" "gcc" "src/dns/CMakeFiles/repro_dns.dir/record.cc.o.d"
  "/root/repo/src/dns/resolver.cc" "src/dns/CMakeFiles/repro_dns.dir/resolver.cc.o" "gcc" "src/dns/CMakeFiles/repro_dns.dir/resolver.cc.o.d"
  "/root/repo/src/dns/zone.cc" "src/dns/CMakeFiles/repro_dns.dir/zone.cc.o" "gcc" "src/dns/CMakeFiles/repro_dns.dir/zone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
