file(REMOVE_RECURSE
  "CMakeFiles/repro_dns.dir/record.cc.o"
  "CMakeFiles/repro_dns.dir/record.cc.o.d"
  "CMakeFiles/repro_dns.dir/resolver.cc.o"
  "CMakeFiles/repro_dns.dir/resolver.cc.o.d"
  "CMakeFiles/repro_dns.dir/zone.cc.o"
  "CMakeFiles/repro_dns.dir/zone.cc.o.d"
  "librepro_dns.a"
  "librepro_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
