# Empty dependencies file for repro_dns.
# This may be replaced when dependencies are built.
