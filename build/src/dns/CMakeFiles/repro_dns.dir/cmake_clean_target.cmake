file(REMOVE_RECURSE
  "librepro_dns.a"
)
