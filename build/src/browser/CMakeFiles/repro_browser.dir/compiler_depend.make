# Empty compiler generated dependencies file for repro_browser.
# This may be replaced when dependencies are built.
