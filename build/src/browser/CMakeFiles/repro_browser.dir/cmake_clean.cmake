file(REMOVE_RECURSE
  "CMakeFiles/repro_browser.dir/environment.cc.o"
  "CMakeFiles/repro_browser.dir/environment.cc.o.d"
  "CMakeFiles/repro_browser.dir/page_loader.cc.o"
  "CMakeFiles/repro_browser.dir/page_loader.cc.o.d"
  "CMakeFiles/repro_browser.dir/policy.cc.o"
  "CMakeFiles/repro_browser.dir/policy.cc.o.d"
  "CMakeFiles/repro_browser.dir/wire_client.cc.o"
  "CMakeFiles/repro_browser.dir/wire_client.cc.o.d"
  "librepro_browser.a"
  "librepro_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
