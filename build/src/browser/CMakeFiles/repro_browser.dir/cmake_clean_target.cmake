file(REMOVE_RECURSE
  "librepro_browser.a"
)
