file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/bytes.cc.o"
  "CMakeFiles/repro_util.dir/bytes.cc.o.d"
  "CMakeFiles/repro_util.dir/json.cc.o"
  "CMakeFiles/repro_util.dir/json.cc.o.d"
  "CMakeFiles/repro_util.dir/rng.cc.o"
  "CMakeFiles/repro_util.dir/rng.cc.o.d"
  "CMakeFiles/repro_util.dir/stats.cc.o"
  "CMakeFiles/repro_util.dir/stats.cc.o.d"
  "CMakeFiles/repro_util.dir/strings.cc.o"
  "CMakeFiles/repro_util.dir/strings.cc.o.d"
  "CMakeFiles/repro_util.dir/table.cc.o"
  "CMakeFiles/repro_util.dir/table.cc.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
