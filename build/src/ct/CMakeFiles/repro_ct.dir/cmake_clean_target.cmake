file(REMOVE_RECURSE
  "librepro_ct.a"
)
