
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ct/ct_log.cc" "src/ct/CMakeFiles/repro_ct.dir/ct_log.cc.o" "gcc" "src/ct/CMakeFiles/repro_ct.dir/ct_log.cc.o.d"
  "/root/repo/src/ct/merkle.cc" "src/ct/CMakeFiles/repro_ct.dir/merkle.cc.o" "gcc" "src/ct/CMakeFiles/repro_ct.dir/merkle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
