file(REMOVE_RECURSE
  "CMakeFiles/repro_ct.dir/ct_log.cc.o"
  "CMakeFiles/repro_ct.dir/ct_log.cc.o.d"
  "CMakeFiles/repro_ct.dir/merkle.cc.o"
  "CMakeFiles/repro_ct.dir/merkle.cc.o.d"
  "librepro_ct.a"
  "librepro_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
