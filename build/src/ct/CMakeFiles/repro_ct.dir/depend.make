# Empty dependencies file for repro_ct.
# This may be replaced when dependencies are built.
