# CMake generated Testfile for 
# Source directory: /root/repo/src/ct
# Build directory: /root/repo/build/src/ct
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
