# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("hpack")
subdirs("h2")
subdirs("tls")
subdirs("dns")
subdirs("netsim")
subdirs("web")
subdirs("server")
subdirs("browser")
subdirs("dataset")
subdirs("model")
subdirs("measure")
subdirs("cdn")
subdirs("ct")
subdirs("h1")
