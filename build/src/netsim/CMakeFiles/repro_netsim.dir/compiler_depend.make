# Empty compiler generated dependencies file for repro_netsim.
# This may be replaced when dependencies are built.
