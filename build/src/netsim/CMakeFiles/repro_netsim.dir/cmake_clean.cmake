file(REMOVE_RECURSE
  "CMakeFiles/repro_netsim.dir/middleboxes.cc.o"
  "CMakeFiles/repro_netsim.dir/middleboxes.cc.o.d"
  "CMakeFiles/repro_netsim.dir/network.cc.o"
  "CMakeFiles/repro_netsim.dir/network.cc.o.d"
  "CMakeFiles/repro_netsim.dir/simulator.cc.o"
  "CMakeFiles/repro_netsim.dir/simulator.cc.o.d"
  "librepro_netsim.a"
  "librepro_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
