
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/middleboxes.cc" "src/netsim/CMakeFiles/repro_netsim.dir/middleboxes.cc.o" "gcc" "src/netsim/CMakeFiles/repro_netsim.dir/middleboxes.cc.o.d"
  "/root/repo/src/netsim/network.cc" "src/netsim/CMakeFiles/repro_netsim.dir/network.cc.o" "gcc" "src/netsim/CMakeFiles/repro_netsim.dir/network.cc.o.d"
  "/root/repo/src/netsim/simulator.cc" "src/netsim/CMakeFiles/repro_netsim.dir/simulator.cc.o" "gcc" "src/netsim/CMakeFiles/repro_netsim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/repro_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/h2/CMakeFiles/repro_h2.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hpack/CMakeFiles/repro_hpack.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
