file(REMOVE_RECURSE
  "librepro_netsim.a"
)
