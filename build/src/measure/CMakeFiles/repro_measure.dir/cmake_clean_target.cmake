file(REMOVE_RECURSE
  "librepro_measure.a"
)
