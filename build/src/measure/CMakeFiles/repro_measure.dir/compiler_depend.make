# Empty compiler generated dependencies file for repro_measure.
# This may be replaced when dependencies are built.
