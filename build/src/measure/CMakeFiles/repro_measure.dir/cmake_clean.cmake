file(REMOVE_RECURSE
  "CMakeFiles/repro_measure.dir/passive.cc.o"
  "CMakeFiles/repro_measure.dir/passive.cc.o.d"
  "CMakeFiles/repro_measure.dir/reports.cc.o"
  "CMakeFiles/repro_measure.dir/reports.cc.o.d"
  "librepro_measure.a"
  "librepro_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
