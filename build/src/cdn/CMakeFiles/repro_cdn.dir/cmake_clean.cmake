file(REMOVE_RECURSE
  "CMakeFiles/repro_cdn.dir/deployment.cc.o"
  "CMakeFiles/repro_cdn.dir/deployment.cc.o.d"
  "librepro_cdn.a"
  "librepro_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
