file(REMOVE_RECURSE
  "librepro_cdn.a"
)
