# Empty compiler generated dependencies file for repro_cdn.
# This may be replaced when dependencies are built.
