file(REMOVE_RECURSE
  "librepro_dataset.a"
)
