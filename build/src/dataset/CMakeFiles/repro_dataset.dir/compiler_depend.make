# Empty compiler generated dependencies file for repro_dataset.
# This may be replaced when dependencies are built.
