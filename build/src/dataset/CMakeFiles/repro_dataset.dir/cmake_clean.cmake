file(REMOVE_RECURSE
  "CMakeFiles/repro_dataset.dir/catalog.cc.o"
  "CMakeFiles/repro_dataset.dir/catalog.cc.o.d"
  "CMakeFiles/repro_dataset.dir/collector.cc.o"
  "CMakeFiles/repro_dataset.dir/collector.cc.o.d"
  "CMakeFiles/repro_dataset.dir/generator.cc.o"
  "CMakeFiles/repro_dataset.dir/generator.cc.o.d"
  "librepro_dataset.a"
  "librepro_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
