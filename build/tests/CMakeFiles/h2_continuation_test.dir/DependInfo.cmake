
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/h2_continuation_test.cc" "tests/CMakeFiles/h2_continuation_test.dir/h2_continuation_test.cc.o" "gcc" "tests/CMakeFiles/h2_continuation_test.dir/h2_continuation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/h2/CMakeFiles/repro_h2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpack/CMakeFiles/repro_hpack.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
