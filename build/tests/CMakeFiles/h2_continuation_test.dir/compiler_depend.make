# Empty compiler generated dependencies file for h2_continuation_test.
# This may be replaced when dependencies are built.
