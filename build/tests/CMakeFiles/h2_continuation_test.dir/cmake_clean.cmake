file(REMOVE_RECURSE
  "CMakeFiles/h2_continuation_test.dir/h2_continuation_test.cc.o"
  "CMakeFiles/h2_continuation_test.dir/h2_continuation_test.cc.o.d"
  "h2_continuation_test"
  "h2_continuation_test.pdb"
  "h2_continuation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_continuation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
