file(REMOVE_RECURSE
  "CMakeFiles/tls_test.dir/tls_test.cc.o"
  "CMakeFiles/tls_test.dir/tls_test.cc.o.d"
  "tls_test"
  "tls_test.pdb"
  "tls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
