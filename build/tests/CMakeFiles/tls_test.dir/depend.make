# Empty dependencies file for tls_test.
# This may be replaced when dependencies are built.
