# Empty compiler generated dependencies file for ocsp_test.
# This may be replaced when dependencies are built.
