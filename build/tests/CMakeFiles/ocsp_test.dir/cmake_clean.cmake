file(REMOVE_RECURSE
  "CMakeFiles/ocsp_test.dir/ocsp_test.cc.o"
  "CMakeFiles/ocsp_test.dir/ocsp_test.cc.o.d"
  "ocsp_test"
  "ocsp_test.pdb"
  "ocsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
