# Empty dependencies file for hpack_test.
# This may be replaced when dependencies are built.
