file(REMOVE_RECURSE
  "CMakeFiles/hpack_test.dir/hpack_test.cc.o"
  "CMakeFiles/hpack_test.dir/hpack_test.cc.o.d"
  "hpack_test"
  "hpack_test.pdb"
  "hpack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
