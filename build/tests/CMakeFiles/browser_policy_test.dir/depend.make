# Empty dependencies file for browser_policy_test.
# This may be replaced when dependencies are built.
