file(REMOVE_RECURSE
  "CMakeFiles/browser_policy_test.dir/browser_policy_test.cc.o"
  "CMakeFiles/browser_policy_test.dir/browser_policy_test.cc.o.d"
  "browser_policy_test"
  "browser_policy_test.pdb"
  "browser_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
