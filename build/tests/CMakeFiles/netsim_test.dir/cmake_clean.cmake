file(REMOVE_RECURSE
  "CMakeFiles/netsim_test.dir/netsim_test.cc.o"
  "CMakeFiles/netsim_test.dir/netsim_test.cc.o.d"
  "netsim_test"
  "netsim_test.pdb"
  "netsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
