file(REMOVE_RECURSE
  "CMakeFiles/h1_test.dir/h1_test.cc.o"
  "CMakeFiles/h1_test.dir/h1_test.cc.o.d"
  "h1_test"
  "h1_test.pdb"
  "h1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
