# Empty dependencies file for h1_test.
# This may be replaced when dependencies are built.
