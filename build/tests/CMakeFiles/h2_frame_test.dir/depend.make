# Empty dependencies file for h2_frame_test.
# This may be replaced when dependencies are built.
