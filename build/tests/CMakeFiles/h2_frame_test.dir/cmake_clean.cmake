file(REMOVE_RECURSE
  "CMakeFiles/h2_frame_test.dir/h2_frame_test.cc.o"
  "CMakeFiles/h2_frame_test.dir/h2_frame_test.cc.o.d"
  "h2_frame_test"
  "h2_frame_test.pdb"
  "h2_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
