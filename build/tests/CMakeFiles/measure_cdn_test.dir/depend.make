# Empty dependencies file for measure_cdn_test.
# This may be replaced when dependencies are built.
