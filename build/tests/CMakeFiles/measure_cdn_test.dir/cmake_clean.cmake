file(REMOVE_RECURSE
  "CMakeFiles/measure_cdn_test.dir/measure_cdn_test.cc.o"
  "CMakeFiles/measure_cdn_test.dir/measure_cdn_test.cc.o.d"
  "measure_cdn_test"
  "measure_cdn_test.pdb"
  "measure_cdn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_cdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
