# Empty compiler generated dependencies file for h2_connection_test.
# This may be replaced when dependencies are built.
