file(REMOVE_RECURSE
  "CMakeFiles/h2_connection_test.dir/h2_connection_test.cc.o"
  "CMakeFiles/h2_connection_test.dir/h2_connection_test.cc.o.d"
  "h2_connection_test"
  "h2_connection_test.pdb"
  "h2_connection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
