file(REMOVE_RECURSE
  "CMakeFiles/secondary_certs_test.dir/secondary_certs_test.cc.o"
  "CMakeFiles/secondary_certs_test.dir/secondary_certs_test.cc.o.d"
  "secondary_certs_test"
  "secondary_certs_test.pdb"
  "secondary_certs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secondary_certs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
