# Empty dependencies file for secondary_certs_test.
# This may be replaced when dependencies are built.
