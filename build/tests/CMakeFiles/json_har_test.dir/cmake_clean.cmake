file(REMOVE_RECURSE
  "CMakeFiles/json_har_test.dir/json_har_test.cc.o"
  "CMakeFiles/json_har_test.dir/json_har_test.cc.o.d"
  "json_har_test"
  "json_har_test.pdb"
  "json_har_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_har_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
