# Empty dependencies file for loader_property_test.
# This may be replaced when dependencies are built.
