file(REMOVE_RECURSE
  "CMakeFiles/loader_property_test.dir/loader_property_test.cc.o"
  "CMakeFiles/loader_property_test.dir/loader_property_test.cc.o.d"
  "loader_property_test"
  "loader_property_test.pdb"
  "loader_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loader_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
