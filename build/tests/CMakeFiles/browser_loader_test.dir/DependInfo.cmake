
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/browser_loader_test.cc" "tests/CMakeFiles/browser_loader_test.dir/browser_loader_test.cc.o" "gcc" "tests/CMakeFiles/browser_loader_test.dir/browser_loader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/browser/CMakeFiles/repro_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/repro_server.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/repro_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/h2/CMakeFiles/repro_h2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpack/CMakeFiles/repro_hpack.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/repro_web.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/repro_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
