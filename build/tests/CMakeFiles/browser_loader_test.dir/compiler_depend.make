# Empty compiler generated dependencies file for browser_loader_test.
# This may be replaced when dependencies are built.
