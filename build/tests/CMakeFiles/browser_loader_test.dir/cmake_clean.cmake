file(REMOVE_RECURSE
  "CMakeFiles/browser_loader_test.dir/browser_loader_test.cc.o"
  "CMakeFiles/browser_loader_test.dir/browser_loader_test.cc.o.d"
  "browser_loader_test"
  "browser_loader_test.pdb"
  "browser_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
