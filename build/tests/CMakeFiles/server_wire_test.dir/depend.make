# Empty dependencies file for server_wire_test.
# This may be replaced when dependencies are built.
