file(REMOVE_RECURSE
  "CMakeFiles/server_wire_test.dir/server_wire_test.cc.o"
  "CMakeFiles/server_wire_test.dir/server_wire_test.cc.o.d"
  "server_wire_test"
  "server_wire_test.pdb"
  "server_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
