
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/web_test.cc" "tests/CMakeFiles/web_test.dir/web_test.cc.o" "gcc" "tests/CMakeFiles/web_test.dir/web_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/repro_web.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/repro_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
