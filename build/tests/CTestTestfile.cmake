# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/hpack_test[1]_include.cmake")
include("/root/repo/build/tests/h2_frame_test[1]_include.cmake")
include("/root/repo/build/tests/h2_connection_test[1]_include.cmake")
include("/root/repo/build/tests/tls_test[1]_include.cmake")
include("/root/repo/build/tests/dns_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/browser_policy_test[1]_include.cmake")
include("/root/repo/build/tests/browser_loader_test[1]_include.cmake")
include("/root/repo/build/tests/server_wire_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/measure_cdn_test[1]_include.cmake")
include("/root/repo/build/tests/h2_continuation_test[1]_include.cmake")
include("/root/repo/build/tests/secondary_certs_test[1]_include.cmake")
include("/root/repo/build/tests/json_har_test[1]_include.cmake")
include("/root/repo/build/tests/ct_test[1]_include.cmake")
include("/root/repo/build/tests/h1_test[1]_include.cmake")
include("/root/repo/build/tests/ocsp_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_property_test[1]_include.cmake")
include("/root/repo/build/tests/loader_property_test[1]_include.cmake")
