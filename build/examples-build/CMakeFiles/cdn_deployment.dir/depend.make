# Empty dependencies file for cdn_deployment.
# This may be replaced when dependencies are built.
