file(REMOVE_RECURSE
  "../examples/cdn_deployment"
  "../examples/cdn_deployment.pdb"
  "CMakeFiles/cdn_deployment.dir/cdn_deployment.cpp.o"
  "CMakeFiles/cdn_deployment.dir/cdn_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
