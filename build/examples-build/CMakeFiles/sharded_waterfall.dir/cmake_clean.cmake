file(REMOVE_RECURSE
  "../examples/sharded_waterfall"
  "../examples/sharded_waterfall.pdb"
  "CMakeFiles/sharded_waterfall.dir/sharded_waterfall.cpp.o"
  "CMakeFiles/sharded_waterfall.dir/sharded_waterfall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
