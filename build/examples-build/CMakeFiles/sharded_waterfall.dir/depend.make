# Empty dependencies file for sharded_waterfall.
# This may be replaced when dependencies are built.
