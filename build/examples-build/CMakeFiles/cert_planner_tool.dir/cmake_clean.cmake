file(REMOVE_RECURSE
  "../examples/cert_planner_tool"
  "../examples/cert_planner_tool.pdb"
  "CMakeFiles/cert_planner_tool.dir/cert_planner_tool.cpp.o"
  "CMakeFiles/cert_planner_tool.dir/cert_planner_tool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cert_planner_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
