# Empty dependencies file for cert_planner_tool.
# This may be replaced when dependencies are built.
