# Empty dependencies file for har_export.
# This may be replaced when dependencies are built.
