file(REMOVE_RECURSE
  "../examples/har_export"
  "../examples/har_export.pdb"
  "CMakeFiles/har_export.dir/har_export.cpp.o"
  "CMakeFiles/har_export.dir/har_export.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/har_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
