file(REMOVE_RECURSE
  "../bench/bench_table6_as_content"
  "../bench/bench_table6_as_content.pdb"
  "CMakeFiles/bench_table6_as_content.dir/bench_table6_as_content.cc.o"
  "CMakeFiles/bench_table6_as_content.dir/bench_table6_as_content.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_as_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
