# Empty compiler generated dependencies file for bench_table6_as_content.
# This may be replaced when dependencies are built.
