file(REMOVE_RECURSE
  "../bench/bench_table2_ases"
  "../bench/bench_table2_ases.pdb"
  "CMakeFiles/bench_table2_ases.dir/bench_table2_ases.cc.o"
  "CMakeFiles/bench_table2_ases.dir/bench_table2_ases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
