# Empty dependencies file for bench_table2_ases.
# This may be replaced when dependencies are built.
