file(REMOVE_RECURSE
  "../bench/bench_ablation_scheduling"
  "../bench/bench_ablation_scheduling.pdb"
  "CMakeFiles/bench_ablation_scheduling.dir/bench_ablation_scheduling.cc.o"
  "CMakeFiles/bench_ablation_scheduling.dir/bench_ablation_scheduling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
