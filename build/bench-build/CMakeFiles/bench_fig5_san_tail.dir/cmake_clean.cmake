file(REMOVE_RECURSE
  "../bench/bench_fig5_san_tail"
  "../bench/bench_fig5_san_tail.pdb"
  "CMakeFiles/bench_fig5_san_tail.dir/bench_fig5_san_tail.cc.o"
  "CMakeFiles/bench_fig5_san_tail.dir/bench_fig5_san_tail.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_san_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
