# Empty compiler generated dependencies file for bench_fig5_san_tail.
# This may be replaced when dependencies are built.
