file(REMOVE_RECURSE
  "../bench/bench_table9_providers"
  "../bench/bench_table9_providers.pdb"
  "CMakeFiles/bench_table9_providers.dir/bench_table9_providers.cc.o"
  "CMakeFiles/bench_table9_providers.dir/bench_table9_providers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
