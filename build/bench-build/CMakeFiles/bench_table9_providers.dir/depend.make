# Empty dependencies file for bench_table9_providers.
# This may be replaced when dependencies are built.
