# Empty compiler generated dependencies file for bench_table5_content_types.
# This may be replaced when dependencies are built.
