file(REMOVE_RECURSE
  "../bench/bench_table5_content_types"
  "../bench/bench_table5_content_types.pdb"
  "CMakeFiles/bench_table5_content_types.dir/bench_table5_content_types.cc.o"
  "CMakeFiles/bench_table5_content_types.dir/bench_table5_content_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_content_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
