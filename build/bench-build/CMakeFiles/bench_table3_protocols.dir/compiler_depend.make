# Empty compiler generated dependencies file for bench_table3_protocols.
# This may be replaced when dependencies are built.
