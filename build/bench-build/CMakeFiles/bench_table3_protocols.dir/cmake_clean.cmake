file(REMOVE_RECURSE
  "../bench/bench_table3_protocols"
  "../bench/bench_table3_protocols.pdb"
  "CMakeFiles/bench_table3_protocols.dir/bench_table3_protocols.cc.o"
  "CMakeFiles/bench_table3_protocols.dir/bench_table3_protocols.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
