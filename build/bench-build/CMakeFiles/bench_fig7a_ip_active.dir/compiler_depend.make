# Empty compiler generated dependencies file for bench_fig7a_ip_active.
# This may be replaced when dependencies are built.
