# Empty compiler generated dependencies file for bench_ablation_secondary_certs.
# This may be replaced when dependencies are built.
