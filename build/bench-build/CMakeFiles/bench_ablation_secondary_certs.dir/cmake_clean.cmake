file(REMOVE_RECURSE
  "../bench/bench_ablation_secondary_certs"
  "../bench/bench_ablation_secondary_certs.pdb"
  "CMakeFiles/bench_ablation_secondary_certs.dir/bench_ablation_secondary_certs.cc.o"
  "CMakeFiles/bench_ablation_secondary_certs.dir/bench_ablation_secondary_certs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_secondary_certs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
