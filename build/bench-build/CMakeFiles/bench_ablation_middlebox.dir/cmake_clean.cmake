file(REMOVE_RECURSE
  "../bench/bench_ablation_middlebox"
  "../bench/bench_ablation_middlebox.pdb"
  "CMakeFiles/bench_ablation_middlebox.dir/bench_ablation_middlebox.cc.o"
  "CMakeFiles/bench_ablation_middlebox.dir/bench_ablation_middlebox.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
