# Empty compiler generated dependencies file for bench_ablation_middlebox.
# This may be replaced when dependencies are built.
