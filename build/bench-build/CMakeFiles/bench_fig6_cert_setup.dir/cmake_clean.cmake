file(REMOVE_RECURSE
  "../bench/bench_fig6_cert_setup"
  "../bench/bench_fig6_cert_setup.pdb"
  "CMakeFiles/bench_fig6_cert_setup.dir/bench_fig6_cert_setup.cc.o"
  "CMakeFiles/bench_fig6_cert_setup.dir/bench_fig6_cert_setup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cert_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
