# Empty compiler generated dependencies file for bench_fig6_cert_setup.
# This may be replaced when dependencies are built.
