# Empty compiler generated dependencies file for bench_ablation_privacy.
# This may be replaced when dependencies are built.
