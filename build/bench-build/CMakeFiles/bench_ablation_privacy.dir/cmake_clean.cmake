file(REMOVE_RECURSE
  "../bench/bench_ablation_privacy"
  "../bench/bench_ablation_privacy.pdb"
  "CMakeFiles/bench_ablation_privacy.dir/bench_ablation_privacy.cc.o"
  "CMakeFiles/bench_ablation_privacy.dir/bench_ablation_privacy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
