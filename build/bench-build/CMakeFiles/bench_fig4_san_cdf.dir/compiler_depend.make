# Empty compiler generated dependencies file for bench_fig4_san_cdf.
# This may be replaced when dependencies are built.
