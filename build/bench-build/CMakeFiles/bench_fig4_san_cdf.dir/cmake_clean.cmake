file(REMOVE_RECURSE
  "../bench/bench_fig4_san_cdf"
  "../bench/bench_fig4_san_cdf.pdb"
  "CMakeFiles/bench_fig4_san_cdf.dir/bench_fig4_san_cdf.cc.o"
  "CMakeFiles/bench_fig4_san_cdf.dir/bench_fig4_san_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_san_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
