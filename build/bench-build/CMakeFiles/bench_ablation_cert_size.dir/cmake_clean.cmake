file(REMOVE_RECURSE
  "../bench/bench_ablation_cert_size"
  "../bench/bench_ablation_cert_size.pdb"
  "CMakeFiles/bench_ablation_cert_size.dir/bench_ablation_cert_size.cc.o"
  "CMakeFiles/bench_ablation_cert_size.dir/bench_ablation_cert_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cert_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
