# Empty dependencies file for bench_ablation_cert_size.
# This may be replaced when dependencies are built.
