
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_issuers.cc" "bench-build/CMakeFiles/bench_table4_issuers.dir/bench_table4_issuers.cc.o" "gcc" "bench-build/CMakeFiles/bench_table4_issuers.dir/bench_table4_issuers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdn/CMakeFiles/repro_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/repro_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/repro_model.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/repro_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/repro_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/repro_server.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/repro_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ct/CMakeFiles/repro_ct.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/repro_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/repro_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/h2/CMakeFiles/repro_h2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpack/CMakeFiles/repro_hpack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/repro_web.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
