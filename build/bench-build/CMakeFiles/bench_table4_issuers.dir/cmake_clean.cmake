file(REMOVE_RECURSE
  "../bench/bench_table4_issuers"
  "../bench/bench_table4_issuers.pdb"
  "CMakeFiles/bench_table4_issuers.dir/bench_table4_issuers.cc.o"
  "CMakeFiles/bench_table4_issuers.dir/bench_table4_issuers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_issuers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
