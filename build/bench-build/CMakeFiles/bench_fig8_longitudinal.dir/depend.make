# Empty dependencies file for bench_fig8_longitudinal.
# This may be replaced when dependencies are built.
