file(REMOVE_RECURSE
  "../bench/bench_fig8_longitudinal"
  "../bench/bench_fig8_longitudinal.pdb"
  "CMakeFiles/bench_fig8_longitudinal.dir/bench_fig8_longitudinal.cc.o"
  "CMakeFiles/bench_fig8_longitudinal.dir/bench_fig8_longitudinal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_longitudinal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
