file(REMOVE_RECURSE
  "../bench/bench_fig1_unique_ases"
  "../bench/bench_fig1_unique_ases.pdb"
  "CMakeFiles/bench_fig1_unique_ases.dir/bench_fig1_unique_ases.cc.o"
  "CMakeFiles/bench_fig1_unique_ases.dir/bench_fig1_unique_ases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_unique_ases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
