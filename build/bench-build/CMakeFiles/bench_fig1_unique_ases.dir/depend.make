# Empty dependencies file for bench_fig1_unique_ases.
# This may be replaced when dependencies are built.
