# Empty compiler generated dependencies file for bench_fig7b_origin_active.
# This may be replaced when dependencies are built.
