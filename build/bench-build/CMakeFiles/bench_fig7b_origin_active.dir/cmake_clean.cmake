file(REMOVE_RECURSE
  "../bench/bench_fig7b_origin_active"
  "../bench/bench_fig7b_origin_active.pdb"
  "CMakeFiles/bench_fig7b_origin_active.dir/bench_fig7b_origin_active.cc.o"
  "CMakeFiles/bench_fig7b_origin_active.dir/bench_fig7b_origin_active.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_origin_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
