file(REMOVE_RECURSE
  "../bench/bench_perf_codec"
  "../bench/bench_perf_codec.pdb"
  "CMakeFiles/bench_perf_codec.dir/bench_perf_codec.cc.o"
  "CMakeFiles/bench_perf_codec.dir/bench_perf_codec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
