# Empty compiler generated dependencies file for bench_perf_codec.
# This may be replaced when dependencies are built.
