file(REMOVE_RECURSE
  "../bench/bench_table8_san_ranks"
  "../bench/bench_table8_san_ranks.pdb"
  "CMakeFiles/bench_table8_san_ranks.dir/bench_table8_san_ranks.cc.o"
  "CMakeFiles/bench_table8_san_ranks.dir/bench_table8_san_ranks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_san_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
