# Empty dependencies file for bench_table8_san_ranks.
# This may be replaced when dependencies are built.
