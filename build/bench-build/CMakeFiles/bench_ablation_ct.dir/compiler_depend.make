# Empty compiler generated dependencies file for bench_ablation_ct.
# This may be replaced when dependencies are built.
