file(REMOVE_RECURSE
  "../bench/bench_ablation_ct"
  "../bench/bench_ablation_ct.pdb"
  "CMakeFiles/bench_ablation_ct.dir/bench_ablation_ct.cc.o"
  "CMakeFiles/bench_ablation_ct.dir/bench_ablation_ct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
