# Empty dependencies file for bench_table7_hostnames.
# This may be replaced when dependencies are built.
