file(REMOVE_RECURSE
  "../bench/bench_table7_hostnames"
  "../bench/bench_table7_hostnames.pdb"
  "CMakeFiles/bench_table7_hostnames.dir/bench_table7_hostnames.cc.o"
  "CMakeFiles/bench_table7_hostnames.dir/bench_table7_hostnames.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_hostnames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
