file(REMOVE_RECURSE
  "../bench/bench_fig9_plt"
  "../bench/bench_fig9_plt.pdb"
  "CMakeFiles/bench_fig9_plt.dir/bench_fig9_plt.cc.o"
  "CMakeFiles/bench_fig9_plt.dir/bench_fig9_plt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_plt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
