// Findings: the shared output format for origin_analyze passes and the
// origin_lint text rules.
//
// A finding is (rule, file, line span, message). Waivers come in two forms:
//   - inline:  `// analyze:allow(rule): reason` (or `lint:allow` for lint
//     rules) on the offending line or the line directly above it;
//   - file:    a waiver file with `rule path-fragment reason...` lines,
//     matching any finding whose rule equals `rule` and whose path contains
//     `path-fragment`.
// finalize() applies waivers, drops duplicates, merges overlapping spans of
// the same rule, and sorts (file, line, rule) so output is deterministic.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace origin::analyze {

struct Finding {
  std::string rule;
  std::string file;          // repo-relative path
  std::size_t line = 0;      // 1-based first line of the span
  std::size_t end_line = 0;  // last line; == line for single-line findings
  std::string message;
  bool waived = false;
  std::string waiver_reason;  // set when waived
};

struct FileWaiver {
  std::string rule;
  std::string path_fragment;
  std::string reason;
};

// Parses a waiver file. Blank lines and `#` comments are skipped; malformed
// lines (fewer than three fields) are reported on stderr and ignored.
std::vector<FileWaiver> load_waiver_file(const std::string& path);

// Writes `text` with JSON string escaping. Exposed so the driver's
// findings-drift gate can compute keys in exactly the form write_json
// emits them.
void json_escape(std::ostream& out, std::string_view text);

class FindingSink {
 public:
  void add(Finding finding);
  void add(std::string rule, std::string file, std::size_t line,
           std::string message, std::size_t end_line = 0);

  // Applies waivers, dedupes, merges same-rule overlapping spans, sorts.
  // `lines_of(file)` must return the file's source lines (1-based via
  // index-1) so inline waivers can be matched; it may return an empty
  // vector for files the caller never modeled.
  template <typename LinesOf>
  void finalize(const std::vector<FileWaiver>& waivers, LinesOf lines_of) {
    for (Finding& f : findings_) {
      apply_inline_waiver(f, lines_of(f.file));
      if (!f.waived) apply_file_waiver(f, waivers);
    }
    sort_and_dedupe();
  }

  const std::vector<Finding>& findings() const { return findings_; }
  std::size_t unwaived_count() const;

  // Human-readable report: one `file:line: [rule] message` per finding,
  // waived ones tagged. Returns the unwaived count.
  std::size_t print(std::ostream& out) const;

  // Machine-readable report: {"findings":[...],"unwaived":N}.
  void write_json(std::ostream& out) const;

 private:
  static void apply_inline_waiver(
      Finding& f, const std::vector<std::string_view>& lines);
  static void apply_file_waiver(Finding& f,
                                const std::vector<FileWaiver>& waivers);
  void sort_and_dedupe();

  std::vector<Finding> findings_;
};

}  // namespace origin::analyze
