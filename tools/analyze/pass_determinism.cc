// Determinism pass.
//
// The corpus pipeline must produce byte-identical reports at any thread
// count (the 1-vs-8-thread golden tests), so ordering may never leak from
// hash containers or ambient process state:
//
//   det-unordered-iter   range-for over a util::FlatMap/FlatSet or
//                        std::unordered_* value. Iteration order of these
//                        containers is insertion/hash order; emitters must
//                        copy out and sort first (iterating a sorted
//                        vector produced from the map is clean), and
//                        commutative merges carry an inline waiver.
//   det-wall-clock       std::chrono system/steady/high_resolution clocks,
//                        clock_gettime, gettimeofday, time(nullptr)
//   det-ambient-rand     rand()/srand()/std::random_device (seeded
//                        mt19937 engines are deterministic and fine)
//   det-pointer-value    "%p" formatting or streaming a void* — pointer
//                        values vary across runs and ASLR
//
// Sanctioned module for clocks and entropy: src/netsim (the simulator owns
// time and seeds); everything else needs a waiver.
//
// Type resolution is a corpus-global two-pass affair: pass one registers
// every alias (`using DayConnections = util::FlatMap<...>;`) and every
// declared variable/member name of unordered type; pass two flags range-for
// statements whose iterated expression resolves, by its trailing
// identifier, to a registered name.
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "passes.h"

namespace origin::analyze {

namespace {

const std::unordered_set<std::string_view> kUnorderedTypes = {
    "FlatMap",
    "FlatSet",
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

bool clock_sanctioned(const FileModel& file) {
  return file.module == "netsim";
}

// Registry of names that denote unordered containers: type aliases and
// declared variable/member names. Names declared in headers register
// globally (a member declared in a header iterates in a .cc); names
// declared in a .cc stay local to that file, so a local FlatSet called
// `connections` cannot poison a same-named vector member elsewhere.
struct Registry {
  std::unordered_set<std::string> aliases;        // type names, global
  std::unordered_set<std::string> global_values;  // from headers
  std::unordered_map<std::string, std::unordered_set<std::string>>
      local_values;  // from .cc files, keyed by rel path

  bool is_unordered_type(std::string_view name) const {
    return kUnorderedTypes.count(name) > 0 ||
           aliases.count(std::string(name)) > 0;
  }

  bool is_unordered_value(const FileModel& file,
                          std::string_view name) const {
    const std::string key(name);
    if (global_values.count(key) > 0) return true;
    const auto it = local_values.find(file.rel);
    return it != local_values.end() && it->second.count(key) > 0;
  }
};

void collect_aliases(const FileModel& file, Registry& reg) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "using") ||
        toks[i + 1].kind != TokenKind::kIdentifier ||
        !is_punct(toks[i + 2], "=")) {
      continue;
    }
    for (std::size_t j = i + 3; j < toks.size(); ++j) {
      if (is_punct(toks[j], ";")) break;
      if (toks[j].kind == TokenKind::kIdentifier &&
          reg.is_unordered_type(toks[j].text)) {
        reg.aliases.insert(std::string(toks[i + 1].text));
        break;
      }
    }
  }
}

void collect_values(const FileModel& file, Registry& reg) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        !reg.is_unordered_type(toks[i].text)) {
      continue;
    }
    // Skip the template argument list if present, then accept
    // `name ;`, `name =`, `name {`, `name (` declarations (optionally
    // through '&'). `FlatMap<K,V> day_connections_;`
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      j = match_forward(toks, j, "<", ">");
      if (j == toks.size()) continue;
      ++j;
    }
    while (j < toks.size() && (is_punct(toks[j], "&") ||
                               is_punct(toks[j], "*") ||
                               is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
        (is_punct(toks[j + 1], ";") || is_punct(toks[j + 1], "=") ||
         is_punct(toks[j + 1], "{") || is_punct(toks[j + 1], ",") ||
         is_punct(toks[j + 1], ")"))) {
      std::string name(toks[j].text);
      if (file.is_header) {
        reg.global_values.insert(std::move(name));
      } else {
        reg.local_values[file.rel].insert(std::move(name));
      }
    }
  }
}

void flag_unordered_iteration(const FileModel& file, const Registry& reg,
                              FindingSink& sink) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == toks.size()) continue;
    // Range-for: a ':' at paren depth 1. ("::" is a single distinct token,
    // so a bare ':' is unambiguous.)
    std::size_t colon = toks.size();
    std::size_t depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "{")) ++depth;
      if (is_punct(toks[j], ")") || is_punct(toks[j], "}")) --depth;
      if (depth == 1 && is_punct(toks[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon == toks.size()) continue;
    // The iterated expression: flag when its trailing identifier names a
    // registered unordered value, or any identifier in it names an
    // unordered type (a temporary). A call result `sorted(map)` ends in
    // ')' and resolves to nothing — sorted copies pass clean by design.
    std::string_view culprit;
    if (toks[close - 1].kind == TokenKind::kIdentifier &&
        reg.is_unordered_value(file, toks[close - 1].text)) {
      culprit = toks[close - 1].text;
    } else {
      for (std::size_t j = colon + 1; j < close && culprit.empty(); ++j) {
        if (toks[j].kind == TokenKind::kIdentifier &&
            reg.is_unordered_type(toks[j].text)) {
          culprit = toks[j].text;
        }
      }
    }
    if (culprit.empty()) continue;
    sink.add("det-unordered-iter", file.rel, toks[i].line,
             "iteration over unordered container '" + std::string(culprit) +
                 "' — order is hash/insertion dependent; sort into a "
                 "vector before emitting, or waive a commutative merge");
  }
}

const std::unordered_set<std::string_view> kWallClock = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "clock_gettime", "gettimeofday",
};

const std::unordered_set<std::string_view> kAmbientRand = {
    "rand",
    "srand",
    "random_device",
};

void flag_ambient_state(const FileModel& file, FindingSink& sink) {
  if (clock_sanctioned(file)) return;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kString) {
      if (t.text.find("%p") != std::string_view::npos) {
        sink.add("det-pointer-value", file.rel, t.line,
                 "\"%p\" formats a pointer value — varies per run/ASLR");
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kWallClock.count(t.text) > 0) {
      sink.add("det-wall-clock", file.rel, t.line,
               std::string(t.text) +
                   " reads wall-clock time outside src/netsim");
      continue;
    }
    if (kAmbientRand.count(t.text) > 0) {
      // `rand` only as a call, not e.g. a substring-free member name.
      if (t.text == "rand" &&
          !(i + 1 < toks.size() && is_punct(toks[i + 1], "(")))
        continue;
      if (t.text == "rand" && i > 0 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))
        continue;
      sink.add("det-ambient-rand", file.rel, t.line,
               std::string(t.text) +
                   " draws ambient entropy outside src/netsim");
      continue;
    }
    // Streaming a pointer: `<< static_cast<const void*>(...)` or
    // `<< (void*) ...` — the void* cast is the tell.
    if (t.text == "void" && i >= 1 && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "*")) {
      for (std::size_t back = 1; back <= 6 && back <= i; ++back) {
        if (is_punct(toks[i - back], "<<")) {
          sink.add("det-pointer-value", file.rel, t.line,
                   "streams a void* pointer value — varies per run/ASLR");
          break;
        }
      }
    }
  }
}

}  // namespace

void run_determinism_pass(const std::deque<FileModel>& corpus,
                          FindingSink& sink) {
  Registry reg;
  // Two alias rounds so an alias of an alias still resolves, then values.
  for (int round = 0; round < 2; ++round) {
    for (const FileModel& file : corpus) collect_aliases(file, reg);
  }
  for (const FileModel& file : corpus) collect_values(file, reg);
  for (const FileModel& file : corpus) {
    flag_unordered_iteration(file, reg, sink);
    flag_ambient_state(file, sink);
  }
}

}  // namespace origin::analyze
