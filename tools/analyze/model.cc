#include "model.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace origin::analyze {

namespace fs = std::filesystem;

namespace {

std::string module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  const std::size_t next = rel.find('/', 4);
  if (next == std::string::npos) return {};
  return rel.substr(4, next - 4);
}

void split_lines(std::string_view source,
                 std::vector<std::string_view>& lines) {
  std::size_t begin = 0;
  while (begin <= source.size()) {
    const std::size_t nl = source.find('\n', begin);
    if (nl == std::string_view::npos) {
      lines.push_back(source.substr(begin));
      break;
    }
    lines.push_back(source.substr(begin, nl - begin));
    begin = nl + 1;
  }
}

void collect_includes(const FileModel& model,
                      std::vector<Include>& includes) {
  for (const Token& t : model.tokens) {
    if (t.kind != TokenKind::kPreprocessor) continue;
    std::string_view text = t.text;
    const std::size_t inc = text.find("include");
    if (inc == std::string_view::npos) continue;
    const std::size_t open = text.find('"', inc);
    if (open == std::string_view::npos) continue;  // <...> system include
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    includes.push_back(
        Include{std::string(text.substr(open + 1, close - open - 1)),
                t.line});
  }
}

}  // namespace

// Each parameter keeps its full type spelling plus trailing name; default
// arguments are cut at the '='.
void parse_param_list(const std::vector<Token>& tokens, std::size_t open,
                      std::size_t close, std::vector<HotParam>& params) {
  std::size_t param_begin = open + 1;
  std::size_t depth = 0;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const Token& t = tokens[i];
    const bool at_end = i == close;
    if (!at_end && t.kind == TokenKind::kPunct) {
      if (t.text == "(" || t.text == "<" || t.text == "[" || t.text == "{") {
        ++depth;
        continue;
      }
      if (t.text == ")" || t.text == ">" || t.text == "]" || t.text == "}") {
        if (depth > 0) --depth;
        continue;
      }
    }
    if (!at_end && !(depth == 0 && is_punct(t, ","))) continue;
    const std::size_t param_end = i;  // exclusive
    if (param_end > param_begin) {
      std::size_t eq = param_end;
      for (std::size_t j = param_begin; j < param_end; ++j) {
        if (is_punct(tokens[j], "=")) {
          eq = j;
          break;
        }
      }
      HotParam p;
      std::size_t name_at = eq;
      // The name is the trailing identifier, when there is one; abstract
      // declarators ("int" alone) and `void` yield an empty name.
      if (eq > param_begin &&
          tokens[eq - 1].kind == TokenKind::kIdentifier &&
          !is_ident(tokens[eq - 1], "void")) {
        name_at = eq - 1;
        p.name = std::string(tokens[name_at].text);
        // Array parameters spell `char (&buffer)[16]`: the identifier sits
        // before the `)[`; treat the preceding identifier-like token run as
        // the type either way — type_text only feeds substring checks.
      }
      p.type_text = join_tokens(tokens, param_begin, name_at);
      if (!p.type_text.empty() || !p.name.empty()) {
        params.push_back(std::move(p));
      }
    }
    param_begin = i + 1;
  }
}

namespace {

// Scans forward from the token after an ORIGIN_HOT marker to the function's
// parameter list and body. Returns false when no body follows (declaration,
// or the marker decorated something we don't model).
bool parse_hot_function(const std::vector<Token>& tokens, std::size_t start,
                        HotFunction& out) {
  // Find the '(' that opens the parameter list: the first '(' at
  // angle/paren depth zero whose preceding token is an identifier or
  // `operator...`. Stop early at '{', ';', or another ORIGIN_HOT.
  std::size_t open = tokens.size();
  for (std::size_t i = start; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (is_punct(t, ";") || is_punct(t, "{")) return false;
    if (is_ident(t, "ORIGIN_HOT")) return false;
    if (is_punct(t, "(") && i > start &&
        tokens[i - 1].kind == TokenKind::kIdentifier) {
      open = i;
      break;
    }
  }
  if (open == tokens.size()) return false;
  const std::size_t close = match_forward(tokens, open, "(", ")");
  if (close == tokens.size()) return false;
  out.name = std::string(tokens[open - 1].text);
  parse_param_list(tokens, open, close, out.params);
  // Body '{' follows, possibly after const/noexcept/override/trailing
  // return. A ';' first means declaration only; '=' covers `= default`.
  for (std::size_t i = close + 1; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (is_punct(t, ";") || is_punct(t, "=")) return false;
    if (is_punct(t, "{")) {
      const std::size_t body_close = match_forward(tokens, i, "{", "}");
      if (body_close == tokens.size()) return false;
      out.body_begin = i + 1;
      out.body_end = body_close;
      return true;
    }
  }
  return false;
}

void collect_hot_functions(FileModel& model) {
  for (std::size_t i = 0; i < model.tokens.size(); ++i) {
    if (!is_ident(model.tokens[i], "ORIGIN_HOT")) continue;
    HotFunction fn;
    fn.line = model.tokens[i].line;
    if (parse_hot_function(model.tokens, i + 1, fn)) {
      model.hot_functions.push_back(std::move(fn));
    }
  }
}

}  // namespace

std::string join_tokens(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t end) {
  std::string joined;
  for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (!joined.empty()) joined += ' ';
    joined += tokens[i].text;
  }
  return joined;
}

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], open_text)) {
      ++depth;
    } else if (is_punct(tokens[i], close_text)) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

bool load_file_model(const std::string& repo_root, const std::string& rel,
                     FileModel& out) {
  std::ifstream in(fs::path(repo_root) / rel, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out.rel = rel;
  out.module = module_of(rel);
  out.is_header = rel.size() > 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
  out.source = buffer.str();
  split_lines(out.source, out.lines);
  out.tokens = tokenize(out.source);
  collect_includes(out, out.includes);
  collect_hot_functions(out);
  return true;
}

std::deque<FileModel> load_corpus(const std::string& repo_root,
                                  const std::vector<std::string>& roots) {
  std::vector<std::string> rels;
  for (const std::string& root : roots) {
    const fs::path abs = fs::path(repo_root) / root;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
      rels.push_back(root);
      continue;
    }
    if (!fs::is_directory(abs, ec)) continue;
    for (fs::recursive_directory_iterator it(abs, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      rels.push_back(
          fs::relative(it->path(), repo_root).generic_string());
    }
  }
  std::sort(rels.begin(), rels.end());
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

  std::deque<FileModel> corpus;
  for (const std::string& rel : rels) {
    // Model in place: tokens view into `source`, and moving a FileModel
    // whose source fits the SSO buffer would leave them dangling.
    corpus.emplace_back();
    if (!load_file_model(repo_root, rel, corpus.back())) {
      corpus.pop_back();
    }
  }
  return corpus;
}

}  // namespace origin::analyze
