#include "findings.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <tuple>

namespace origin::analyze {

namespace {

// Returns the waiver reason if `line` carries an allow-comment for `rule`
// under either marker spelling, or nullopt-like empty-unset via bool.
bool match_allow(std::string_view line, std::string_view rule,
                 std::string& reason) {
  for (const std::string_view marker : {"analyze:allow(", "lint:allow("}) {
    std::size_t at = 0;
    while ((at = line.find(marker, at)) != std::string_view::npos) {
      const std::size_t open = at + marker.size();
      const std::size_t close = line.find(')', open);
      if (close == std::string_view::npos) break;
      if (line.substr(open, close - open) == rule) {
        std::string_view rest = line.substr(close + 1);
        if (!rest.empty() && rest.front() == ':') rest.remove_prefix(1);
        while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
        reason = std::string(rest);
        return true;
      }
      at = close;
    }
  }
  return false;
}

}  // namespace

void json_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

std::vector<FileWaiver> load_waiver_file(const std::string& path) {
  std::vector<FileWaiver> waivers;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "analyze: cannot open waiver file " << path << "\n";
    return waivers;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    FileWaiver w;
    if (!(fields >> w.rule >> w.path_fragment)) {
      std::cerr << "analyze: malformed waiver line ignored: " << line
                << "\n";
      continue;
    }
    std::getline(fields >> std::ws, w.reason);
    if (w.reason.empty()) {
      std::cerr << "analyze: waiver without reason ignored: " << line
                << "\n";
      continue;
    }
    waivers.push_back(std::move(w));
  }
  return waivers;
}

void FindingSink::add(Finding finding) {
  if (finding.end_line < finding.line) finding.end_line = finding.line;
  findings_.push_back(std::move(finding));
}

void FindingSink::add(std::string rule, std::string file, std::size_t line,
                      std::string message, std::size_t end_line) {
  Finding f;
  f.rule = std::move(rule);
  f.file = std::move(file);
  f.line = line;
  f.end_line = end_line == 0 ? line : end_line;
  f.message = std::move(message);
  add(std::move(f));
}

namespace {

bool is_comment_line(std::string_view line) {
  const std::size_t at = line.find_first_not_of(" \t");
  return at != std::string_view::npos && line.substr(at, 2) == "//";
}

}  // namespace

void FindingSink::apply_inline_waiver(
    Finding& f, const std::vector<std::string_view>& lines) {
  auto try_line = [&](std::size_t ln) {
    if (ln == 0 || ln > lines.size()) return false;
    std::string reason;
    if (!match_allow(lines[ln - 1], f.rule, reason)) return false;
    // Multi-line reasons: when the allow-marker is a full-line comment,
    // the //-comment lines that follow it (still above the finding, and
    // not themselves allow-markers) continue the reason. A reason should
    // not have to fit one line to survive clang-format.
    if (is_comment_line(lines[ln - 1])) {
      for (std::size_t nl = ln + 1; nl <= lines.size() && nl < f.line;
           ++nl) {
        const std::string_view cont = lines[nl - 1];
        if (!is_comment_line(cont) ||
            cont.find(":allow(") != std::string_view::npos) {
          break;
        }
        std::string_view text = cont.substr(cont.find("//") + 2);
        while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
        while (!text.empty() &&
               (text.back() == ' ' || text.back() == '\t')) {
          text.remove_suffix(1);
        }
        if (!text.empty()) {
          if (!reason.empty()) reason += ' ';
          reason += text;
        }
      }
    }
    f.waived = true;
    f.waiver_reason = reason.empty() ? "inline waiver" : reason;
    return true;
  };
  // The allow-comment may sit on any line of the span…
  for (std::size_t ln = f.line; ln <= f.end_line; ++ln) {
    if (try_line(ln)) return;
  }
  // …or anywhere in the contiguous //-comment block directly above it.
  for (std::size_t ln = f.line; ln > 1; --ln) {
    if (!is_comment_line(lines.size() >= ln - 1 ? lines[ln - 2]
                                                : std::string_view{})) {
      break;
    }
    if (try_line(ln - 1)) return;
  }
}

void FindingSink::apply_file_waiver(Finding& f,
                                    const std::vector<FileWaiver>& waivers) {
  for (const FileWaiver& w : waivers) {
    if (w.rule == f.rule &&
        f.file.find(w.path_fragment) != std::string::npos) {
      f.waived = true;
      f.waiver_reason = w.reason;
      return;
    }
  }
}

void FindingSink::sort_and_dedupe() {
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.end_line,
                              a.message) < std::tie(b.file, b.line, b.rule,
                                                    b.end_line, b.message);
            });
  // Merge same-rule findings in the same file whose spans touch or
  // overlap (a multi-line match and its per-line echoes collapse to one).
  std::vector<Finding> merged;
  for (Finding& f : findings_) {
    if (!merged.empty()) {
      Finding& prev = merged.back();
      if (prev.file == f.file && prev.rule == f.rule &&
          f.line <= prev.end_line + 1 && prev.waived == f.waived) {
        prev.end_line = std::max(prev.end_line, f.end_line);
        continue;
      }
    }
    merged.push_back(std::move(f));
  }
  findings_ = std::move(merged);
}

std::size_t FindingSink::unwaived_count() const {
  std::size_t count = 0;
  for (const Finding& f : findings_) {
    if (!f.waived) ++count;
  }
  return count;
}

std::size_t FindingSink::print(std::ostream& out) const {
  for (const Finding& f : findings_) {
    out << f.file << ':' << f.line;
    if (f.end_line > f.line) out << '-' << f.end_line;
    out << ": [" << f.rule << "] " << f.message;
    if (f.waived) out << "  (waived: " << f.waiver_reason << ')';
    out << '\n';
  }
  return unwaived_count();
}

void FindingSink::write_json(std::ostream& out) const {
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings_) {
    out << (first ? "\n" : ",\n") << "    {\"rule\": \"";
    json_escape(out, f.rule);
    out << "\", \"file\": \"";
    json_escape(out, f.file);
    out << "\", \"line\": " << f.line << ", \"end_line\": " << f.end_line
        << ", \"waived\": " << (f.waived ? "true" : "false")
        << ", \"message\": \"";
    json_escape(out, f.message);
    out << "\"";
    if (f.waived) {
      out << ", \"waiver_reason\": \"";
      json_escape(out, f.waiver_reason);
      out << "\"";
    }
    out << "}";
    first = false;
  }
  out << "\n  ],\n  \"unwaived\": " << unwaived_count() << "\n}\n";
}

}  // namespace origin::analyze
