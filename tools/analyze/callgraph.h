// Interprocedural call graph over the modeled corpus.
//
// The graph is built from the same token streams the intraprocedural passes
// walk: every function *definition* in the corpus becomes a node (free
// functions, class methods defined inline or out of line, constructors,
// operator overloads), and every `name(...)` expression inside a body
// becomes a call site. Resolution is heuristic and name-based — this is not
// a linker:
//
//   * `Class::f(...)` and out-of-line `Class::f` definitions match by
//     qualified name; bare `ns::f(...)` calls fall back to the unqualified
//     free-function index (namespace blocks are not tracked).
//   * `x.f(...)` / `x->f(...)` member calls resolve only against method
//     definitions (free functions with the same name are never candidates);
//     plain `f(...)` calls inside a method of class C prefer C::f, then
//     free functions, then a unique corpus-wide match of any kind.
//   * ALL_CAPS identifiers are treated as macro invocations, `operator` is
//     never a callee name, and string/char literal contents were already
//     collapsed by the tokenizer — none of these produce edges.
//
// Known blind spots, by design (documented in DESIGN.md §12): virtual
// dispatch resolves to every same-named method, function pointers and
// std::function targets produce no edge, and templates are matched purely
// by spelling. Calls that name a function the corpus does not define are
// kept in an explicit unresolved-call report (split into std/external and
// genuinely unknown) rather than silently dropped.
#pragma once

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "model.h"

namespace origin::analyze {

// One function definition found in the corpus. Token indices point into
// the owning FileModel's token stream.
struct FunctionDef {
  std::string name;        // unqualified spelling ("flush", "operator()")
  std::string class_name;  // enclosing class or out-of-line qualifier; ""
                           // for free functions
  std::size_t file = 0;    // index into the corpus deque
  std::size_t line = 0;
  std::size_t body_begin = 0;  // first token inside the body
  std::size_t body_end = 0;    // token index of the closing '}'
  std::string return_type_text;  // joined spelling, "" for ctors/dtors
  std::vector<HotParam> params;
  bool is_hot = false;     // carries an ORIGIN_HOT marker
  bool is_method = false;

  std::string qualified() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

enum class CallResolution {
  kResolved,    // one or more corpus definitions matched
  kExternal,    // std:: or another qualifier the corpus never defines
  kUnresolved,  // unqualified/member name with no corpus definition
};

struct CallSite {
  std::size_t caller = 0;       // index into CallGraph::functions()
  std::string name;             // callee name as written
  std::string qualifier;        // "Class" / "ns" chain before ::, or ""
  bool is_member_call = false;   // x.f() / x->f() / this->f()
  bool receiver_is_this = false;  // literally `this->f()`
  std::size_t token_index = 0;  // index of the callee-name token
  std::size_t line = 0;
  CallResolution resolution = CallResolution::kUnresolved;
  std::vector<std::size_t> targets;  // resolved FunctionDef indices
};

class CallGraph {
 public:
  static CallGraph build(const std::deque<FileModel>& corpus);

  const std::deque<FileModel>& corpus() const { return *corpus_; }
  const std::vector<FunctionDef>& functions() const { return functions_; }
  const std::vector<CallSite>& calls() const { return calls_; }

  // Deduplicated callee indices per function.
  const std::vector<std::vector<std::size_t>>& callees() const {
    return callees_;
  }
  // Call sites grouped by caller (indices into calls()).
  const std::vector<std::vector<std::size_t>>& sites_of() const {
    return sites_of_;
  }

  // Functions whose return type spells util::Result or util::Status.
  bool returns_result_or_status(std::size_t fn) const;

  // The explicit unresolved-call report: "<file>:<line> name (kind)" lines
  // for every call site that did not resolve to a corpus definition,
  // external std/library calls listed separately. Returns the count of
  // genuinely unresolved (non-external) sites.
  std::size_t report_unresolved(std::ostream& out) const;

  // Human-readable dump of definitions, edges, and the unresolved report.
  void dump(std::ostream& out) const;

 private:
  const std::deque<FileModel>* corpus_ = nullptr;
  std::vector<FunctionDef> functions_;
  std::vector<CallSite> calls_;
  std::vector<std::vector<std::size_t>> callees_;
  std::vector<std::vector<std::size_t>> sites_of_;
};

}  // namespace origin::analyze
