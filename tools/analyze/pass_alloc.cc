// Hot-path allocation pass.
//
// A function annotated ORIGIN_HOT promises the steady-state replay property
// PR 4 measured: zero allocations per page once scratch arenas are warm.
// This pass enforces the source-level half of that contract (the runtime
// half is util::AllocGuard):
//
//   hot-new              `new`, std::make_unique, std::make_shared
//   hot-string-construct std::string construction / std::to_string
//   hot-unreserved-growth  push_back/emplace/insert/append on a receiver
//                          that is not sanctioned scratch state
//   hot-owning-copy      by-value std::string/std::vector/std::function/
//                        Bytes parameters (each call copies, and virtual
//                        dispatch through such copies allocates)
//
// Sanctioned growth receivers: parameters or locals whose type spelling
// contains "Scratch" or "ByteWriter" (the warm-arena types, which keep
// capacity across clear()), and any receiver the same body explicitly
// prepares with .reserve()/.clear()/.assign().
//
// The same body check runs interprocedurally over every unannotated
// function reachable from an ORIGIN_HOT root — see pass_hot_transitive.cc;
// collect_alloc_violations below is the shared implementation.
#include <string>
#include <unordered_set>

#include "alloc_check.h"
#include "passes.h"

namespace origin::analyze {

namespace {

bool is_scratch_type(std::string_view type_text) {
  return type_text.find("Scratch") != std::string_view::npos ||
         type_text.find("ByteWriter") != std::string_view::npos;
}

bool is_owning_value_type(const std::string& type_text) {
  if (!type_text.empty() && type_text.back() == '&') return false;
  if (type_text.find('*') != std::string::npos) return false;
  return type_text.find("std :: string ") != std::string::npos ||
         type_text == "std :: string" ||
         type_text.find("std :: vector") != std::string::npos ||
         type_text.find("std :: function") != std::string::npos ||
         type_text.find("Bytes") != std::string::npos;
}

// Walks back from the '.'/'->' before a growth call to the root of the
// receiver chain: `s.connections.push_back` roots at `s`. Returns an empty
// view when the receiver is a call result or otherwise unnamed.
std::string_view receiver_root(const std::vector<Token>& tokens,
                               std::size_t dot) {
  std::size_t i = dot;
  while (true) {
    if (i == 0 || tokens[i - 1].kind != TokenKind::kIdentifier) return {};
    i -= 1;  // the identifier
    if (i == 0) return tokens[i].text;
    const Token& before = tokens[i - 1];
    if (is_punct(before, ".") || is_punct(before, "->") ||
        is_punct(before, "::")) {
      i -= 1;
      continue;
    }
    return tokens[i].text;
  }
}

const std::unordered_set<std::string_view> kGrowthCalls = {
    "push_back", "emplace_back", "emplace", "insert", "append",
    "resize",    "grow",
};

const std::unordered_set<std::string_view> kSanctioningCalls = {
    "reserve", "clear", "assign",
};

}  // namespace

void collect_alloc_violations(const FileModel& file, std::size_t body_begin,
                              std::size_t body_end,
                              const std::vector<HotParam>& params,
                              bool check_params,
                              std::vector<AllocViolation>& out) {
  const std::vector<Token>& toks = file.tokens;

  // Collect sanctioned receiver roots.
  std::unordered_set<std::string_view> sanctioned;
  for (const HotParam& p : params) {
    if (is_scratch_type(p.type_text) && !p.name.empty()) {
      sanctioned.insert(p.name);
    }
  }
  for (std::size_t i = body_begin; i < body_end; ++i) {
    // Local scratch declarations: `AnalysisScratch& s = ...` or
    // `ObserveScratch scratch;` — a Scratch-typed identifier followed by
    // (optional '&') then a fresh name.
    if (toks[i].kind == TokenKind::kIdentifier &&
        is_scratch_type(toks[i].text) && i + 1 < body_end) {
      std::size_t j = i + 1;
      if (is_punct(toks[j], "&")) ++j;
      if (j < body_end && toks[j].kind == TokenKind::kIdentifier) {
        sanctioned.insert(toks[j].text);
      }
    }
    // Receivers the body explicitly prepares: `out.reserve(n)` blesses
    // `out` for growth later in the same body.
    if (toks[i].kind == TokenKind::kIdentifier &&
        kSanctioningCalls.count(toks[i].text) > 0 && i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        i + 1 < body_end && is_punct(toks[i + 1], "(")) {
      const std::string_view root = receiver_root(toks, i - 1);
      if (!root.empty()) sanctioned.insert(root);
    }
  }

  auto flag = [&](const char* rule, std::size_t line, std::string message) {
    out.push_back(AllocViolation{rule, line, std::move(message)});
  };

  for (std::size_t i = body_begin; i < body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;

    if (t.text == "new" &&
        (i == body_begin || (!is_punct(toks[i - 1], ".") &&
                             !is_punct(toks[i - 1], "->")))) {
      flag("hot-new", t.line, "operator new");
      continue;
    }
    if (t.text == "make_unique" || t.text == "make_shared") {
      flag("hot-new", t.line, "std::" + std::string(t.text));
      continue;
    }
    if (t.text == "to_string" && i > 0 && is_punct(toks[i - 1], "::")) {
      flag("hot-string-construct", t.line, "std::to_string");
      continue;
    }
    if (t.text == "string" && i >= 2 && is_ident(toks[i - 2], "std") &&
        is_punct(toks[i - 1], "::")) {
      // References, pointers, and static-member access (std::string::npos)
      // do not construct; anything else in a hot body does.
      if (i + 1 < body_end && (is_punct(toks[i + 1], "&") ||
                               is_punct(toks[i + 1], "*") ||
                               is_punct(toks[i + 1], "::"))) {
        continue;
      }
      // Default construction (`std::string out;`) never allocates — SSO
      // gives an empty string inline storage. Only initialized
      // construction can materialize heap data.
      if (i + 2 < body_end && toks[i + 1].kind == TokenKind::kIdentifier &&
          is_punct(toks[i + 2], ";")) {
        continue;
      }
      flag("hot-string-construct", t.line, "std::string construction");
      continue;
    }
    if (kGrowthCalls.count(t.text) > 0 && i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        i + 1 < body_end && is_punct(toks[i + 1], "(")) {
      const std::string_view root = receiver_root(toks, i - 1);
      if (!root.empty() && sanctioned.count(root) > 0) continue;
      flag("hot-unreserved-growth", t.line,
           "unreserved container growth via ." + std::string(t.text) +
               "() on '" +
               (root.empty() ? std::string("<expression>")
                             : std::string(root)) +
               "'");
      continue;
    }
  }

  if (check_params) {
    for (const HotParam& p : params) {
      if (is_owning_value_type(p.type_text)) {
        flag("hot-owning-copy", 0,
             "by-value owning parameter '" + p.name + "' of type '" +
                 p.type_text + "'");
      }
    }
  }
}

void run_alloc_pass(const std::deque<FileModel>& corpus, FindingSink& sink) {
  for (const FileModel& file : corpus) {
    for (const HotFunction& fn : file.hot_functions) {
      std::vector<AllocViolation> violations;
      collect_alloc_violations(file, fn.body_begin, fn.body_end, fn.params,
                               /*check_params=*/true, violations);
      for (AllocViolation& v : violations) {
        sink.add(v.rule, file.rel, v.line == 0 ? fn.line : v.line,
                 std::move(v.message) + " in ORIGIN_HOT function '" +
                     fn.name + "'");
      }
    }
  }
}

}  // namespace origin::analyze
