// Lightweight C++ token scanner for the origin_analyze passes.
//
// This is not a compiler front end: it produces exactly the fidelity the
// invariant passes need and nothing more. Comments and whitespace are
// dropped (inline waivers are matched against raw source lines, not
// tokens), string/char literals survive as single tokens so their contents
// never masquerade as code, and preprocessor directives are folded into one
// token per logical line so `#define ORIGIN_HOT ...` can never be mistaken
// for an annotated function.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace origin::analyze {

enum class TokenKind {
  kIdentifier,    // identifiers and keywords
  kNumber,        // numeric literal (pp-number: 0x1p3, 1'000'000, 1e-5)
  kString,        // string literal, quotes included; raw strings collapsed
  kChar,          // character literal
  kPunct,         // one operator/punctuator ("::" and "->" kept whole)
  kPreprocessor,  // a whole directive line, backslash continuations folded
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;   // view into the owning FileModel's source
  std::size_t line = 0;    // 1-based line of the first character
  std::size_t column = 0;  // 1-based column of the first character
};

// Scans `source` into tokens. Never fails: unrecognized bytes become
// single-character punctuation, and an unterminated literal runs to the end
// of its line — garbage in a scanned file must not kill the whole gate.
std::vector<Token> tokenize(std::string_view source);

inline bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

inline bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

}  // namespace origin::analyze
