#include "callgraph.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

namespace origin::analyze {

namespace {

// Identifier keywords that introduce a parenthesized expression which is
// neither a call nor a function definition.
const std::unordered_set<std::string_view> kControlKeywords = {
    "if",       "for",      "while",    "switch",   "catch",
    "return",   "sizeof",   "alignof",  "decltype", "noexcept",
    "static_assert", "new", "delete",   "throw",    "co_await",
    "co_return", "co_yield", "requires", "alignas",  "typeid",
    "assert",   "defined",
};

// Builtin type spellings: `int(x)` and friends are functional casts.
const std::unordered_set<std::string_view> kBuiltinTypes = {
    "int",  "char", "bool",  "auto",   "void",
    "long", "short", "float", "double", "unsigned", "signed",
};

// Keywords that may legitimately precede a call expression even though they
// tokenize as identifiers (`return foo();`).
const std::unordered_set<std::string_view> kCallPrefixKeywords = {
    "return", "else", "do", "throw", "case", "co_return", "co_await",
    "co_yield",
};

// Member names shared with the std container/smart-pointer/atomic API.
// A member call through one of these is overwhelmingly a library call on a
// std receiver, and resolving it by bare name against every same-named
// corpus method manufactures wild edges (`x.size()` is not Interner::size,
// `flags.load()` is not PageLoader::load). Treated as external — the
// corresponding corpus methods are still reachable through qualified and
// implicit-this calls.
const std::unordered_set<std::string_view> kCommonMemberNames = {
    "size",     "empty",   "clear",  "begin",   "end",     "rbegin",
    "rend",     "find",    "count",  "at",      "front",   "back",
    "data",     "push_back", "pop_back", "insert", "erase", "emplace",
    "emplace_back", "reserve", "resize", "swap", "load",    "store",
    "exchange", "get",     "reset",  "release", "lock",    "unlock",
    "try_lock", "str",     "c_str",  "substr",  "append",  "assign",
    "length",   "value",   "has_value", "first", "second",
};

bool is_macro_name(std::string_view name) {
  if (name.size() < 2) return false;
  bool has_alpha = false;
  for (const char c : name) {
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      has_alpha = true;
    } else if (std::isdigit(static_cast<unsigned char>(c)) == 0 &&
               c != '_') {
      return false;
    }
  }
  return has_alpha;
}

// Walks a `A :: B :: name` chain backwards from the name token. Returns the
// index of the chain's first token and fills `qualifier` with the joined
// components before the final name ("A::B", empty when unqualified).
std::size_t walk_qualifier(const std::vector<Token>& toks, std::size_t name_at,
                           std::string& qualifier) {
  std::size_t start = name_at;
  while (start >= 2 && is_punct(toks[start - 1], "::") &&
         toks[start - 2].kind == TokenKind::kIdentifier) {
    start -= 2;
  }
  qualifier.clear();
  for (std::size_t i = start; i < name_at; i += 2) {
    if (!qualifier.empty()) qualifier += "::";
    qualifier += toks[i].text;
  }
  return start;
}

std::string_view qualifier_head(const std::string& qualifier) {
  const std::size_t sep = qualifier.find("::");
  return sep == std::string::npos
             ? std::string_view(qualifier)
             : std::string_view(qualifier).substr(0, sep);
}

std::string_view qualifier_tail(const std::string& qualifier) {
  const std::size_t sep = qualifier.rfind("::");
  return sep == std::string::npos
             ? std::string_view(qualifier)
             : std::string_view(qualifier).substr(sep + 2);
}

// After the parameter list's ')', finds the body '{' of a definition,
// skipping cv/ref/noexcept/override/final, trailing return types, and
// constructor member-initializer lists. Returns tokens.size() when the
// signature turns out to be a declaration or expression.
std::size_t find_body_open(const std::vector<Token>& toks,
                           std::size_t params_close) {
  std::size_t i = params_close + 1;
  bool in_init_list = false;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, ";") || is_punct(t, ",")) return toks.size();
    if (is_punct(t, "=")) return toks.size();  // `= default`, `= 0`
    if (is_punct(t, "(") || is_punct(t, "[")) {
      // noexcept(...), attribute, or a member-initializer's argument list.
      const std::size_t close = match_forward(
          toks, i, is_punct(t, "(") ? "(" : "[", is_punct(t, "(") ? ")" : "]");
      if (close == toks.size()) return toks.size();
      i = close + 1;
      continue;
    }
    if (is_punct(t, "<")) {
      const std::size_t close = match_forward(toks, i, "<", ">");
      if (close == toks.size()) return toks.size();
      i = close + 1;
      continue;
    }
    if (is_punct(t, ":") && !in_init_list) {
      // Constructor member-initializer list; braced initializers inside it
      // are consumed below.
      in_init_list = true;
      ++i;
      continue;
    }
    if (is_punct(t, "{")) {
      if (in_init_list && i > 0 &&
          (toks[i - 1].kind == TokenKind::kIdentifier ||
           is_punct(toks[i - 1], ">"))) {
        // `member{...}` braced initializer, not the body.
        const std::size_t close = match_forward(toks, i, "{", "}");
        if (close == toks.size()) return toks.size();
        i = close + 1;
        continue;
      }
      return i;
    }
    ++i;
  }
  return toks.size();
}

// Leading declaration specifiers stripped from return-type text.
const std::unordered_set<std::string_view> kSpecifiers = {
    "static", "inline", "constexpr", "consteval", "virtual", "explicit",
    "extern", "friend",  "ORIGIN_HOT", "typename",
};

struct ClassScope {
  std::string name;
  std::size_t close = 0;  // token index of the class body's '}'
};

// Parses the `operator` spelling starting at token `op` ("operator"),
// returning the index of the parameter-list '(' and the composed name
// ("operator()", "operator==", "operator bool"). Returns tokens.size() on
// anything unexpected.
std::size_t parse_operator_name(const std::vector<Token>& toks,
                                std::size_t op, std::string& name) {
  name = "operator";
  std::size_t i = op + 1;
  if (i + 1 < toks.size() && is_punct(toks[i], "(") &&
      is_punct(toks[i + 1], ")")) {
    name += "()";
    return i + 2;
  }
  if (i + 1 < toks.size() && is_punct(toks[i], "[") &&
      is_punct(toks[i + 1], "]")) {
    name += "[]";
    return i + 2;
  }
  while (i < toks.size() && !is_punct(toks[i], "(")) {
    if (toks[i].kind == TokenKind::kIdentifier) {
      name += ' ';
      name += toks[i].text;
    } else {
      name += toks[i].text;
    }
    ++i;
    // Conversion operators can spell a qualified type; bail on anything
    // that drags on (not a definition we model).
    if (name.size() > 48) return toks.size();
  }
  return i;
}

void collect_definitions(const std::deque<FileModel>& corpus,
                         std::vector<FunctionDef>& defs) {
  for (std::size_t file_idx = 0; file_idx < corpus.size(); ++file_idx) {
    const FileModel& file = corpus[file_idx];
    const std::vector<Token>& toks = file.tokens;
    std::vector<ClassScope> scopes;

    for (std::size_t i = 0; i < toks.size(); ++i) {
      while (!scopes.empty() && scopes.back().close < i) scopes.pop_back();
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;

      // Class / struct scope entry. `enum class` is not a scope.
      if ((t.text == "class" || t.text == "struct") &&
          (i == 0 || !is_ident(toks[i - 1], "enum"))) {
        std::string name;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
          if (is_punct(toks[j], ";") || is_punct(toks[j], "{") ||
              is_punct(toks[j], ":") || is_punct(toks[j], ")")) {
            break;
          }
          if (toks[j].kind == TokenKind::kIdentifier &&
              !is_macro_name(toks[j].text) && toks[j].text != "final") {
            name = std::string(toks[j].text);
          }
          if (is_punct(toks[j], "(")) {  // attribute-macro argument list
            j = match_forward(toks, j, "(", ")");
            if (j == toks.size()) break;
          }
          if (is_punct(toks[j], "<")) {  // template-id in specializations
            j = match_forward(toks, j, "<", ">");
            if (j == toks.size()) break;
          }
        }
        // Find the body '{' (skipping the base clause); ';' first means a
        // forward declaration.
        for (; j < toks.size(); ++j) {
          if (is_punct(toks[j], ";")) break;
          if (is_punct(toks[j], "{")) {
            const std::size_t close = match_forward(toks, j, "{", "}");
            if (close != toks.size() && !name.empty()) {
              scopes.push_back(ClassScope{std::move(name), close});
            }
            i = j;  // continue scanning inside the class body
            break;
          }
        }
        continue;
      }

      // Candidate definition: `name (` or `operator...(`.
      std::string op_name;
      std::size_t open = toks.size();
      std::size_t name_at = i;
      if (t.text == "operator") {
        open = parse_operator_name(toks, i, op_name);
        if (open == toks.size() || !is_punct(toks[open], "(")) continue;
      } else {
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
        if (kControlKeywords.count(t.text) > 0 ||
            kBuiltinTypes.count(t.text) > 0 || is_macro_name(t.text)) {
          continue;
        }
        open = i + 1;
      }

      std::string qualifier;
      const std::size_t chain_start = walk_qualifier(toks, name_at, qualifier);
      const bool is_dtor =
          chain_start > 0 && is_punct(toks[chain_start - 1], "~");
      const std::size_t before =
          chain_start == 0 ? 0 : chain_start - (is_dtor ? 2 : 1);

      // The token before the (possibly qualified) name decides whether this
      // can be a definition at all: a member access or an operator means we
      // are looking at an expression.
      if (chain_start > 0 && !is_dtor) {
        const Token& prev = toks[chain_start - 1];
        if (prev.kind == TokenKind::kIdentifier) {
          if (kCallPrefixKeywords.count(prev.text) > 0) continue;
        } else if (prev.kind == TokenKind::kPunct) {
          static const std::unordered_set<std::string_view> kDefPrevPunct = {
              "}", "{", ";", ":", "*", "&", ">", "]",
          };
          if (kDefPrevPunct.count(prev.text) == 0) continue;
        } else if (prev.kind != TokenKind::kPreprocessor) {
          continue;
        }
      }

      const std::size_t close = match_forward(toks, open, "(", ")");
      if (close == toks.size()) continue;
      const std::size_t body_open = find_body_open(toks, close);
      if (body_open == toks.size()) continue;
      const std::size_t body_close = match_forward(toks, body_open, "{", "}");
      if (body_close == toks.size()) continue;

      FunctionDef def;
      def.name = op_name.empty() ? std::string(t.text) : op_name;
      if (is_dtor) def.name = "~" + def.name;
      def.file = file_idx;
      def.line = t.line;
      def.body_begin = body_open + 1;
      def.body_end = body_close;
      parse_param_list(toks, open, close, def.params);

      if (!qualifier.empty()) {
        def.class_name = std::string(qualifier_tail(qualifier));
        def.is_method = true;
      } else if (!scopes.empty()) {
        def.class_name = scopes.back().name;
        def.is_method = true;
      }

      // Return type and hot marker: the identifier/punct run before the
      // name chain, back to the previous statement boundary.
      std::size_t rt_begin = before;
      while (rt_begin > 0) {
        const Token& b = toks[rt_begin - 1];
        if (b.kind == TokenKind::kPreprocessor) break;
        if (b.kind == TokenKind::kPunct &&
            (b.text == ";" || b.text == "}" || b.text == "{" ||
             b.text == ":" || b.text == ")")) {
          break;
        }
        --rt_begin;
      }
      for (std::size_t k = rt_begin; chain_start > 0 && k < chain_start - 0;
           ++k) {
        if (is_ident(toks[k], "ORIGIN_HOT")) def.is_hot = true;
      }
      {
        std::vector<Token> rt;
        for (std::size_t k = rt_begin;
             k < (chain_start == 0 ? name_at : chain_start); ++k) {
          if (toks[k].kind == TokenKind::kIdentifier &&
              kSpecifiers.count(toks[k].text) > 0) {
            continue;
          }
          rt.push_back(toks[k]);
        }
        def.return_type_text = join_tokens(rt, 0, rt.size());
      }

      defs.push_back(std::move(def));
      // Continue scanning *inside* the body: local structs and lambdas are
      // walked by the same loop; call-site extraction is a separate pass.
    }
  }
}

void extract_calls(const CallGraph& graph_so_far,
                   const std::deque<FileModel>& corpus,
                   const std::vector<FunctionDef>& defs,
                   std::vector<CallSite>& calls) {
  (void)graph_so_far;
  for (std::size_t fn = 0; fn < defs.size(); ++fn) {
    const FunctionDef& def = defs[fn];
    const std::vector<Token>& toks = corpus[def.file].tokens;
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (i + 1 >= def.body_end || !is_punct(toks[i + 1], "(")) continue;
      if (t.text == "operator") continue;  // operator invocation spelling
      if (kControlKeywords.count(t.text) > 0 ||
          kBuiltinTypes.count(t.text) > 0 || is_macro_name(t.text)) {
        continue;
      }

      CallSite site;
      site.caller = fn;
      site.name = std::string(t.text);
      const std::size_t chain_start = walk_qualifier(toks, i, site.qualifier);
      if (chain_start > 0) {
        const Token& prev = toks[chain_start - 1];
        if (is_punct(prev, ".") || is_punct(prev, "->")) {
          site.is_member_call = true;
          site.receiver_is_this =
              is_punct(prev, "->") && chain_start >= 2 &&
              is_ident(toks[chain_start - 2], "this");
        } else if (prev.kind == TokenKind::kIdentifier &&
                   kCallPrefixKeywords.count(prev.text) == 0) {
          // `Type name(...)`: a declaration, not a call.
          continue;
        } else if (is_punct(prev, "~")) {
          continue;  // destructor mention
        }
      }
      site.token_index = i;
      site.line = t.line;
      calls.push_back(std::move(site));
    }
  }
}

}  // namespace

CallGraph CallGraph::build(const std::deque<FileModel>& corpus) {
  CallGraph graph;
  graph.corpus_ = &corpus;
  collect_definitions(corpus, graph.functions_);
  extract_calls(graph, corpus, graph.functions_, graph.calls_);

  // Name indexes for resolution.
  std::unordered_map<std::string, std::vector<std::size_t>> by_qual;
  std::unordered_map<std::string, std::vector<std::size_t>> free_by_name;
  std::unordered_map<std::string, std::vector<std::size_t>> methods_by_name;
  for (std::size_t i = 0; i < graph.functions_.size(); ++i) {
    const FunctionDef& def = graph.functions_[i];
    if (def.is_method) {
      by_qual[def.qualified()].push_back(i);
      methods_by_name[def.name].push_back(i);
    } else {
      free_by_name[def.name].push_back(i);
    }
  }

  for (CallSite& call : graph.calls_) {
    const FunctionDef& caller = graph.functions_[call.caller];
    auto resolve_from =
        [&](const std::unordered_map<std::string, std::vector<std::size_t>>&
                index,
            const std::string& key) {
          const auto it = index.find(key);
          if (it == index.end()) return false;
          call.targets = it->second;
          call.resolution = CallResolution::kResolved;
          return true;
        };

    if (call.is_member_call) {
      // `this->f()` always means the caller's own class, even for a name
      // that collides with the std member API.
      if (call.receiver_is_this && caller.is_method &&
          resolve_from(by_qual, caller.class_name + "::" + call.name)) {
        continue;
      }
      if (kCommonMemberNames.count(call.name) > 0) {
        call.resolution = CallResolution::kExternal;
        continue;
      }
      // Other receivers prefer the caller's own class (sibling objects are
      // common) before the corpus-wide method index.
      if (caller.is_method &&
          resolve_from(by_qual, caller.class_name + "::" + call.name)) {
        continue;
      }
      if (resolve_from(methods_by_name, call.name)) continue;
      // Member call on a type the corpus does not define a method for:
      // overwhelmingly std/library receivers.
      call.resolution = CallResolution::kExternal;
      continue;
    }
    if (!call.qualifier.empty()) {
      if (resolve_from(by_qual, std::string(qualifier_tail(call.qualifier)) +
                                    "::" + call.name)) {
        continue;
      }
      if (resolve_from(free_by_name, call.name)) continue;
      if (resolve_from(methods_by_name, call.name)) continue;
      call.resolution = qualifier_head(call.qualifier) == "std"
                            ? CallResolution::kExternal
                            : CallResolution::kUnresolved;
      continue;
    }
    // Unqualified: implicit-this first, then free functions.
    if (caller.is_method &&
        resolve_from(by_qual, caller.class_name + "::" + call.name)) {
      continue;
    }
    if (resolve_from(free_by_name, call.name)) continue;
    call.resolution = CallResolution::kUnresolved;
  }

  // Adjacency.
  graph.callees_.assign(graph.functions_.size(), {});
  graph.sites_of_.assign(graph.functions_.size(), {});
  for (std::size_t c = 0; c < graph.calls_.size(); ++c) {
    const CallSite& call = graph.calls_[c];
    graph.sites_of_[call.caller].push_back(c);
    for (const std::size_t target : call.targets) {
      std::vector<std::size_t>& out = graph.callees_[call.caller];
      if (std::find(out.begin(), out.end(), target) == out.end()) {
        out.push_back(target);
      }
    }
  }
  return graph;
}

bool CallGraph::returns_result_or_status(std::size_t fn) const {
  const std::string& rt = functions_[fn].return_type_text;
  // Token-level match: `util :: Result < T >` / `Status`, but not
  // WireLoadResult or RobustnessStats.
  std::size_t at = 0;
  for (const std::string_view needle : {"Result", "Status"}) {
    at = 0;
    while ((at = rt.find(needle, at)) != std::string::npos) {
      const bool left_ok = at == 0 || rt[at - 1] == ' ';
      const std::size_t end = at + needle.size();
      const bool right_ok = end == rt.size() || rt[end] == ' ';
      if (left_ok && right_ok) return true;
      at = end;
    }
  }
  return false;
}

std::size_t CallGraph::report_unresolved(std::ostream& out) const {
  std::size_t unresolved = 0;
  std::size_t external = 0;
  std::vector<std::string> lines;
  for (const CallSite& call : calls_) {
    if (call.resolution == CallResolution::kResolved) continue;
    if (call.resolution == CallResolution::kExternal) {
      ++external;
      continue;
    }
    ++unresolved;
    const FunctionDef& caller = functions_[call.caller];
    lines.push_back((*corpus_)[caller.file].rel + ":" +
                    std::to_string(call.line) + ": unresolved call to '" +
                    (call.qualifier.empty() ? call.name
                                            : call.qualifier +
                                                  "::" + call.name) +
                    "' from " + caller.qualified());
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (const std::string& line : lines) out << line << '\n';
  out << "callgraph: " << unresolved << " unresolved call sites ("
      << external << " external/library, " << calls_.size() << " total)\n";
  return unresolved;
}

void CallGraph::dump(std::ostream& out) const {
  out << "callgraph: " << functions_.size() << " function definitions, "
      << calls_.size() << " call sites\n";
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const FunctionDef& def = functions_[i];
    out << (*corpus_)[def.file].rel << ":" << def.line << ": "
        << def.qualified() << (def.is_hot ? " [hot]" : "");
    if (!callees_[i].empty()) {
      out << " ->";
      for (const std::size_t callee : callees_[i]) {
        out << ' ' << functions_[callee].qualified();
      }
    }
    out << '\n';
  }
  report_unresolved(out);
}

}  // namespace origin::analyze
