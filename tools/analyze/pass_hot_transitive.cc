// Hot-transitive pass.
//
// PR 6's alloc pass sees one function body at a time, so an ORIGIN_HOT
// function could launder an allocation through any unannotated helper. This
// pass closes that hole: BFS over the call graph from every ORIGIN_HOT
// definition, and every reachable unannotated function's body gets the same
// allocation check (alloc_check.h). Findings are reported under the single
// rule `hot-transitive`, at the violating line of the callee, with the full
// shortest hot call chain in the message so the reader sees *why* the
// function is hot:
//
//   src/util/bytes.h:24: [hot-transitive] unreserved container growth via
//   .push_back() on 'buf_' (hot chain: serialize_frame -> write_header ->
//   u8)
//
// Already-annotated callees are skipped — the direct alloc pass owns them,
// and double-reporting the same line under two rules would force double
// waivers. Parameter-copy checks are also skipped for unannotated callees
// (a by-value signature is only a contract violation when the function
// itself claims the contract); bodies are where laundering happens.
#include <cstddef>
#include <string>
#include <vector>

#include "alloc_check.h"
#include "passes.h"

namespace origin::analyze {

void run_hot_transitive_pass(const CallGraph& graph, FindingSink& sink) {
  const std::vector<FunctionDef>& fns = graph.functions();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent(fns.size(), kUnvisited);
  std::vector<bool> visited(fns.size(), false);

  // BFS from all hot roots at once: parent chains are shortest, and a
  // callee shared by several hot paths is reported once.
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].is_hot) {
      visited[i] = true;
      queue.push_back(i);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t fn = queue[head];
    for (const std::size_t callee : graph.callees()[fn]) {
      if (visited[callee]) continue;
      visited[callee] = true;
      parent[callee] = fn;
      queue.push_back(callee);
    }
  }

  auto chain_of = [&](std::size_t fn) {
    std::vector<std::size_t> chain;
    for (std::size_t at = fn; at != kUnvisited; at = parent[at]) {
      chain.push_back(at);
      if (fns[at].is_hot && parent[at] == kUnvisited) break;
    }
    std::string text;
    for (std::size_t i = chain.size(); i-- > 0;) {
      if (!text.empty()) text += " -> ";
      text += fns[chain[i]].qualified();
    }
    return text;
  };

  for (const std::size_t fn : queue) {
    const FunctionDef& def = fns[fn];
    if (def.is_hot) continue;  // direct alloc pass owns annotated bodies
    const FileModel& file = graph.corpus()[def.file];
    std::vector<AllocViolation> violations;
    collect_alloc_violations(file, def.body_begin, def.body_end, def.params,
                             /*check_params=*/false, violations);
    for (AllocViolation& v : violations) {
      sink.add("hot-transitive", file.rel, v.line == 0 ? def.line : v.line,
               std::move(v.message) + " in '" + def.qualified() +
                   "', reachable from a hot root (hot chain: " +
                   chain_of(fn) + ")");
    }
  }
}

}  // namespace origin::analyze
