// The origin_analyze invariant passes. Each pass walks the modeled corpus
// and reports violations into the shared FindingSink; waiver application
// and output formatting happen afterwards in the driver.
#pragma once

#include <deque>

#include "findings.h"
#include "model.h"

namespace origin::analyze {

// Hot-path allocation discipline: functions annotated ORIGIN_HOT may not
// allocate. Rules: hot-new (new / make_unique / make_shared),
// hot-string-construct (std::string construction or concatenation),
// hot-unreserved-growth (push_back/emplace_back/insert/operator[] growth on
// receivers that are not sanctioned scratch state), hot-owning-copy
// (by-value std::string / std::vector / std::function parameters).
void run_alloc_pass(const std::deque<FileModel>& corpus, FindingSink& sink);

// Determinism: iteration over unordered containers (util::FlatMap/FlatSet,
// std::unordered_*) feeding serialization or report output must be sorted
// first (det-unordered-iter); wall-clock reads, ambient rand(), and
// pointer-value formatting are confined to sanctioned modules
// (det-wall-clock, det-ambient-rand, det-pointer-value).
void run_determinism_pass(const std::deque<FileModel>& corpus,
                          FindingSink& sink);

// Layering: the module DAG is
//   util(0) → netsim,dns,tls(1) → h1,h2,hpack,web,ct(2) →
//   server,cdn,browser(3) → dataset,measure,model(4)
// A module may include same-or-lower layers only (layer-upward), and the
// include graph must stay acyclic even within a layer (layer-cycle).
void run_layering_pass(const std::deque<FileModel>& corpus,
                       FindingSink& sink);

}  // namespace origin::analyze
