// The origin_analyze invariant passes. Each pass walks the modeled corpus
// and reports violations into the shared FindingSink; waiver application
// and output formatting happen afterwards in the driver.
#pragma once

#include <deque>

#include "callgraph.h"
#include "findings.h"
#include "model.h"

namespace origin::analyze {

// Hot-path allocation discipline: functions annotated ORIGIN_HOT may not
// allocate. Rules: hot-new (new / make_unique / make_shared),
// hot-string-construct (std::string construction or concatenation),
// hot-unreserved-growth (push_back/emplace_back/insert/operator[] growth on
// receivers that are not sanctioned scratch state), hot-owning-copy
// (by-value std::string / std::vector / std::function parameters).
void run_alloc_pass(const std::deque<FileModel>& corpus, FindingSink& sink);

// Determinism: iteration over unordered containers (util::FlatMap/FlatSet,
// std::unordered_*) feeding serialization or report output must be sorted
// first (det-unordered-iter); wall-clock reads, ambient rand(), and
// pointer-value formatting are confined to sanctioned modules
// (det-wall-clock, det-ambient-rand, det-pointer-value).
void run_determinism_pass(const std::deque<FileModel>& corpus,
                          FindingSink& sink);

// Layering: the module DAG is
//   util(0) → netsim,dns,tls(1) → h1,h2,hpack,web,ct(2) →
//   server,cdn,browser(3) → dataset,measure,model(4)
// A module may include same-or-lower layers only (layer-upward), and the
// include graph must stay acyclic even within a layer (layer-cycle).
void run_layering_pass(const std::deque<FileModel>& corpus,
                       FindingSink& sink);

// Interprocedural passes over the call graph (callgraph.h).
//
// Hot-transitive: the transitive closure of ORIGIN_HOT over call edges.
// Every reachable unannotated callee gets the same body-level allocation
// check as an annotated function (hot-transitive findings carry the full
// hot call chain, e.g. `replay_batch -> batch_join -> helper`).
void run_hot_transitive_pass(const CallGraph& graph, FindingSink& sink);

// Lock-order: util::MutexLock acquisition sequences per function, held-lock
// sets propagated through call edges, cycle detection over the lock-order
// graph (lock-cycle), plus CondVar waits performed while a second lock
// class is held (lock-wait-while-holding). Lock identity is the mutex
// member/variable name — the lock *class* — so per-instance mutexes of the
// same family (per-worker `mu`) are one node, the standard conservative
// choice for ABBA detection.
void run_lock_order_pass(const CallGraph& graph, FindingSink& sink);

// Error-propagation: intra-body dataflow over util::Result/util::Status
// values returned by corpus functions. A bound result that is never read
// again (error-unchecked) or a `(void)`-discarded call (error-discard)
// silently swallows the error path — the §6.7 failure mode [[nodiscard]]
// alone cannot catch once the value is bound or cast away.
void run_error_prop_pass(const CallGraph& graph, FindingSink& sink);

}  // namespace origin::analyze
