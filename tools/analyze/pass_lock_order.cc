// Lock-order pass.
//
// The TSan leg only sees interleavings that actually executed; this pass is
// its static complement. Every `util::MutexLock lock(&mu)` acquisition is
// extracted per function with its lexical scope, held-lock sets are
// propagated through call-graph edges, and the resulting lock-order graph
// must be acyclic:
//
//   lock-cycle              two lock classes are acquired in both orders
//                           (ABBA), or a class is (transitively) acquired
//                           while already held — both deadlock
//                           non-recursive mutexes
//   lock-wait-while-holding a CondVar wait performed while a *second* lock
//                           class is held: the waited mutex is released
//                           during the wait, the others are not, so every
//                           other thread needing them stalls for the full
//                           wait
//
// Lock identity is the mutex variable/member name — the lock *class* — so
// all per-worker `mu` instances are one node. That is deliberately
// conservative: two instances of one class taken in program-order-dependent
// sequence is exactly the ABBA shape worth a human look (and a waiver when
// the order is provably fixed, e.g. owner-then-victim stealing that
// releases between acquisitions).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes.h"

namespace origin::analyze {

namespace {

// The last identifier of the expression between parens: `&worker.mu` ->
// "mu", `&job_mu_` -> "job_mu_".
std::string lock_class_of(const std::vector<Token>& toks, std::size_t open,
                          std::size_t close) {
  std::string name;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (toks[i].kind == TokenKind::kIdentifier) name = toks[i].text;
  }
  return name;
}

struct HeldLock {
  std::string lock_class;
  std::size_t depth = 0;  // brace depth at acquisition
};

struct Site {
  std::string file;
  std::size_t line = 0;
};

struct CallEvent {
  std::vector<std::string> held;
  const CallSite* call = nullptr;
};

struct FunctionLocks {
  std::set<std::string> direct;       // classes acquired in this body
  std::vector<CallEvent> calls;       // call sites with locks held
};

}  // namespace

void run_lock_order_pass(const CallGraph& graph, FindingSink& sink) {
  const std::vector<FunctionDef>& fns = graph.functions();
  std::vector<FunctionLocks> locks(fns.size());

  // Ordered maps keep cycle reports deterministic.
  std::map<std::string, std::map<std::string, Site>> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, std::size_t line) {
    edges[from].emplace(to, Site{file, line});
  };

  // Pass 1: per-function scan — acquisitions with scopes, intra-function
  // nesting edges, cv waits, and call events with held-set snapshots.
  for (std::size_t fn = 0; fn < fns.size(); ++fn) {
    const FunctionDef& def = fns[fn];
    const FileModel& file = graph.corpus()[def.file];
    const std::vector<Token>& toks = file.tokens;

    // Call sites of this function in token order.
    std::vector<const CallSite*> sites;
    for (const std::size_t c : graph.sites_of()[fn]) {
      sites.push_back(&graph.calls()[c]);
    }
    std::sort(sites.begin(), sites.end(),
              [](const CallSite* a, const CallSite* b) {
                return a->token_index < b->token_index;
              });
    std::size_t next_site = 0;

    std::vector<HeldLock> held;
    std::size_t depth = 0;
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      const Token& t = toks[i];
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        if (depth > 0) --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        continue;
      }

      // Call event: snapshot the held set at this site.
      while (next_site < sites.size() &&
             sites[next_site]->token_index <= i) {
        if (sites[next_site]->token_index == i && !held.empty() &&
            !sites[next_site]->targets.empty()) {
          CallEvent event;
          for (const HeldLock& h : held) {
            event.held.push_back(h.lock_class);
          }
          event.call = sites[next_site];
          locks[fn].calls.push_back(std::move(event));
        }
        ++next_site;
      }

      if (t.kind != TokenKind::kIdentifier) continue;

      // `MutexLock name(&expr);`
      if (t.text == "MutexLock" && i + 2 < def.body_end &&
          toks[i + 1].kind == TokenKind::kIdentifier &&
          is_punct(toks[i + 2], "(")) {
        const std::size_t close = match_forward(toks, i + 2, "(", ")");
        if (close == toks.size()) continue;
        const std::string lock_class = lock_class_of(toks, i + 2, close);
        if (lock_class.empty()) continue;
        for (const HeldLock& h : held) {
          add_edge(h.lock_class, lock_class, file.rel, t.line);
        }
        held.push_back(HeldLock{lock_class, depth});
        locks[fn].direct.insert(lock_class);
        continue;
      }

      // CondVar wait while other lock classes are held: `cv.wait(mu)`
      // releases only `mu` for the duration of the wait.
      if (t.text == "wait" && i > 0 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
          i + 1 < def.body_end && is_punct(toks[i + 1], "(") &&
          !held.empty()) {
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        if (close == toks.size()) continue;
        const std::string waited = lock_class_of(toks, i + 1, close);
        const bool waited_is_held =
            std::any_of(held.begin(), held.end(), [&](const HeldLock& h) {
              return h.lock_class == waited;
            });
        if (!waited_is_held) continue;  // not a cv-on-our-mutex wait
        std::string others;
        for (const HeldLock& h : held) {
          if (h.lock_class == waited) continue;
          if (!others.empty()) others += ", ";
          others += "'" + h.lock_class + "'";
        }
        if (!others.empty()) {
          sink.add("lock-wait-while-holding", file.rel, t.line,
                   "condition-variable wait releases only '" + waited +
                       "' while " + others + " stay(s) held in '" +
                       def.qualified() +
                       "' — other threads needing them stall for the whole "
                       "wait");
        }
      }
    }
  }

  // Pass 2: fixpoint of transitively-acquired lock classes per function.
  std::vector<std::set<std::string>> acq_star(fns.size());
  for (std::size_t fn = 0; fn < fns.size(); ++fn) {
    acq_star[fn] = locks[fn].direct;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t fn = 0; fn < fns.size(); ++fn) {
      for (const std::size_t callee : graph.callees()[fn]) {
        for (const std::string& lock_class : acq_star[callee]) {
          if (acq_star[fn].insert(lock_class).second) changed = true;
        }
      }
    }
  }

  // Pass 3: interprocedural edges — a call made with H held reaches every
  // lock class the callee may (transitively) acquire.
  for (std::size_t fn = 0; fn < fns.size(); ++fn) {
    const FileModel& file = graph.corpus()[fns[fn].file];
    for (const CallEvent& event : locks[fn].calls) {
      for (const std::size_t target : event.call->targets) {
        for (const std::string& acquired : acq_star[target]) {
          for (const std::string& h : event.held) {
            add_edge(h, acquired, file.rel, event.call->line);
          }
        }
      }
    }
  }

  // Self-edges are immediate deadlocks of a non-recursive mutex.
  for (const auto& [from, outs] : edges) {
    const auto self = outs.find(from);
    if (self != outs.end()) {
      sink.add("lock-cycle", self->second.file, self->second.line,
               "lock class '" + from +
                   "' is (transitively) acquired while already held — "
                   "deadlocks a non-recursive mutex");
    }
  }

  // Cycle detection over the lock-order graph, mirroring the layering
  // pass: iterative DFS with a path stack, one report per distinct cycle.
  std::set<std::string> done;
  std::set<std::string> reported;
  for (const auto& [start, unused] : edges) {
    (void)unused;
    if (done.count(start) > 0) continue;
    std::vector<std::string> path;
    std::set<std::string> on_path;
    struct Frame {
      std::string node;
      std::map<std::string, Site>::const_iterator next;
    };
    std::vector<Frame> stack;
    auto push = [&](const std::string& n) {
      path.push_back(n);
      on_path.insert(n);
      static const std::map<std::string, Site> kEmpty;
      const auto it = edges.find(n);
      stack.push_back(
          Frame{n, it == edges.end() ? kEmpty.begin() : it->second.begin()});
    };
    push(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto eit = edges.find(frame.node);
      if (eit == edges.end() || frame.next == eit->second.end()) {
        done.insert(frame.node);
        on_path.erase(frame.node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string& to = frame.next->first;
      const Site& site = frame.next->second;
      ++frame.next;
      if (to == frame.node) continue;  // self-edge reported above
      if (on_path.count(to) > 0) {
        std::string cycle = to;
        bool in_cycle = false;
        for (const std::string& n : path) {
          if (n == to) in_cycle = true;
          if (in_cycle && n != to) cycle += " -> " + n;
        }
        cycle += " -> " + to;
        if (reported.insert(cycle).second) {
          sink.add("lock-cycle", site.file, site.line,
                   "lock-order cycle between lock classes: " + cycle);
        }
        continue;
      }
      if (done.count(to) == 0) push(to);
    }
  }
}

}  // namespace origin::analyze
