// Fixture: a Status-returning call bound to a name that is never read
// again (error-unchecked).
struct Status {
  bool ok() const { return true; }
};

Status do_work() { return Status{}; }

int run() {
  auto st = do_work();
  return 0;
}
