// Fixture: std::string construction inside an ORIGIN_HOT body
// (hot-string-construct).
#include <string>

#define ORIGIN_HOT __attribute__((hot))

ORIGIN_HOT int label_length(int id) {
  std::string label = "id-";
  label += static_cast<char>('0' + id % 10);
  return static_cast<int>(label.size());
}
