// Fixture: deliberate violations carrying inline waivers — the analyzer
// must report them as waived and exit 0.
#include <utility>

#define ORIGIN_HOT __attribute__((hot))

ORIGIN_HOT int* make_counter() {
  return new int(0);  // analyze:allow(hot-new): fixture exercising the inline waiver path end to end
}

namespace util {
template <typename K, typename V>
struct FlatMap {
  std::pair<K, V>* begin() const { return nullptr; }
  std::pair<K, V>* end() const { return nullptr; }
};
}  // namespace util

int merge(const util::FlatMap<int, int>& counts) {
  int total = 0;
  // analyze:allow(det-unordered-iter): commutative sum, order-independent
  for (const auto& [key, value] : counts) {
    total += key + value;
  }
  return total;
}
