// Fixture: ABBA acquisition — two functions take the same two lock
// classes in opposite orders (lock-cycle).
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

Mutex table_mu;
Mutex stats_mu;

void update_then_count() {
  MutexLock table(&table_mu);
  MutexLock stats(&stats_mu);
}

void count_then_update() {
  MutexLock stats(&stats_mu);
  MutexLock table(&table_mu);
}
