// Fixture: a waiver whose reason is too short to be a claim — the
// violation itself is waived, but waiver-short-reason must still fail the
// run.
#define ORIGIN_HOT __attribute__((hot))

ORIGIN_HOT int* make_counter() {
  return new int(0);  // analyze:allow(hot-new): perf
}
