// Fixture: the transitive closure must accept helpers that follow the
// scratch discipline, and must not chase cold-only call chains.
#include <vector>

#define ORIGIN_HOT __attribute__((hot))

struct ReplayScratch {
  std::vector<int> items;
};

void append_scratch(ReplayScratch& s, int v) {
  s.items.push_back(v);
}

void append_reserved(std::vector<int>& out, int v) {
  out.reserve(16);
  out.push_back(v);
}

ORIGIN_HOT void record(ReplayScratch& s, std::vector<int>& out, int v) {
  append_scratch(s, v);
  append_reserved(out, v);
}

// Reachable only from cold code: never subject to the hot contract.
void cold_grow(std::vector<int>& out, int v) {
  out.push_back(v);
}

void cold_driver(std::vector<int>& out) {
  cold_grow(out, 1);
}
