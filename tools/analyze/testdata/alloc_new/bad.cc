// Fixture: operator new inside an ORIGIN_HOT body (hot-new).
#define ORIGIN_HOT __attribute__((hot))

ORIGIN_HOT int* make_counter() {
  return new int(0);
}
