// Fixture: Result/Status handling the error-propagation pass must accept —
// tested, returned, and forwarded values all count as used.
struct Status {
  bool ok() const { return true; }
};

Status do_work() { return Status{}; }

void log_status(const Status& st);

Status propagated() {
  return do_work();
}

int tested() {
  auto st = do_work();
  if (!st.ok()) return 1;
  return 0;
}

int forwarded() {
  Status st = do_work();
  log_status(st);
  return 0;
}
