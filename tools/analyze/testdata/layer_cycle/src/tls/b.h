// Fixture: the other half of the dns <-> tls cycle (layer-cycle). Neither
// edge is upward — both modules sit in layer 1 — so only cycle detection
// catches this.
#pragma once

#include "dns/a.h"

namespace origin::tls {
inline int b_value() { return 2; }
}  // namespace origin::tls
