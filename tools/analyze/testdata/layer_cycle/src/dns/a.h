// Fixture: half of a same-layer include cycle dns <-> tls (layer-cycle).
#pragma once

#include "tls/b.h"

namespace origin::dns {
inline int a_value() { return 1; }
}  // namespace origin::dns
