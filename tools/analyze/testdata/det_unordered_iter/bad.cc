// Fixture: direct iteration over an unordered container
// (det-unordered-iter) — order is hash/insertion dependent.
#include <utility>

namespace util {
template <typename K, typename V>
struct FlatMap {
  std::pair<K, V>* begin() const { return nullptr; }
  std::pair<K, V>* end() const { return nullptr; }
};
}  // namespace util

using Counts = util::FlatMap<int, int>;

int emit(const Counts& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += key + value;
  }
  return total;
}
