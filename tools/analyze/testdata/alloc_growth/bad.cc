// Fixture: unreserved container growth inside an ORIGIN_HOT body
// (hot-unreserved-growth) — the receiver is neither scratch-typed nor
// prepared with reserve()/clear()/assign().
#include <vector>

#define ORIGIN_HOT __attribute__((hot))

ORIGIN_HOT void collect(std::vector<int>& out, int v) {
  out.push_back(v);
}
