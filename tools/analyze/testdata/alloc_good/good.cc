// Fixture: hot-path code the alloc pass must accept — growth through a
// scratch arena and through an explicitly reserved receiver.
#include <string>
#include <vector>

#define ORIGIN_HOT __attribute__((hot))

struct AnalysisScratch {
  std::vector<int> items;
};

ORIGIN_HOT void accumulate(AnalysisScratch& s, int v) {
  s.items.push_back(v);
}

ORIGIN_HOT void collect_reserved(std::vector<int>& out, int v) {
  out.reserve(16);
  out.push_back(v);
}

ORIGIN_HOT int read_only(const std::string& name) {
  return name.empty() ? 0 : static_cast<int>(name.front());
}

// Cold code allocates freely; only ORIGIN_HOT bodies are checked.
std::string cold_label(int id) {
  return "id-" + std::to_string(id);
}
