// Fixture: pointer-value formatting (det-pointer-value) — addresses vary
// per run under ASLR, so they may never reach report output.
#include <cstdio>

void dump(const void* p) {
  std::printf("session at %p\n", p);
}
