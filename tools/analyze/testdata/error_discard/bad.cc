// Fixture: a Status-returning call explicitly cast to void
// (error-discard).
struct Status {
  bool ok() const { return true; }
};

Status submit_frame() { return Status{}; }

void pump() {
  (void)submit_frame();
}
