// Fixture: an ORIGIN_HOT function launders an allocation through an
// unannotated helper two edges away (hot-transitive).
#include <vector>

#define ORIGIN_HOT __attribute__((hot))

void append_one(std::vector<int>& out, int v) {
  out.push_back(v);
}

void forward(std::vector<int>& out, int v) {
  append_one(out, v);
}

ORIGIN_HOT void record(std::vector<int>& out, int v) {
  forward(out, v);
}
