// Fixture: layer-0 util reaching up into layer-2 h2 (layer-upward).
#pragma once

#include "h2/frame.h"

namespace origin::util {
inline int bad_value() { return 2; }
}  // namespace origin::util
