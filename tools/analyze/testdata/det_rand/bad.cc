// Fixture: ambient entropy outside src/netsim (det-ambient-rand).
#include <cstdlib>

int jitter() {
  return std::rand() % 10;
}
