// Fixture: layer-0 header with no module dependencies.
#pragma once

namespace origin::util {
inline int base_value() { return 1; }
}  // namespace origin::util
