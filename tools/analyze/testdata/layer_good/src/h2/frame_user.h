// Fixture: a layer-2 module including downward into util — the layering
// pass must accept this.
#pragma once

#include "util/base.h"

namespace origin::h2 {
inline int frame_value() { return util::base_value() + 1; }
}  // namespace origin::h2
