// Fixture: deterministic emission the determinism pass must accept — the
// unordered map is copied into a vector and sorted before iteration.
#include <algorithm>
#include <utility>
#include <vector>

namespace util {
template <typename K, typename V>
struct FlatMap {
  std::pair<K, V>* begin() const { return nullptr; }
  std::pair<K, V>* end() const { return nullptr; }
};
}  // namespace util

using Counts = util::FlatMap<int, int>;

int emit(const Counts& counts) {
  std::vector<std::pair<int, int>> rows(counts.begin(), counts.end());
  std::sort(rows.begin(), rows.end());
  int total = 0;
  for (const auto& [key, value] : rows) {
    total += key + value;
  }
  return total;
}
