// Fixture: by-value owning parameter on an ORIGIN_HOT function
// (hot-owning-copy) — every call site copies the string.
#include <string>

#define ORIGIN_HOT __attribute__((hot))

ORIGIN_HOT int consume(std::string name) {
  return static_cast<int>(name.size());
}
