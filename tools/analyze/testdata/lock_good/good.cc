// Fixture: lock usage the lock-order pass must accept — a consistent
// acquisition order everywhere, and a scoped release before taking the
// other class in what would otherwise be the reverse order.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex* mu);
};
struct CondVar {
  void wait(Mutex& mu);
};

Mutex table_mu;
Mutex stats_mu;
CondVar drain_cv;

void nested_in_order() {
  MutexLock table(&table_mu);
  MutexLock stats(&stats_mu);
}

void released_before_reverse() {
  {
    MutexLock stats(&stats_mu);
  }
  // stats_mu is released: taking table_mu now adds no stats->table edge.
  MutexLock table(&table_mu);
  MutexLock stats(&stats_mu);
}

void wait_with_single_lock() {
  MutexLock table(&table_mu);
  // Waiting on the only held mutex is the normal CondVar protocol.
  drain_cv.wait(table_mu);
}
