// Fixture: wall-clock read outside src/netsim (det-wall-clock).
#include <chrono>

long long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
