// Fixture: tokenizer and call-graph edge cases that must NOT create call
// edges — raw strings containing ( ) and ::, plain strings with
// unbalanced parens, operator-call syntax, and ALL_CAPS macro
// invocations. `grow_buffer` allocates, so if any spelling below faked an
// edge from the hot body to it, the hot-transitive pass would reject this
// fixture.
#include <vector>

#define ORIGIN_HOT __attribute__((hot))
#define RECORD_EVENT(tag) (void)(tag)

void grow_buffer(std::vector<int>& out, int v) {
  out.push_back(v);
}

struct Adder {
  int operator()(int a, int b) const { return a + b; }
};

ORIGIN_HOT int steady_state(int v) {
  const char* raw = R"(grow_buffer(out, v))";
  const char* qualified = R"(detail::grow_buffer(out, 1))";
  const char* unbalanced = "grow_buffer(";
  RECORD_EVENT(raw);
  RECORD_EVENT(qualified);
  RECORD_EVENT(unbalanced);
  Adder add;
  return add(v, v);
}
