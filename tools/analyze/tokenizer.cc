#include "token.h"

#include <cctype>

namespace origin::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Scanner {
 public:
  explicit Scanner(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        advance_line();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        ++col_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_to_eol();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        tokens.push_back(preprocessor_line());
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        // R"(...)" raw strings open on the quote that follows the prefix.
        if ((c == 'R' || c == 'L' || c == 'u' || c == 'U') &&
            raw_string_ahead()) {
          tokens.push_back(raw_string());
          continue;
        }
        tokens.push_back(identifier());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
        tokens.push_back(number());
        continue;
      }
      if (c == '"') {
        tokens.push_back(quoted(TokenKind::kString, '"'));
        continue;
      }
      if (c == '\'') {
        tokens.push_back(quoted(TokenKind::kChar, '\''));
        continue;
      }
      tokens.push_back(punct());
    }
    return tokens;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance_line() {
    ++pos_;
    ++line_;
    col_ = 1;
    at_line_start_ = true;
  }

  void skip_to_eol() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void skip_block_comment() {
    pos_ += 2;
    col_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        col_ += 2;
        return;
      }
      if (src_[pos_] == '\n') {
        advance_line();
        at_line_start_ = false;  // a comment does not re-arm directives…
      } else {
        ++pos_;
        ++col_;
      }
    }
  }

  Token make(TokenKind kind, std::size_t begin, std::size_t begin_line,
             std::size_t begin_col) const {
    return Token{kind, src_.substr(begin, pos_ - begin), begin_line,
                 begin_col};
  }

  Token preprocessor_line() {
    const std::size_t begin = pos_;
    const std::size_t begin_line = line_;
    const std::size_t begin_col = col_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        col_ = 1;
        continue;
      }
      if (src_[pos_] == '\n') break;
      // Directive-embedded comments end the directive for our purposes —
      // waivers live in comments and are matched on raw lines anyway.
      if (src_[pos_] == '/' && (peek(1) == '/' || peek(1) == '*')) break;
      ++pos_;
      ++col_;
    }
    return make(TokenKind::kPreprocessor, begin, begin_line, begin_col);
  }

  Token identifier() {
    const std::size_t begin = pos_;
    const std::size_t begin_col = col_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) {
      ++pos_;
      ++col_;
    }
    return make(TokenKind::kIdentifier, begin, line_, begin_col);
  }

  Token number() {
    const std::size_t begin = pos_;
    const std::size_t begin_col = col_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        ++col_;
        continue;
      }
      // Exponent signs: 1e+5, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          ++col_;
          continue;
        }
      }
      break;
    }
    return make(TokenKind::kNumber, begin, line_, begin_col);
  }

  Token quoted(TokenKind kind, char close) {
    const std::size_t begin = pos_;
    const std::size_t begin_line = line_;
    const std::size_t begin_col = col_;
    ++pos_;
    ++col_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size() && peek(1) != '\n') {
        pos_ += 2;
        col_ += 2;
        continue;
      }
      if (c == close) {
        ++pos_;
        ++col_;
        break;
      }
      if (c == '\n') break;  // unterminated: stop at end of line
      ++pos_;
      ++col_;
    }
    return make(kind, begin, begin_line, begin_col);
  }

  // True when the cursor sits on the encoding prefix of a raw string
  // literal: R" u8R" LR" uR" UR".
  bool raw_string_ahead() const {
    std::size_t i = pos_;
    if (src_[i] == 'u' && i + 1 < src_.size() && src_[i + 1] == '8') ++i;
    if (src_[i] == 'L' || src_[i] == 'u' || src_[i] == 'U') ++i;
    return i < src_.size() && src_[i] == 'R' && i + 1 < src_.size() &&
           src_[i + 1] == '"';
  }

  Token raw_string() {
    const std::size_t begin = pos_;
    const std::size_t begin_line = line_;
    const std::size_t begin_col = col_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      ++pos_;
      ++col_;
    }
    ++pos_;  // opening quote
    ++col_;
    // Delimiter runs to the '('.
    const std::size_t delim_begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') {
      ++pos_;
      ++col_;
    }
    const std::string_view delim =
        src_.substr(delim_begin, pos_ - delim_begin);
    while (pos_ < src_.size()) {
      if (src_[pos_] == ')' &&
          src_.compare(pos_ + 1, delim.size(), delim) == 0 &&
          pos_ + 1 + delim.size() < src_.size() &&
          src_[pos_ + 1 + delim.size()] == '"') {
        pos_ += 2 + delim.size();
        col_ += 2 + delim.size();
        break;
      }
      if (src_[pos_] == '\n') {
        advance_line();
        at_line_start_ = false;
      } else {
        ++pos_;
        ++col_;
      }
    }
    return make(TokenKind::kString, begin, begin_line, begin_col);
  }

  Token punct() {
    const std::size_t begin = pos_;
    const std::size_t begin_col = col_;
    const char c = src_[pos_];
    ++pos_;
    ++col_;
    // Only the two operators the passes key on are kept multi-character:
    // "::" (qualified names) and "->" (member access). Everything else —
    // including ">>" — stays single-character so template-angle matching
    // needs no special cases.
    if ((c == ':' && peek(0) == ':') || (c == '-' && peek(0) == '>')) {
      ++pos_;
      ++col_;
    }
    return make(TokenKind::kPunct, begin, line_, begin_col);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return Scanner(source).run();
}

}  // namespace origin::analyze
