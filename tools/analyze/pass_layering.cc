// Layering pass.
//
// The module DAG mirrors the measurement story of the paper: primitives at
// the bottom, the HTTP/2 machinery in the middle, deployments above that,
// and the measurement/model pipeline on top consuming everything:
//
//   layer 0: util
//   layer 1: netsim, dns, tls
//   layer 2: h1, h2, hpack, web, ct
//   layer 3: server, cdn, browser
//   layer 4: dataset, measure, model
//
//   layer-upward  a module includes a header from a strictly higher layer
//   layer-cycle   the module-level include graph has a cycle (checked over
//                 all edges, so same-layer tangles are caught too)
//
// Quoted includes in this repo are src-relative ("h2/frame.h"), so the
// target module is the include path's first component. Unknown modules
// (new directories) default to the top layer and a layer-unknown finding,
// so growing the tree forces a conscious layer assignment here.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes.h"

namespace origin::analyze {

namespace {

const std::map<std::string, int> kLayer = {
    {"util", 0},   {"netsim", 1},  {"dns", 1},     {"tls", 1},
    {"h1", 2},     {"h2", 2},      {"hpack", 2},   {"web", 2},
    {"ct", 2},     {"server", 3},  {"cdn", 3},     {"browser", 3},
    {"dataset", 4}, {"measure", 4}, {"model", 4},
};

std::string include_module(const std::string& path) {
  const std::size_t slash = path.find('/');
  if (slash == std::string::npos) return {};  // same-directory include
  return path.substr(0, slash);
}

}  // namespace

void run_layering_pass(const std::deque<FileModel>& corpus,
                       FindingSink& sink) {
  // Module-level edges with one representative include site each, kept in
  // ordered maps so cycle reports are stable.
  struct Site {
    std::string file;
    std::size_t line;
  };
  std::map<std::string, std::map<std::string, Site>> edges;

  for (const FileModel& file : corpus) {
    if (file.module.empty()) continue;  // tests/tools/bench are exempt
    const auto from_it = kLayer.find(file.module);
    if (from_it == kLayer.end()) {
      sink.add("layer-unknown", file.rel, 1,
               "module '" + file.module +
                   "' has no layer assignment — add it to kLayer in "
                   "tools/analyze/pass_layering.cc");
      continue;
    }
    for (const Include& inc : file.includes) {
      const std::string to = include_module(inc.path);
      if (to.empty() || to == file.module) continue;
      const auto to_it = kLayer.find(to);
      if (to_it == kLayer.end()) continue;  // not a module header
      edges[file.module].emplace(to, Site{file.rel, inc.line});
      if (to_it->second > from_it->second) {
        sink.add("layer-upward", file.rel, inc.line,
                 "module '" + file.module + "' (layer " +
                     std::to_string(from_it->second) + ") includes '" +
                     inc.path + "' from module '" + to + "' (layer " +
                     std::to_string(to_it->second) + ")");
      }
    }
  }

  // Cycle detection over the module graph: iterative DFS with a path
  // stack; each cycle is reported once, at the representative include site
  // of the edge that closes it.
  std::set<std::string> done;
  std::set<std::string> reported;
  for (const auto& [start, unused] : edges) {
    (void)unused;
    if (done.count(start) > 0) continue;
    std::vector<std::string> path;
    std::set<std::string> on_path;
    // Recursive lambda via explicit stack of (module, next-edge iterator).
    struct Frame {
      std::string module;
      std::map<std::string, Site>::const_iterator next;
    };
    std::vector<Frame> stack;
    auto push = [&](const std::string& m) {
      path.push_back(m);
      on_path.insert(m);
      static const std::map<std::string, Site> kEmpty;
      const auto it = edges.find(m);
      stack.push_back(
          Frame{m, it == edges.end() ? kEmpty.begin() : it->second.begin()});
    };
    push(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto eit = edges.find(frame.module);
      if (eit == edges.end() || frame.next == eit->second.end()) {
        done.insert(frame.module);
        on_path.erase(frame.module);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string& to = frame.next->first;
      const Site& site = frame.next->second;
      ++frame.next;
      if (on_path.count(to) > 0) {
        // Found a cycle: to → ... → frame.module → to.
        std::string cycle = to;
        bool in_cycle = false;
        for (const std::string& m : path) {
          if (m == to) in_cycle = true;
          if (in_cycle && m != to) cycle += " -> " + m;
        }
        cycle += " -> " + to;
        if (reported.insert(cycle).second) {
          sink.add("layer-cycle", site.file, site.line,
                   "include cycle between modules: " + cycle);
        }
        continue;
      }
      if (done.count(to) == 0) push(to);
    }
  }
}

}  // namespace origin::analyze
