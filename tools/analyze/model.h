// File/function model shared by the origin_analyze passes.
//
// Each scanned file becomes a FileModel: its raw source (owned, so every
// Token::text view stays valid for the life of the corpus), its token
// stream, its `#include "..."` edges, and the body spans of all functions
// annotated ORIGIN_HOT. Models live in a std::deque so growing the corpus
// never relocates a file another pass is still pointing into.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "token.h"

namespace origin::analyze {

// One parameter of an ORIGIN_HOT function, as written: `AnalysisScratch& s`
// keeps type text "AnalysisScratch&" and name "s". Type text is the joined
// token spelling, which is all the alloc pass needs to recognize sanctioned
// scratch receivers.
struct HotParam {
  std::string type_text;
  std::string name;
};

// A function the source marked ORIGIN_HOT. begin/end are token indices into
// FileModel::tokens: begin is the token after the body's '{', end is the
// index of the matching '}'. Declarations without bodies produce no entry.
struct HotFunction {
  std::string name;            // unqualified spelling, e.g. "replay_batch"
  std::size_t line = 0;        // line of the ORIGIN_HOT marker
  std::size_t body_begin = 0;  // first token inside the body
  std::size_t body_end = 0;    // token index of the closing '}'
  std::vector<HotParam> params;
};

// One `#include "..."` edge, path as written (src-relative in this repo's
// convention, e.g. "h2/frame.h").
struct Include {
  std::string path;
  std::size_t line = 0;
};

struct FileModel {
  std::string rel;      // path relative to the repo root, '/' separators
  std::string module;   // top-level dir under src/ ("h2", "util", ...);
                        // empty for files outside src/
  bool is_header = false;
  std::string source;   // owned bytes; tokens view into this
  std::vector<std::string_view> lines;  // 1-based via lines[i-1]
  std::vector<Token> tokens;
  std::vector<Include> includes;  // quoted includes only
  std::vector<HotFunction> hot_functions;
};

// Loads and models one file. Returns false (and leaves `out` untouched)
// only if the file cannot be read.
bool load_file_model(const std::string& repo_root, const std::string& rel,
                     FileModel& out);

// Walks `roots` (paths relative to repo_root; files or directories) and
// models every *.h / *.cc found, sorted by rel path so runs are
// deterministic regardless of directory iteration order.
std::deque<FileModel> load_corpus(const std::string& repo_root,
                                  const std::vector<std::string>& roots);

// Joins token spellings with single spaces — used for parameter type text
// and diagnostics.
std::string join_tokens(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t end);

// Finds the index of the matching closer for the opener at `open`, honoring
// nesting of the same pair. Returns tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text);

// Parses the parameter list between tokens[open]=='(' and its matching ')'
// into type-text/name pairs (shared by the hot-function model and the call
// graph's function definitions).
void parse_param_list(const std::vector<Token>& tokens, std::size_t open,
                      std::size_t close, std::vector<HotParam>& params);

}  // namespace origin::analyze
