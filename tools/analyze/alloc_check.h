// Shared allocation-discipline body check.
//
// The intraprocedural alloc pass (ORIGIN_HOT functions) and the
// interprocedural hot-transitive pass (unannotated functions reachable from
// ORIGIN_HOT roots) enforce the same body-level rules; this is the single
// implementation both feed through. See pass_alloc.cc for the rule
// catalogue.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model.h"

namespace origin::analyze {

struct AllocViolation {
  const char* rule;  // "hot-new", "hot-string-construct", ...
  std::size_t line = 0;
  std::string message;  // rule-specific, without the function-name suffix
};

// Scans [body_begin, body_end) of `file`'s token stream for allocation
// violations. `params` sanctions Scratch/ByteWriter receivers and feeds the
// hot-owning-copy parameter rule (pass `check_params = false` to skip it —
// the transitive pass only owns the body contract, a callee's by-value
// parameters are its signature's business only when it is itself annotated).
void collect_alloc_violations(const FileModel& file, std::size_t body_begin,
                              std::size_t body_end,
                              const std::vector<HotParam>& params,
                              bool check_params,
                              std::vector<AllocViolation>& out);

}  // namespace origin::analyze
