// Error-propagation pass.
//
// util::Result and util::Status are [[nodiscard]], but the compiler's
// warning stops at the first binding: `auto st = run();` silences it
// forever, and `(void)run();` silences it on purpose. Both shapes swallow
// the error path the §6.7 robustness machinery depends on. This pass uses
// the call graph to know which corpus functions actually return
// Result/Status, then runs an intra-body dataflow over each caller:
//
//   error-unchecked  a Result/Status value is bound to a name that is never
//                    read again in the body — not .ok()-tested, not passed
//                    to ORIGIN_CHECK, not returned, not handed onward
//   error-discard    a call returning Result/Status is explicitly
//                    (void)-cast away
//
// "Used" is any later occurrence of the bound name: a test, a return, a
// value_or, or forwarding to another function all count. That is
// deliberately shallow — the pass flags values that provably cannot
// influence anything, and leaves judging the *quality* of a use to review.
// Intentional discards stay expressible: waive with a reason, same as every
// other rule.
#include <algorithm>
#include <string>
#include <vector>

#include "passes.h"

namespace origin::analyze {

namespace {

// Does any resolved target of this site return util::Result / util::Status?
bool targets_return_result(const CallGraph& graph, const CallSite& site,
                           std::string* callee_name) {
  for (const std::size_t target : site.targets) {
    if (graph.returns_result_or_status(target)) {
      if (callee_name != nullptr) {
        *callee_name = graph.functions()[target].qualified();
      }
      return true;
    }
  }
  return false;
}

// Walks back from `at` to the token just after the enclosing statement
// boundary (';', '{', '}') — the start of the current statement.
std::size_t statement_start(const std::vector<Token>& toks, std::size_t at,
                            std::size_t body_begin) {
  std::size_t i = at;
  while (i > body_begin) {
    const Token& prev = toks[i - 1];
    if (is_punct(prev, ";") || is_punct(prev, "{") || is_punct(prev, "}")) {
      break;
    }
    --i;
  }
  return i;
}

// Forward to the ';' ending the statement containing `at` (or body_end).
std::size_t statement_end(const std::vector<Token>& toks, std::size_t at,
                          std::size_t body_end) {
  for (std::size_t i = at; i < body_end; ++i) {
    if (is_punct(toks[i], ";")) return i;
  }
  return body_end;
}

}  // namespace

void run_error_prop_pass(const CallGraph& graph, FindingSink& sink) {
  const std::vector<FunctionDef>& fns = graph.functions();
  for (std::size_t fn = 0; fn < fns.size(); ++fn) {
    const FunctionDef& def = fns[fn];
    const FileModel& file = graph.corpus()[def.file];
    const std::vector<Token>& toks = file.tokens;

    std::vector<const CallSite*> sites;
    for (const std::size_t c : graph.sites_of()[fn]) {
      sites.push_back(&graph.calls()[c]);
    }
    std::sort(sites.begin(), sites.end(),
              [](const CallSite* a, const CallSite* b) {
                return a->token_index < b->token_index;
              });

    for (const CallSite* site : sites) {
      std::string callee;
      if (!targets_return_result(graph, *site, &callee)) continue;
      const std::size_t at = site->token_index;
      const std::size_t stmt_begin =
          statement_start(toks, at, def.body_begin);
      const std::size_t stmt_end = statement_end(toks, at, def.body_end);

      // error-discard: `( void )` anywhere between the statement start and
      // the call — the canonical explicit cast-away.
      bool discarded = false;
      for (std::size_t i = stmt_begin; i + 2 < at; ++i) {
        if (is_punct(toks[i], "(") && is_ident(toks[i + 1], "void") &&
            is_punct(toks[i + 2], ")")) {
          discarded = true;
          sink.add("error-discard", file.rel, toks[at].line,
                   "Result/Status returned by '" + callee +
                       "' is (void)-discarded in '" + def.qualified() +
                       "' — the error path is silently swallowed");
          break;
        }
      }
      if (discarded) continue;

      // error-unchecked: a declaration-style binding `Type name = …call…`
      // whose name never occurs again in the body. Look for `name =` (a
      // lone '=', not '=='/'!='/'<='/'>=') between statement start and the
      // call, with a type token immediately before the name.
      for (std::size_t i = stmt_begin + 1; i + 1 < at; ++i) {
        if (toks[i].kind != TokenKind::kIdentifier) continue;
        if (!is_punct(toks[i + 1], "=")) continue;
        if (i + 2 < at && is_punct(toks[i + 2], "=")) continue;  // ==
        const Token& before = toks[i - 1];
        const bool declaration =
            before.kind == TokenKind::kIdentifier ||
            is_punct(before, ">") || is_punct(before, "&");
        if (!declaration) continue;
        const std::string_view name = toks[i].text;
        bool used = false;
        for (std::size_t j = stmt_end; j < def.body_end; ++j) {
          if (toks[j].kind == TokenKind::kIdentifier &&
              toks[j].text == name) {
            used = true;
            break;
          }
        }
        if (!used) {
          sink.add("error-unchecked", file.rel, toks[i].line,
                   "Result/Status from '" + callee + "' bound to '" +
                       std::string(name) + "' in '" + def.qualified() +
                       "' but never read — not ok()-tested, returned, or "
                       "forwarded");
        }
        break;  // one binding per statement is enough
      }
    }
  }
}

}  // namespace origin::analyze
