// origin_analyze: multi-pass static analysis for the repro tree.
//
// Usage:
//   origin_analyze [--pass=alloc|determinism|layering|hot-transitive|
//                          lock-order|error-prop|all]
//                  [--waivers=FILE] [--json=FILE] [--root=DIR]
//                  [--baseline=FILE] [--min-reason-chars=N]
//                  [--dump-callgraph] [--dump-unresolved] PATH...
//
// PATHs are files or directories relative to --root (default: the current
// directory). The intraprocedural passes (alloc, determinism, layering)
// walk each file's token stream; the interprocedural passes
// (hot-transitive, lock-order, error-prop) run over a call graph built
// from the whole corpus (callgraph.h).
//
// --min-reason-chars=N (default 30, 0 disables) is the waiver-hygiene
// gate: every *applied* waiver whose reason is shorter than N characters
// gets a waiver-short-reason finding. A waiver is a claim that an
// invariant is safe to break here; a reason too short to say why is not a
// claim, it is a mute button.
//
// --baseline=FILE is the findings-drift gate: FILE is a previous --json
// output, and any *waived* finding present now but absent from the
// baseline fails the run. New unwaived findings already fail via the exit
// code; this closes the quieter channel where a finding sneaks in
// pre-waived and nobody reviews the reason.
//
// Exit status: 0 when every finding is waived and there is no baseline
// drift, 1 otherwise, 2 on usage or I/O errors.
#include <array>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.h"
#include "findings.h"
#include "model.h"
#include "passes.h"

namespace {

using origin::analyze::CallGraph;
using origin::analyze::FileModel;
using origin::analyze::FileWaiver;
using origin::analyze::Finding;
using origin::analyze::FindingSink;

int usage() {
  std::cerr
      << "usage: origin_analyze [--pass=alloc|determinism|layering|"
         "hot-transitive|lock-order|error-prop|all]\n"
         "                      [--waivers=FILE] [--json=FILE] "
         "[--root=DIR]\n"
         "                      [--baseline=FILE] [--min-reason-chars=N]\n"
         "                      [--dump-callgraph] [--dump-unresolved] "
         "PATH...\n";
  return 2;
}

// The pass a rule belongs to, for the per-pass summary counts.
std::string_view pass_of_rule(std::string_view rule) {
  if (rule == "hot-transitive") return "hot-transitive";
  if (rule.rfind("hot-", 0) == 0) return "alloc";
  if (rule.rfind("det-", 0) == 0) return "determinism";
  if (rule.rfind("layer-", 0) == 0) return "layering";
  if (rule.rfind("lock-", 0) == 0) return "lock-order";
  if (rule.rfind("error-", 0) == 0) return "error-prop";
  if (rule.rfind("waiver-", 0) == 0) return "waiver-hygiene";
  return "other";
}

// The drift-gate key for a finding: rule|file|message, with the message in
// the same escaped form write_json emits, so keys computed from a live
// finding and keys parsed back out of a baseline file compare equal.
std::string drift_key(std::string_view rule, std::string_view file,
                      std::string_view escaped_message) {
  std::string key(rule);
  key += '|';
  key += file;
  key += '|';
  key += escaped_message;
  return key;
}

// Extracts the value of `"field": "` starting at or after `from` on
// `line`, honoring backslash escapes, into `out`. Returns false when the
// field is absent.
bool extract_json_string(std::string_view line, std::string_view field,
                         std::string& out) {
  std::string needle = "\"";
  needle += field;
  needle += "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  out.clear();
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[i];
      out += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '"') return true;
    out += line[i];
  }
  return false;
}

// Loads the waived-finding keys from a previous --json output. The format
// is our own (one finding object per line), so line-oriented scanning is
// exact, not approximate.
bool load_baseline(const std::string& path, std::set<std::string>& keys) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "origin_analyze: cannot open baseline " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"waived\": true") == std::string::npos) continue;
    std::string rule;
    std::string file;
    std::string message;
    if (extract_json_string(line, "rule", rule) &&
        extract_json_string(line, "file", file) &&
        extract_json_string(line, "message", message)) {
      keys.insert(drift_key(rule, file, message));
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string pass = "all";
  std::string waiver_path;
  std::string json_path;
  std::string baseline_path;
  std::string root = ".";
  std::size_t min_reason_chars = 30;
  bool dump_callgraph = false;
  bool dump_unresolved = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pass=", 0) == 0) {
      pass = arg.substr(7);
    } else if (arg.rfind("--waivers=", 0) == 0) {
      waiver_path = arg.substr(10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--min-reason-chars=", 0) == 0) {
      min_reason_chars = std::stoul(arg.substr(19));
    } else if (arg == "--dump-callgraph") {
      dump_callgraph = true;
    } else if (arg == "--dump-unresolved") {
      dump_unresolved = true;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  const bool interprocedural = pass == "all" || pass == "hot-transitive" ||
                               pass == "lock-order" || pass == "error-prop";
  if (!interprocedural && pass != "alloc" && pass != "determinism" &&
      pass != "layering") {
    return usage();
  }

  const std::deque<FileModel> corpus =
      origin::analyze::load_corpus(root, paths);
  if (corpus.empty()) {
    std::cerr << "origin_analyze: no .h/.cc files found under the given "
                 "paths\n";
    return 2;
  }

  FindingSink sink;
  if (pass == "all" || pass == "alloc") {
    origin::analyze::run_alloc_pass(corpus, sink);
  }
  if (pass == "all" || pass == "determinism") {
    origin::analyze::run_determinism_pass(corpus, sink);
  }
  if (pass == "all" || pass == "layering") {
    origin::analyze::run_layering_pass(corpus, sink);
  }
  if (interprocedural || dump_callgraph || dump_unresolved) {
    const CallGraph graph = CallGraph::build(corpus);
    if (dump_callgraph) graph.dump(std::cout);
    if (dump_unresolved) graph.report_unresolved(std::cout);
    if (pass == "all" || pass == "hot-transitive") {
      origin::analyze::run_hot_transitive_pass(graph, sink);
    }
    if (pass == "all" || pass == "lock-order") {
      origin::analyze::run_lock_order_pass(graph, sink);
    }
    if (pass == "all" || pass == "error-prop") {
      origin::analyze::run_error_prop_pass(graph, sink);
    }
  }

  std::vector<FileWaiver> waivers;
  if (!waiver_path.empty()) {
    waivers = origin::analyze::load_waiver_file(waiver_path);
  }
  auto lines_of = [&corpus](const std::string& file)
      -> const std::vector<std::string_view>& {
    static const std::vector<std::string_view> kNone;
    for (const FileModel& m : corpus) {
      if (m.rel == file) return m.lines;
    }
    return kNone;
  };
  sink.finalize(waivers, lines_of);

  // Waiver hygiene: a reason below the minimum gets its own finding. These
  // are added after the first finalize so they key off the *applied*
  // reasons (including multi-line continuation joins), then the sink is
  // finalized again so a hygiene finding is itself waivable.
  if (min_reason_chars > 0) {
    std::vector<Finding> short_reasons;
    for (const Finding& f : sink.findings()) {
      if (!f.waived || f.rule == "waiver-short-reason") continue;
      if (f.waiver_reason.size() >= min_reason_chars) continue;
      Finding h;
      h.rule = "waiver-short-reason";
      h.file = f.file;
      h.line = f.line;
      h.message = "waiver for [" + f.rule + "] gives a " +
                  std::to_string(f.waiver_reason.size()) +
                  "-char reason (\"" + f.waiver_reason + "\"); minimum " +
                  std::to_string(min_reason_chars) +
                  " — say why the invariant is safe to break here";
      short_reasons.push_back(std::move(h));
    }
    for (Finding& h : short_reasons) sink.add(std::move(h));
    sink.finalize(waivers, lines_of);
  }

  // Findings-drift gate: every currently-waived finding must already be in
  // the committed baseline. Unwaived findings fail via the exit code; this
  // catches the pre-waived kind that would otherwise land unreviewed.
  std::size_t drifted = 0;
  if (!baseline_path.empty()) {
    std::set<std::string> baseline;
    if (!load_baseline(baseline_path, baseline)) return 2;
    for (const Finding& f : sink.findings()) {
      if (!f.waived) continue;
      std::ostringstream escaped;
      origin::analyze::json_escape(escaped, f.message);
      if (baseline.count(drift_key(f.rule, f.file, escaped.str())) == 0) {
        std::cerr << "origin_analyze: waived finding not in baseline: "
                  << f.file << ':' << f.line << ": [" << f.rule << "] "
                  << f.message << "  (waived: " << f.waiver_reason << ")\n";
        ++drifted;
      }
    }
    if (drifted > 0) {
      std::cerr << "origin_analyze: " << drifted
                << " waived finding(s) drifted from " << baseline_path
                << " — review them, then regenerate the baseline with "
                   "--json\n";
    }
  }

  const std::size_t unwaived = sink.print(std::cerr);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "origin_analyze: cannot write " << json_path << "\n";
      return 2;
    }
    sink.write_json(json);
  }

  static constexpr std::array<std::string_view, 7> kPassOrder = {
      "alloc",      "determinism", "layering",       "hot-transitive",
      "lock-order", "error-prop",  "waiver-hygiene",
  };
  std::string counts;
  for (const std::string_view p : kPassOrder) {
    std::size_t n = 0;
    for (const Finding& f : sink.findings()) {
      if (pass_of_rule(f.rule) == p) ++n;
    }
    if (!counts.empty()) counts += ' ';
    counts += p;
    counts += '=';
    counts += std::to_string(n);
  }
  std::cerr << "origin_analyze: " << corpus.size() << " files, "
            << sink.findings().size() << " findings, " << unwaived
            << " unwaived (pass=" << pass << ")\n"
            << "origin_analyze: per-pass findings: " << counts << "\n";
  return unwaived == 0 && drifted == 0 ? 0 : 1;
}
