// origin_analyze: multi-pass static analysis for the repro tree.
//
// Usage:
//   origin_analyze [--pass=alloc|determinism|layering|all]
//                  [--waivers=FILE] [--json=FILE] [--root=DIR] PATH...
//
// PATHs are files or directories relative to --root (default: the current
// directory). Exit status: 0 when every finding is waived, 1 when unwaived
// findings remain, 2 on usage or I/O errors.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "findings.h"
#include "model.h"
#include "passes.h"

namespace {

using origin::analyze::FileModel;
using origin::analyze::FileWaiver;
using origin::analyze::FindingSink;

int usage() {
  std::cerr << "usage: origin_analyze [--pass=alloc|determinism|layering|"
               "all] [--waivers=FILE] [--json=FILE] [--root=DIR] PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string pass = "all";
  std::string waiver_path;
  std::string json_path;
  std::string root = ".";
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pass=", 0) == 0) {
      pass = arg.substr(7);
    } else if (arg.rfind("--waivers=", 0) == 0) {
      waiver_path = arg.substr(10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  if (pass != "all" && pass != "alloc" && pass != "determinism" &&
      pass != "layering") {
    return usage();
  }

  const std::deque<FileModel> corpus =
      origin::analyze::load_corpus(root, paths);
  if (corpus.empty()) {
    std::cerr << "origin_analyze: no .h/.cc files found under the given "
                 "paths\n";
    return 2;
  }

  FindingSink sink;
  if (pass == "all" || pass == "alloc") {
    origin::analyze::run_alloc_pass(corpus, sink);
  }
  if (pass == "all" || pass == "determinism") {
    origin::analyze::run_determinism_pass(corpus, sink);
  }
  if (pass == "all" || pass == "layering") {
    origin::analyze::run_layering_pass(corpus, sink);
  }

  std::vector<FileWaiver> waivers;
  if (!waiver_path.empty()) {
    waivers = origin::analyze::load_waiver_file(waiver_path);
  }
  sink.finalize(waivers,
                [&corpus](const std::string& file)
                    -> const std::vector<std::string_view>& {
                  static const std::vector<std::string_view> kNone;
                  for (const FileModel& m : corpus) {
                    if (m.rel == file) return m.lines;
                  }
                  return kNone;
                });

  const std::size_t unwaived = sink.print(std::cerr);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "origin_analyze: cannot write " << json_path << "\n";
      return 2;
    }
    sink.write_json(json);
  }
  std::cerr << "origin_analyze: " << corpus.size() << " files, "
            << sink.findings().size() << " findings, " << unwaived
            << " unwaived (pass=" << pass << ")\n";
  return unwaived == 0 ? 0 : 1;
}
