// Lint regression fixture: a member declared after a util::Mutex without an
// ORIGIN_GUARDED_BY annotation must be rejected (guarded-by-annotation).
// This file is never compiled; it only feeds the
// origin_lint_rejects_missing_guarded_by ctest entry.
#pragma once

#include <cstdint>

#include "util/thread_annotations.h"

namespace origin::measure {

class Counter {
 public:
  void bump();

 private:
  origin::util::Mutex mu_;
  std::uint64_t count_ = 0;  // intentionally unannotated
};

}  // namespace origin::measure
