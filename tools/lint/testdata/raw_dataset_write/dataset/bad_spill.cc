// Deliberate violation fixture: raw write paths in dataset/. The
// durable-write-only rule must reject every one of these — a raw ofstream,
// a write-mode fopen, an fwrite, and a POSIX O_WRONLY open can all leave a
// torn spill file that a crash-resume would read as data. Never compiled.
#include <cstdio>
#include <fstream>
#include <string>

namespace origin::dataset {

void spill_with_ofstream(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

void spill_with_stdio(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return;
  std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
}

void append_journal_raw(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) return;
  std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
}

}  // namespace origin::dataset
