// Lint acceptance fixture: the audited dataset/ write shape. Every byte
// lands through util/durable_file.h — durable_write_file for shard
// snapshots (temp -> fsync -> rename commit) and DurableLog for the
// manifest journal — and reads stay unrestricted. The linter must accept
// this file (the origin_lint_accepts_durable_dataset_write ctest entry
// runs without WILL_FAIL). Never compiled; mirrors snapshot.cc/corpus.cc.
#include <cstdio>
#include <fstream>
#include <string>

namespace origin::util {
int durable_write_file(const std::string& path, const std::string& bytes);
struct DurableLog {
  int append(const std::string& bytes);
};
}  // namespace origin::util

namespace origin::dataset {

int spill_shard(const std::string& path, const std::string& bytes) {
  return util::durable_write_file(path, bytes);
}

int journal_record(util::DurableLog& log, const std::string& record) {
  return log.append(record);
}

std::string read_shard_back(const std::string& path) {
  // Read-only IO is exempt: torn reads are caught by the CRC footer.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe != nullptr) std::fclose(probe);
  return bytes;
}

}  // namespace origin::dataset
