// Lint regression fixture: raw std::mutex / std::lock_guard outside util/
// must be rejected (no-raw-std-mutex). This file is never compiled; it only
// feeds the origin_lint_rejects_raw_mutex ctest entry.
#include <mutex>

namespace origin::dataset {

class Cache {
 public:
  void put(int value) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = value;
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};

}  // namespace origin::dataset
