// Deliberate violation fixture: a string-keyed ordered tree on the model
// hot path. The no-string-keyed-tree rule must reject this — keys belong
// in util::Interner with util::FlatMap/util::FlatSet over SymbolIds.
#include <cstddef>
#include <map>
#include <string>

namespace origin::model {

struct GroupStats {
  std::map<std::string, std::size_t> connections_per_group;
};

std::size_t count(const GroupStats& stats, const std::string& key) {
  const auto it = stats.connections_per_group.find(key);
  return it == stats.connections_per_group.end() ? 0 : it->second;
}

}  // namespace origin::model
