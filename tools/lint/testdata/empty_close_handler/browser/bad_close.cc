// Lint regression fixture: a set_on_close handler in src/browser that
// ignores the close reason must be rejected (close-reason-handled). This
// file is never compiled; it only feeds the
// origin_lint_rejects_empty_close_handler ctest entry.
namespace origin::browser {

template <typename Endpoint>
void forget_the_reason(Endpoint& endpoint, bool& closed) {
  endpoint.set_on_close([&closed](const std::string&) {
    // The teardown cause (middlebox name, injected fault, GOAWAY) is
    // dropped on the floor here — the degradation layer never sees it.
    closed = true;
  });
}

}  // namespace origin::browser
