// Lint regression fixture: a server-side teardown that calls the transport
// close() directly must be rejected (server-close-recorded). The reason
// string never reaches Stats::close_reasons, so the overload ledger — and
// every determinism check built on it — silently loses the shed. This file
// is never compiled; it only feeds the
// origin_lint_rejects_unrecorded_server_close ctest entry.
namespace origin::server {

template <typename Endpoint>
void shed_without_audit(Endpoint& endpoint) {
  // Bypasses Http2Server::close_endpoint: nothing records the reason.
  endpoint.close("overload: unaudited shed");
}

}  // namespace origin::server
