// Lint acceptance fixture: the audited close path. The reason is recorded
// in the stats ledger on the line above the transport close, and the close
// itself carries the server-close-recorded waiver — exactly the shape of
// Http2Server::close_endpoint. The linter must accept this file (the
// origin_lint_accepts_recorded_server_close ctest entry runs without
// WILL_FAIL). Never compiled.
#include <map>
#include <string>

namespace origin::server {

template <typename Endpoint>
void close_endpoint_audited(Endpoint& endpoint, const std::string& reason,
                            std::map<std::string, unsigned long>& ledger) {
  ++ledger[reason];
  endpoint.close(reason);  // lint:allow(server-close-recorded): audited path; the reason was recorded just above
}

}  // namespace origin::server
