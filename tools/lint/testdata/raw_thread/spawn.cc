// Lint regression fixture: raw std::thread outside util/ plus a detach()
// must be rejected (no-raw-std-thread, no-thread-detach). This file is never
// compiled; it only feeds the origin_lint_rejects_raw_thread ctest entry.
#include <thread>

namespace origin::measure {

void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace origin::measure
