// origin_lint — repo-specific invariant linter for the parser layers.
//
// Walks the source tree given on the command line (default: src/) and
// enforces invariants that the compiler alone does not:
//
//   no-bare-assert        `assert(` and <cassert> are forbidden in src/.
//                         NDEBUG strips assert from RelWithDebInfo — the
//                         default build — so its checks never run where it
//                         matters. Use ORIGIN_CHECK (util/check.h), which
//                         stays active in every build type.
//
//   no-reinterpret-cast   Raw reinterpret_cast is forbidden; parser code
//                         views bytes as text through the single audited
//                         helper util::as_string_view.
//
//   nodiscard-parse-api   Every header declaration returning util::Result
//                         or util::Status must carry [[nodiscard]]: a
//                         dropped return value silently swallows the error
//                         path of a parse (the §6.7 failure mode).
//
//   no-c-style-int-cast   C-style integer casts like (uint8_t)x are
//                         forbidden in parser directories; narrowing must
//                         be a searchable, explicit static_cast.
//
//   nodiscard-result-type util/result.h itself must keep Result and Status
//                         declared [[nodiscard]] (the class-level attribute
//                         is what makes the compiler flag silent drops).
//
// Thread-discipline rules (enforced on every compiler, so the clang-only
// thread-safety analysis has a floor that gcc builds keep too):
//
//   no-raw-std-mutex      `std::mutex` / `std::lock_guard` / std locks and
//                         condition variables are forbidden outside util/;
//                         use util::Mutex / util::MutexLock / util::CondVar
//                         (util/thread_annotations.h), whose capability
//                         annotations the clang analysis can see.
//
//   no-raw-std-thread     `std::thread` is forbidden outside util/; shard
//                         work through util::ThreadPool so the determinism
//                         and shutdown discipline live in one audited place.
//
//   no-thread-detach      `.detach()` is forbidden everywhere: a detached
//                         thread outlives the state it touches and no test
//                         can join on its failures.
//
//   no-volatile-sync      `volatile` is forbidden: it is not a
//                         synchronization primitive. Use std::atomic for
//                         order-independent counters or a util::Mutex.
//
//   close-reason-handled  In src/browser, src/cdn, and src/server, every
//                         set_on_close registration must bind the close
//                         reason (`const std::string& <name>`). The reason
//                         string carries the teardown cause (middlebox
//                         name, injected fault, GOAWAY) that the
//                         degradation and kill-switch layers key on; an
//                         unnamed parameter silently drops it.
//
//   no-string-keyed-tree  In src/model, src/measure, and src/dataset (the
//                         measurement→model hot paths), std::map/std::set
//                         keyed by std::string are forbidden: every lookup
//                         re-hashes/re-compares whole strings down a
//                         pointer-chasing tree. Intern keys once through
//                         util::Interner and use util::FlatMap/util::FlatSet
//                         over SymbolIds (DESIGN.md §10). The frozen
//                         baseline (baseline_model.cc) and deliberately
//                         ordered report tables carry audited waivers.
//
//   server-close-recorded In src/server, calling close() on a transport
//                         endpoint directly is forbidden: every
//                         server-initiated close must funnel through
//                         Http2Server::close_endpoint, which records the
//                         verbatim reason in Stats::close_reasons before
//                         tearing the transport down. A bypassed close is
//                         an unaudited shed — the overload ledger (and the
//                         1-vs-8-thread determinism checks built on it)
//                         silently loses an entry. The one audited call
//                         site inside close_endpoint carries the waiver.
//
//   durable-write-only    In src/dataset (the spill/journal layer), raw
//                         file-writing primitives — std::ofstream, fopen
//                         with a write/append mode, fwrite — are forbidden:
//                         every byte that lands in a spill directory must
//                         funnel through util/durable_file.h
//                         (temp → fsync → rename, or the fsynced
//                         DurableLog), otherwise a crash can leave a torn
//                         file that resume would read as data
//                         (DESIGN.md §15). Read-only opens are fine.
//
//   guarded-by-annotation members declared in the block following a mutex
//                         member must carry ORIGIN_GUARDED_BY /
//                         ORIGIN_PT_GUARDED_BY (sync primitives, immutable
//                         const/static members, and annotated lines are
//                         exempt) — the heuristic that keeps new shared
//                         state from silently skipping the clang analysis.
//
// A violation can be waived with a `// lint:allow(<rule>)` comment on the
// offending line (or the comment block directly above it); every waiver is
// an audited exception. Findings flow through the shared analyze_core sink
// (tools/analyze), so origin_lint and origin_analyze report in the same
// format — `--json=FILE` emits the machine-readable findings document.
//
// Exit status: 0 when clean, 1 when any violation is reported, 2 on usage
// or I/O errors.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

#include "findings.h"
#include "model.h"

namespace {

using origin::analyze::FileModel;
using origin::analyze::FindingSink;

// Directories (relative to the lint root) holding hand-rolled parsers; the
// narrowing-cast rule applies only here, the rest of the rules repo-wide.
const char* kParserDirs[] = {"h2", "hpack", "web", "h1", "util"};

std::string first_component(const std::filesystem::path& rel) {
  return rel.begin() != rel.end() ? rel.begin()->string() : "";
}

bool in_parser_dir(const std::filesystem::path& rel) {
  const std::string first = first_component(rel);
  return std::any_of(std::begin(kParserDirs), std::end(kParserDirs),
                     [&](const char* dir) { return first == dir; });
}

// util/ owns the annotated wrappers, so only it may touch the raw
// primitives those wrappers are built on.
bool in_util_dir(const std::filesystem::path& rel) {
  return first_component(rel) == "util";
}

// Layers where a dropped close reason loses degradation/kill-switch signal.
bool in_close_reason_dir(const std::filesystem::path& rel) {
  const std::string first = first_component(rel);
  return first == "browser" || first == "cdn" || first == "server";
}

// Measurement→model hot paths where string-keyed trees are banned in favour
// of interned SymbolIds + flat hash containers (DESIGN.md §10).
bool in_interned_hot_path(const std::filesystem::path& rel) {
  const std::string first = first_component(rel);
  return first == "model" || first == "measure" || first == "dataset";
}

std::string trimmed(const std::string& line) {
  const auto begin = line.find_first_not_of(" \t");
  return begin == std::string::npos ? "" : line.substr(begin);
}

bool is_comment_line(const std::string& line) {
  const std::string t = trimmed(line);
  return t.rfind("//", 0) == 0 || t.rfind("*", 0) == 0 || t.rfind("/*", 0) == 0;
}

class Linter {
 public:
  explicit Linter(FindingSink& sink) : sink_(sink) {}

  // Lints one modeled file. The model's raw lines drive the text rules
  // (the close-reason rule needs lookahead: a lambda's parameter list may
  // wrap onto the following lines); waiver matching happens later in
  // FindingSink::finalize against the same lines.
  void lint_file(const FileModel& model) {
    const std::filesystem::path rel(model.rel);
    std::vector<std::string> lines;
    lines.reserve(model.lines.size());
    for (const std::string_view raw : model.lines) lines.emplace_back(raw);

    const bool header = model.is_header;
    const bool parser_dir = in_parser_dir(rel);
    const bool close_reason_dir = in_close_reason_dir(rel);
    const bool server_dir = first_component(rel) == "server";
    const bool is_result_header = rel == std::filesystem::path("util/result.h");
    const bool is_check_header = rel == std::filesystem::path("util/check.h");

    static const std::regex bare_assert(R"((^|[^_\w])assert\s*\()");
    static const std::regex cassert_include(R"(#\s*include\s*<cassert>)");
    static const std::regex reinterpret(R"(reinterpret_cast)");
    static const std::regex result_decl(
        R"(^\s*(\[\[nodiscard\]\]\s*)?(static\s+)?(virtual\s+)?((origin::)?util::)?(Result<|Status\s+[A-Za-z_]))");
    static const std::regex c_int_cast(
        R"(\(\s*(std::)?u?int(8|16|32|64)_t\s*\)\s*[\w(])");
    static const std::regex raw_mutex(
        R"(std::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable|condition_variable_any)\b)");
    static const std::regex raw_thread(R"(std::j?thread\b)");
    static const std::regex thread_detach(R"(\.\s*detach\s*\()");
    static const std::regex volatile_kw(R"((^|[^\w_])volatile([^\w_]|$))");
    // A mutex member declaration opens a "guarded block": following member
    // declarations must carry ORIGIN_GUARDED_BY until the block ends.
    static const std::regex mutex_member(
        R"(^\s*((origin::)?util::)?(Mutex|std::mutex)\s+\w+)");
    // Member declaration with no parentheses: `type name = init;` — the
    // no-parens shape excludes functions and already-annotated members.
    static const std::regex plain_member(
        R"(^\s*(const\s+|static\s+|constexpr\s+|mutable\s+)*[\w:]+(<[^;()]*>)?(\s*[*&])?\s+\w+\s*(=\s*[^;()]*)?(\{[^;()]*\})?\s*;)");
    static const std::regex access_specifier(R"(^\s*(public|private|protected)\s*:)");

    // Transport-level close calls (`x.close(` / `x->close(`); plain
    // `close_endpoint(...)` / `close_session(...)` calls do not match.
    static const std::regex endpoint_close(R"((\.|->)\s*close\s*\()");
    static const std::regex close_reason_bound(
        R"(const\s+std::string&\s*[A-Za-z_])");
    // Matches std::string and std::string_view keys alike (the latter by
    // prefix) in any ordered-tree container.
    static const std::regex string_keyed_tree(
        R"(std::(multi)?(map|set)\s*<\s*std::string)");
    // Raw write-capable file primitives: ofstream construction, fopen with
    // any mode containing 'w' or 'a' (appends included), and fwrite. The
    // POSIX open(2) with O_WRONLY is matched too — util/durable_file.cc is
    // the one audited home for it, and it sits outside dataset/.
    static const std::regex raw_file_write(
        R"(std::ofstream|\bfwrite\s*\(|\bf?open\s*\([^;)]*,\s*(\"[^\"]*[wa][^\"]*\"|O_WRONLY|O_RDWR|O_APPEND))");

    bool saw_nodiscard_result = false;
    bool saw_nodiscard_status = false;
    bool in_guarded_block = false;

    std::string previous;
    for (std::size_t index = 0; index < lines.size(); ++index) {
      const std::string& line = lines[index];
      const std::size_t lineno = index + 1;
      const bool comment = is_comment_line(line);

      if (!comment && !is_check_header &&
          line.find("static_assert") == std::string::npos &&
          (std::regex_search(line, bare_assert) ||
           std::regex_search(line, cassert_include))) {
        report(rel, lineno, "no-bare-assert",
               "use ORIGIN_CHECK from util/check.h; assert is stripped from "
               "RelWithDebInfo builds");
      }

      if (!comment &&
          std::regex_search(line, reinterpret)) {
        report(rel, lineno, "no-reinterpret-cast",
               "view bytes as text via util::as_string_view instead of a raw "
               "reinterpret_cast");
      }

      if (header && !comment) {
        std::smatch m;
        if (std::regex_search(line, m, result_decl) &&
            line.find("using ") == std::string::npos) {
          const bool marked = m[1].matched ||
                              previous.find("[[nodiscard]]") != std::string::npos;
          if (!marked) {
            report(rel, lineno, "nodiscard-parse-api",
                   "declarations returning util::Result/util::Status must be "
                   "[[nodiscard]]");
          }
        }
      }

      if (parser_dir && !comment &&
          std::regex_search(line, c_int_cast)) {
        report(rel, lineno, "no-c-style-int-cast",
               "use static_cast for integer narrowing in parser code");
      }

      if (is_result_header) {
        if (line.find("class [[nodiscard]] Result") != std::string::npos) {
          saw_nodiscard_result = true;
        }
        if (line.find("class [[nodiscard]] Status") != std::string::npos) {
          saw_nodiscard_status = true;
        }
      }

      // --- thread discipline -------------------------------------------
      if (!in_util_dir(rel) && !comment &&
          std::regex_search(line, raw_mutex)) {
        report(rel, lineno, "no-raw-std-mutex",
               "use util::Mutex / util::MutexLock / util::CondVar from "
               "util/thread_annotations.h so clang's thread-safety analysis "
               "sees the lock");
      }

      if (!in_util_dir(rel) && !comment &&
          std::regex_search(line, raw_thread)) {
        report(rel, lineno, "no-raw-std-thread",
               "shard work through util::ThreadPool instead of spawning raw "
               "std::thread");
      }

      if (!comment &&
          std::regex_search(line, thread_detach)) {
        report(rel, lineno, "no-thread-detach",
               "detached threads outlive the state they touch; keep the "
               "handle and join");
      }

      // close-reason-handled: the handler's parameter list (this line plus
      // up to two continuation lines) must name the reason string. The
      // netsim declaration itself (`void set_on_close(...)`) has no '['.
      if (close_reason_dir && !comment &&
          line.find("set_on_close(") != std::string::npos &&
          line.find('[') != std::string::npos) {
        std::string window = line;
        std::size_t last = lineno;
        for (std::size_t ahead = 1; ahead <= 2 && index + ahead < lines.size();
             ++ahead) {
          window += ' ';
          window += lines[index + ahead];
          last = lineno + ahead;
        }
        if (!std::regex_search(window, close_reason_bound)) {
          report(rel, lineno, last, "close-reason-handled",
                 "set_on_close handlers in browser/cdn/server must bind the "
                 "close reason (const std::string& reason) — it carries the "
                 "teardown cause the degradation layer keys on");
        }
      }

      // server-close-recorded: a direct transport close in src/server
      // bypasses the close_endpoint audit that records the reason in
      // Stats::close_reasons; only the audited call site is waived.
      if (server_dir && !comment &&
          std::regex_search(line, endpoint_close)) {
        report(rel, lineno, "server-close-recorded",
               "server-initiated closes must go through "
               "Http2Server::close_endpoint so the reason lands in "
               "Stats::close_reasons; a raw close() is an unaudited shed");
      }

      // durable-write-only: dataset/ writes spill shards and the manifest
      // journal; a raw write path can tear a file a resume would trust.
      if (first_component(rel) == "dataset" && !comment &&
          std::regex_search(line, raw_file_write)) {
        report(rel, lineno, "durable-write-only",
               "dataset/ writes must go through util/durable_file.h "
               "(durable_write_file or DurableLog: temp -> fsync -> rename "
               "commit); a raw write can leave a torn file that a "
               "crash-resume would read as data (DESIGN.md #15)");
      }

      if (in_interned_hot_path(rel) && !comment &&
          std::regex_search(line, string_keyed_tree)) {
        report(rel, lineno, "no-string-keyed-tree",
               "string-keyed std::map/std::set on the measurement->model hot "
               "path; intern the key through util::Interner and use "
               "util::FlatMap/util::FlatSet over SymbolIds (DESIGN.md #10)");
      }

      if (!comment &&
          std::regex_search(line, volatile_kw)) {
        report(rel, lineno, "no-volatile-sync",
               "volatile is not a synchronization primitive; use std::atomic "
               "or a util::Mutex");
      }

      // guarded-by-annotation: members following a mutex member must be
      // annotated. Sync primitives, const/static/constexpr members, and
      // lines already carrying an annotation are exempt; the block ends at
      // a blank line, access specifier, or closing brace.
      if (!comment) {
        const std::string t = trimmed(line);
        if (in_guarded_block) {
          if (t.empty() || t.find('}') != std::string::npos ||
              std::regex_search(line, access_specifier)) {
            in_guarded_block = false;
          } else if (line.find("GUARDED_BY") == std::string::npos &&
                     line.find("Mutex") == std::string::npos &&
                     line.find("CondVar") == std::string::npos &&
                     line.find("atomic") == std::string::npos &&
                     t.rfind("const ", 0) != 0 &&
                     t.rfind("static ", 0) != 0 &&
                     t.rfind("constexpr ", 0) != 0 &&
                     std::regex_search(line, plain_member)) {
            report(rel, lineno, "guarded-by-annotation",
                   "member declared after a mutex must be ORIGIN_GUARDED_BY "
                   "(or exempted with lint:allow)");
          }
        }
        if (std::regex_search(line, mutex_member)) in_guarded_block = true;
      }

      previous = line;
    }

    if (is_result_header && (!saw_nodiscard_result || !saw_nodiscard_status)) {
      report(rel, 1, "nodiscard-result-type",
             "util::Result and util::Status must be class-level [[nodiscard]]");
    }
  }

  void report(const std::filesystem::path& rel, std::size_t line,
              std::string rule, std::string message) {
    report(rel, line, line, std::move(rule), std::move(message));
  }

  // Multi-line matches (the close-reason lookahead window) carry the full
  // span so the waiver can sit on any of its lines.
  void report(const std::filesystem::path& rel, std::size_t line,
              std::size_t end_line, std::string rule, std::string message) {
    sink_.add(std::move(rule), rel.string(), line, std::move(message),
              end_line);
  }

 private:
  FindingSink& sink_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "usage: %s [--json=FILE] <source-dir>...\n",
                   argv[0]);
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: %s [--json=FILE] <source-dir>...\n", argv[0]);
    return 2;
  }

  // One corpus per root: rel paths stay root-relative ("h2/frame.h"), which
  // is what the directory-scoped rules key on.
  std::vector<std::deque<FileModel>> corpora;
  FindingSink sink;
  Linter linter(sink);
  std::size_t files = 0;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec)) {
      std::fprintf(stderr, "lint: not a directory: %s\n", root.c_str());
      return 2;
    }
    corpora.push_back(origin::analyze::load_corpus(root, {"."}));
    for (const FileModel& model : corpora.back()) {
      linter.lint_file(model);
      ++files;
    }
  }

  sink.finalize(std::vector<origin::analyze::FileWaiver>{},
                [&corpora](const std::string& file)
                    -> const std::vector<std::string_view>& {
                  static const std::vector<std::string_view> kNone;
                  for (const auto& corpus : corpora) {
                    for (const FileModel& m : corpus) {
                      if (m.rel == file) return m.lines;
                    }
                  }
                  return kNone;
                });

  const std::size_t unwaived = sink.print(std::cerr);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    sink.write_json(json);
  }
  if (unwaived != 0) {
    std::fprintf(stderr, "lint: %zu violation(s) in %zu file(s) scanned\n",
                 unwaived, files);
    return 1;
  }
  std::printf("lint: %zu file(s) clean\n", files);
  return 0;
}
