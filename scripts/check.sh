#!/usr/bin/env bash
# CI entrypoint for the parser-hardening quality gate.
#
# Runs, in order:
#   1. tier-1: default build + full ctest (includes the origin_lint and
#      origin_analyze gates and the deterministic fuzz-corpus replays)
#   2. origin_analyze over the full src/ tree: the hot-path allocation,
#      determinism, layering, transitive-hot, lock-order, and
#      error-propagation contracts must have zero unwaived findings AND
#      zero findings drift — every waived finding must already appear in
#      the committed analyze_findings.json baseline, so a new waiver
#      cannot land without the baseline diff showing up in review. The
#      per-pass finding counts print at the end of the leg; the fresh
#      machine-readable findings land in analyze_findings.json at the
#      repo root (committing that file is how the baseline is updated)
#   3. clang-tidy over the parser directories, when clang-tidy is on PATH
#      (advisory skip otherwise — the pinned CI image is gcc-only)
#   4. ASan preset build + full ctest
#   5. fault matrix: the wire/loader suites replayed at injected fault
#      rates 0 / 5 / 20% (ORIGIN_FAULT_RATE) under the ASan build, so every
#      degradation path (timeout, backoff, avoid-list, re-dispatch) runs
#      with the allocator instrumented
#   6. overload abuse matrix: the server-side overload suites replayed
#      under the ASan build across ORIGIN_ABUSE_MIX attacker mixes, so
#      every shed path (rapid-reset, header bomb, PING/SETTINGS floods,
#      slowloris reaping, admission refusal, drain) runs with the
#      allocator instrumented under each mix
#   7. kill–resume matrix: the crash-consistency suites (durable-file
#      commit windows, OCM1 manifest totality, the in-process kill–resume
#      matrix over every ORIGIN_CRASH_AT point class at 1 and 8 threads)
#      replayed under the ASan build, so every recovery path (torn-temp
#      sweep, journal tail truncation, quarantine + rebuild) runs with the
#      allocator instrumented
#   8. UBSan preset build + full ctest
#   9. TSan preset build + the concurrency suites (thread pool stress +
#      pipeline determinism + fault-schedule determinism + the overload
#      ledger 1-vs-8-thread determinism checks) with ORIGIN_THREADS=8, so
#      every shard path runs contended under the race detector
#  10. perf: Release build of the perf + ablation benches; each emits its
#      BENCH_*.json at the repo root and exits non-zero when a gate fails
#      (bench_perf_model: fused replay >= 3x the string-keyed baseline and
#      no >10% regression against the committed BENCH_model.json;
#      bench_ablation_overload: >=99% well-behaved completion under attack,
#      every attacker shed, zero pinned sessions, bounded p99, and no >10%
#      defended-p99 regression against the committed BENCH_overload.json;
#      bench_ablation_faults: no >10% degraded-median regression against
#      the committed BENCH_faults.json;
#      bench_perf_corpus: streamed/materialized StreamStats equality on the
#      golden 1k corpus, per-shard content CRCs, no >10% streamed sites/sec
#      regression against the committed BENCH_corpus.json — the CI-sized
#      run (ORIGIN_CORPUS_SITES, default 50k) gates but never overwrites
#      the committed 1M-site baseline numbers;
#      bench_ablation_crash: the process-level kill–resume chaos matrix —
#      a child is hard-killed (ORIGIN_CRASH_AT) at every crash-point class
#      and resumed; every resume must be digest-identical to the
#      uninterrupted baseline, a flipped shard byte must quarantine +
#      rebuild, and the worst-case recovery overhead must not regress more
#      than 10 points over the committed BENCH_crash.json)
#
# Usage: scripts/check.sh [--quick]
#   --quick   tier-1 + lint + analyze only; skip the sanitizer rebuilds and
#             perf leg.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "==> [1/10] tier-1 build + ctest (lint + analyze + fuzz replays included)"
run_suite build

echo "==> [2/10] origin_analyze contract gate (full src/ tree, drift-checked)"
./build/tools/analyze/origin_analyze --root=. \
  --waivers=tools/analyze/waivers.txt \
  --baseline=analyze_findings.json \
  --json=analyze_findings.json src
echo "findings artifact: analyze_findings.json (commit to accept new waivers)"

echo "==> [3/10] clang-tidy (parser directories)"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/h2/*.cc' 'src/hpack/*.cc' 'src/web/*.cc' 'src/util/*.cc' |
    xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not found; skipping (advisory on this image)"
fi

if [[ "$QUICK" == "1" ]]; then
  echo "==> --quick: skipping sanitizer presets"
  exit 0
fi

echo "==> [4/10] AddressSanitizer preset"
run_suite build-asan -DORIGIN_SANITIZE=address

echo "==> [5/10] fault matrix (wire suites at 0/5/20% injected faults, ASan)"
for rate in 0 0.05 0.20; do
  echo "--- ORIGIN_FAULT_RATE=$rate"
  ORIGIN_FAULT_RATE="$rate" ctest --test-dir build-asan --output-on-failure \
    -j "$JOBS" -R 'FaultInjection|FaultDeterminism|KillSwitch|WireClient|Http2Server|Middleboxes'
done

echo "==> [6/10] overload abuse matrix (ORIGIN_ABUSE_MIX sweep, ASan)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'Overload|Admission'
for mix in 'rapid_reset=6' 'slowloris=4' \
           'header_bomb=2,ping_flood=2,settings_flood=2'; do
  echo "--- ORIGIN_ABUSE_MIX=$mix"
  ORIGIN_ABUSE_MIX="$mix" ctest --test-dir build-asan --output-on-failure \
    -R 'Overload.EnvAbuseMatrixShedsEveryAttackerAndServesTheRest'
done

echo "==> [7/10] kill–resume matrix (crash-consistency suites, ASan)"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'CrashResume|DurableFile|Manifest|FuzzRegressionManifest|fuzz_manifest_replay'

echo "==> [8/10] UndefinedBehaviorSanitizer preset"
run_suite build-ubsan -DORIGIN_SANITIZE=undefined

echo "==> [9/10] ThreadSanitizer preset (concurrency suites, 8 threads)"
cmake -B build-tsan -S . -DORIGIN_SANITIZE=thread
cmake --build build-tsan -j "$JOBS"
ORIGIN_THREADS=8 ctest --test-dir build-tsan --output-on-failure \
  -R 'ThreadPool|PipelineDeterminism|FaultDeterminism|BitIdenticalAcrossThreadCounts'

echo "==> [10/10] perf gates (Release benches, repo-root BENCH_*.json)"
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-perf -j "$JOBS" \
  --target bench_perf_pipeline bench_perf_model bench_perf_corpus \
           bench_ablation_overload bench_ablation_faults \
           bench_ablation_crash
./build-perf/bench/bench_perf_pipeline
./build-perf/bench/bench_perf_model
./build-perf/bench/bench_perf_corpus
./build-perf/bench/bench_ablation_overload
./build-perf/bench/bench_ablation_faults
./build-perf/bench/bench_ablation_crash

echo "==> all checks passed"
