#include "dns/resolver.h"

#include <algorithm>

#include "util/fnv.h"

namespace origin::dns {

Resolver::Resolver(AuthoritativeDns& upstream, Params params,
                   std::uint64_t seed)
    : upstream_(upstream),
      params_(params),
      rng_(seed),
      rotation_salt_(origin::util::fnv1a64_mix(seed, 0x0D15C0117ULL)) {}

Answer Resolver::resolve(const std::string& name, Family family,
                         origin::util::SimTime now) {
  ++stats_.lookups;
  Answer answer;

  const std::string key = cache_key(name, family);
  auto it = cache_.find(key);
  if (it != cache_.end() && now < it->second.expires) {
    ++stats_.cache_hits;
    answer.ok = !it->second.addresses.empty();
    answer.addresses = it->second.addresses;
    answer.canonical_name = it->second.canonical_name;
    answer.ttl_seconds = it->second.ttl_seconds;
    answer.from_cache = true;
    answer.latency = params_.cache_hit_latency;
    return answer;
  }

  ++stats_.recursive_queries;
  if (params_.transport == Transport::kDo53) ++stats_.plaintext_exposures;

  if (params_.fault_servfail_rate > 0.0 || params_.fault_timeout_rate > 0.0) {
    // Same pure-hash roll the netsim fault injector uses: a function of
    // (fault_seed, name, this resolver's attempt count for the name), so
    // schedules replay bit-identically regardless of thread interleaving.
    const std::uint64_t h = origin::util::fnv1a64_mix(
        origin::util::fnv1a64_mix(params_.fault_seed, 0xD0F417ULL),
        origin::util::fnv1a64_mix(origin::util::fnv1a64(name),
                                  fault_attempts_[name]++));
    const double r = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (r < params_.fault_servfail_rate) {
      ++stats_.injected_servfails;
      answer.injected_fault = true;
      // SERVFAIL comes back about as fast as a real answer; not cached, so
      // a backoff retry gets a fresh roll.
      answer.latency =
          params_.recursive_base * rng_.lognormal(0.0, params_.jitter_sigma);
      return answer;
    }
    if (r < params_.fault_servfail_rate + params_.fault_timeout_rate) {
      ++stats_.injected_timeouts;
      answer.injected_fault = true;
      answer.latency = params_.fault_timeout_latency;
      return answer;
    }
  }

  const RecordType want =
      family == Family::kV4 ? RecordType::kA : RecordType::kAAAA;
  std::string current = name;
  std::uint32_t min_ttl = 0xffffffffu;
  std::vector<IpAddress> addresses;
  for (int depth = 0; depth < params_.max_cname_depth; ++depth) {
    // Rotation position is a pure function of (resolver seed, name, how
    // often THIS resolver asked): load-balanced answer sets stay diverse
    // across pages yet independent of global query order.
    const std::uint64_t rotation =
        origin::util::fnv1a64_mix(rotation_salt_,
                                  origin::util::fnv1a64(current)) +
        upstream_queries_[current]++;
    auto records = upstream_.query_at(current, want, rotation);
    if (records.empty()) break;
    if (records[0].type == RecordType::kCNAME) {
      min_ttl = std::min(min_ttl, records[0].ttl_seconds);
      current = records[0].target;
      continue;
    }
    for (const auto& record : records) {
      addresses.push_back(record.address);
      min_ttl = std::min(min_ttl, record.ttl_seconds);
    }
    break;
  }

  answer.ok = !addresses.empty();
  answer.addresses = std::move(addresses);
  answer.canonical_name = current;
  answer.ttl_seconds = answer.ok ? min_ttl : 30;  // negative-cache 30s
  answer.latency =
      params_.recursive_base * rng_.lognormal(0.0, params_.jitter_sigma);
  if (!answer.ok) ++stats_.nxdomain;

  CacheEntry entry;
  entry.addresses = answer.addresses;
  entry.canonical_name = answer.canonical_name;
  entry.ttl_seconds = answer.ttl_seconds;
  entry.expires =
      now + origin::util::Duration::seconds(static_cast<double>(answer.ttl_seconds));
  cache_[cache_key(name, family)] = std::move(entry);
  return answer;
}

}  // namespace origin::dns
