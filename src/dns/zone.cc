#include "dns/zone.h"

#include <algorithm>

#include "util/strings.h"

namespace origin::dns {

void Zone::add_a(const std::string& name, IpAddress address,
                 std::uint32_t ttl_seconds) {
  ResourceRecord record;
  record.name = name;
  record.type = address.family == Family::kV4 ? RecordType::kA
                                              : RecordType::kAAAA;
  record.ttl_seconds = ttl_seconds;
  record.address = address;
  names_[name].records.push_back(std::move(record));
}

void Zone::add_cname(const std::string& name, const std::string& target,
                     std::uint32_t ttl_seconds) {
  ResourceRecord record;
  record.name = name;
  record.type = RecordType::kCNAME;
  record.ttl_seconds = ttl_seconds;
  record.target = target;
  names_[name].records.push_back(std::move(record));
}

void Zone::set_policy(const std::string& name, AnswerPolicy policy) {
  names_[name].policy = policy;
}

void Zone::clear_addresses(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) return;
  auto& records = it->second.records;
  records.erase(std::remove_if(records.begin(), records.end(),
                               [](const ResourceRecord& r) {
                                 return r.type != RecordType::kCNAME;
                               }),
                records.end());
}

bool Zone::authoritative_for(const std::string& name) const {
  return name == apex_ || origin::util::ends_with(name, "." + apex_);
}

namespace {

// Applies a zone's answer policy at the given rotation position. Pure: the
// stateful query() advances a counter and delegates here; the parallel
// pipeline supplies the position itself (derived per page) so two threads
// querying the same name never perturb each other's answers.
std::vector<ResourceRecord> answers_at(std::vector<ResourceRecord> matches,
                                       AnswerPolicy policy,
                                       std::uint64_t rotation) {
  switch (policy) {
    case AnswerPolicy::kAllFixed:
      break;
    case AnswerPolicy::kRoundRobin:
      std::rotate(matches.begin(),
                  matches.begin() +
                      static_cast<std::ptrdiff_t>(rotation % matches.size()),
                  matches.end());
      break;
    case AnswerPolicy::kSingle: {
      ResourceRecord chosen = matches[rotation % matches.size()];
      matches = {std::move(chosen)};
      break;
    }
    case AnswerPolicy::kSubset: {
      std::vector<ResourceRecord> window;
      window.push_back(matches[rotation % matches.size()]);
      if (matches.size() > 1) {
        window.push_back(matches[(rotation + 1) % matches.size()]);
      }
      matches = std::move(window);
      break;
    }
  }
  return matches;
}

}  // namespace

std::vector<ResourceRecord> Zone::query_at(const std::string& name,
                                           RecordType type,
                                           std::uint64_t rotation) const {
  auto it = names_.find(name);
  if (it == names_.end()) return {};
  const NameEntry& entry = it->second;
  // CNAMEs answer any type query for the name.
  std::vector<ResourceRecord> cnames;
  std::vector<ResourceRecord> matches;
  for (const auto& record : entry.records) {
    if (record.type == RecordType::kCNAME) {
      cnames.push_back(record);
    } else if (record.type == type) {
      matches.push_back(record);
    }
  }
  if (!cnames.empty()) return cnames;
  if (matches.empty()) return {};
  return answers_at(std::move(matches), entry.policy, rotation);
}

std::vector<ResourceRecord> Zone::query(const std::string& name,
                                        RecordType type) {
  auto it = names_.find(name);
  if (it == names_.end()) return {};
  NameEntry& entry = it->second;
  auto result = query_at(name, type, entry.rotation);
  // Only address answers consume a rotation step (CNAME chains and misses
  // did not rotate before either).
  if (!result.empty() && result[0].type != RecordType::kCNAME) {
    entry.rotation++;
  }
  return result;
}

Zone& AuthoritativeDns::add_zone(const std::string& apex) {
  auto [it, inserted] = zones_.emplace(apex, Zone(apex));
  return it->second;
}

Zone* AuthoritativeDns::find_zone_for(const std::string& name) {
  Zone* best = nullptr;
  for (auto& [apex, zone] : zones_) {
    if (zone.authoritative_for(name)) {
      // Longest-suffix match wins ("img.cdn.example.com" prefers the
      // "cdn.example.com" zone over "example.com").
      if (best == nullptr || apex.size() > best->apex().size()) best = &zone;
    }
  }
  return best;
}

const Zone* AuthoritativeDns::find_zone_for(const std::string& name) const {
  const Zone* best = nullptr;
  for (const auto& [apex, zone] : zones_) {
    if (zone.authoritative_for(name)) {
      if (best == nullptr || apex.size() > best->apex().size()) best = &zone;
    }
  }
  return best;
}

std::vector<ResourceRecord> AuthoritativeDns::query(const std::string& name,
                                                    RecordType type) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  Zone* zone = find_zone_for(name);
  if (zone == nullptr) return {};
  return zone->query(name, type);
}

std::vector<ResourceRecord> AuthoritativeDns::query_at(
    const std::string& name, RecordType type, std::uint64_t rotation) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Zone* zone = find_zone_for(name);
  if (zone == nullptr) return {};
  return zone->query_at(name, type, rotation);
}

}  // namespace origin::dns
