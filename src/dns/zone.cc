#include "dns/zone.h"

#include <algorithm>

#include "util/strings.h"

namespace origin::dns {

void Zone::add_a(const std::string& name, IpAddress address,
                 std::uint32_t ttl_seconds) {
  ResourceRecord record;
  record.name = name;
  record.type = address.family == Family::kV4 ? RecordType::kA
                                              : RecordType::kAAAA;
  record.ttl_seconds = ttl_seconds;
  record.address = address;
  names_[name].records.push_back(std::move(record));
}

void Zone::add_cname(const std::string& name, const std::string& target,
                     std::uint32_t ttl_seconds) {
  ResourceRecord record;
  record.name = name;
  record.type = RecordType::kCNAME;
  record.ttl_seconds = ttl_seconds;
  record.target = target;
  names_[name].records.push_back(std::move(record));
}

void Zone::set_policy(const std::string& name, AnswerPolicy policy) {
  names_[name].policy = policy;
}

void Zone::clear_addresses(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) return;
  auto& records = it->second.records;
  records.erase(std::remove_if(records.begin(), records.end(),
                               [](const ResourceRecord& r) {
                                 return r.type != RecordType::kCNAME;
                               }),
                records.end());
}

bool Zone::authoritative_for(const std::string& name) const {
  return name == apex_ || origin::util::ends_with(name, "." + apex_);
}

std::vector<ResourceRecord> Zone::query(const std::string& name,
                                        RecordType type) {
  auto it = names_.find(name);
  if (it == names_.end()) return {};
  NameEntry& entry = it->second;
  // CNAMEs answer any type query for the name.
  std::vector<ResourceRecord> cnames;
  std::vector<ResourceRecord> matches;
  for (const auto& record : entry.records) {
    if (record.type == RecordType::kCNAME) {
      cnames.push_back(record);
    } else if (record.type == type) {
      matches.push_back(record);
    }
  }
  if (!cnames.empty()) return cnames;
  if (matches.empty()) return {};
  switch (entry.policy) {
    case AnswerPolicy::kAllFixed:
      break;
    case AnswerPolicy::kRoundRobin:
      std::rotate(matches.begin(),
                  matches.begin() +
                      static_cast<std::ptrdiff_t>(entry.rotation % matches.size()),
                  matches.end());
      entry.rotation++;
      break;
    case AnswerPolicy::kSingle: {
      ResourceRecord chosen = matches[entry.rotation % matches.size()];
      entry.rotation++;
      matches = {std::move(chosen)};
      break;
    }
    case AnswerPolicy::kSubset: {
      std::vector<ResourceRecord> window;
      window.push_back(matches[entry.rotation % matches.size()]);
      if (matches.size() > 1) {
        window.push_back(matches[(entry.rotation + 1) % matches.size()]);
      }
      entry.rotation++;
      matches = std::move(window);
      break;
    }
  }
  return matches;
}

Zone& AuthoritativeDns::add_zone(const std::string& apex) {
  auto [it, inserted] = zones_.emplace(apex, Zone(apex));
  return it->second;
}

Zone* AuthoritativeDns::find_zone_for(const std::string& name) {
  Zone* best = nullptr;
  for (auto& [apex, zone] : zones_) {
    if (zone.authoritative_for(name)) {
      // Longest-suffix match wins ("img.cdn.example.com" prefers the
      // "cdn.example.com" zone over "example.com").
      if (best == nullptr || apex.size() > best->apex().size()) best = &zone;
    }
  }
  return best;
}

std::vector<ResourceRecord> AuthoritativeDns::query(const std::string& name,
                                                    RecordType type) {
  ++queries_;
  Zone* zone = find_zone_for(name);
  if (zone == nullptr) return {};
  return zone->query(name, type);
}

}  // namespace origin::dns
