#include "dns/record.h"

#include <cstdio>

namespace origin::dns {

std::string IpAddress::to_string() const {
  char buf[64];
  if (family == Family::kV4) {
    auto v = static_cast<std::uint32_t>(value);
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", v >> 24, (v >> 16) & 0xff,
                  (v >> 8) & 0xff, v & 0xff);
  } else {
    std::snprintf(buf, sizeof(buf), "2001:db8::%llx",
                  static_cast<unsigned long long>(value));
  }
  return buf;
}

const char* record_type_name(RecordType type) {
  switch (type) {
    case RecordType::kA: return "A";
    case RecordType::kAAAA: return "AAAA";
    case RecordType::kCNAME: return "CNAME";
  }
  return "?";
}

}  // namespace origin::dns
