// Authoritative DNS: zone data plus answer-set policies.
//
// The paper's browser analysis (§2.3) hinges on servers returning *sets* of
// addresses, possibly rotated between queries for load balancing (RFC
// 1794): Chromium keeps only the connected address, Firefox also caches the
// available set and exploits transitivity. The rotation policy here lets
// experiments reproduce exactly those divergent outcomes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dns/record.h"
#include "util/rng.h"

namespace origin::dns {

enum class AnswerPolicy : std::uint8_t {
  kAllFixed,    // return all addresses, fixed order
  kRoundRobin,  // return all addresses, rotated per query
  kSingle,      // return one address, rotated per query (strict LB)
  // Return a 2-address window that slides by one per query — the paper's
  // §2.3 example: the page gets {A, B}, the subresource gets {B, C}.
  // Chromium (connected-set) loses the transitive overlap; Firefox keeps it.
  kSubset,
};

class Zone {
 public:
  explicit Zone(std::string apex) : apex_(std::move(apex)) {}

  const std::string& apex() const { return apex_; }

  void add_a(const std::string& name, IpAddress address,
             std::uint32_t ttl_seconds = 300);
  void add_cname(const std::string& name, const std::string& target,
                 std::uint32_t ttl_seconds = 300);
  void set_policy(const std::string& name, AnswerPolicy policy);

  // Removes all address records for `name` (re-pointing a domain, §5.3
  // "DNS changes were undone").
  void clear_addresses(const std::string& name);

  bool authoritative_for(const std::string& name) const;

  // Answers a query without CNAME chasing (the resolver does that),
  // advancing this zone's internal rotation counter. Stateful: two equal
  // queries may get different (rotated) answers. Not safe for concurrent
  // callers — the parallel pipeline uses query_at instead.
  std::vector<ResourceRecord> query(const std::string& name, RecordType type);

  // Order-independent variant: the caller supplies the rotation position
  // (resolvers derive it from their per-page seed), so answers depend only
  // on (name, rotation) — never on how many queries other threads made
  // first. This is what keeps DNS load-balancing effects deterministic at
  // any thread count.
  std::vector<ResourceRecord> query_at(const std::string& name,
                                       RecordType type,
                                       std::uint64_t rotation) const;

 private:
  struct NameEntry {
    std::vector<ResourceRecord> records;
    AnswerPolicy policy = AnswerPolicy::kAllFixed;
    std::size_t rotation = 0;
  };

  std::string apex_;
  std::map<std::string, NameEntry> names_;
};

// The set of zones a recursive resolver can reach.
class AuthoritativeDns {
 public:
  Zone& add_zone(const std::string& apex);
  Zone* find_zone_for(const std::string& name);
  const Zone* find_zone_for(const std::string& name) const;

  std::uint64_t query_count() const {
    return queries_.load(std::memory_order_relaxed);
  }
  // Stateful rotation (single-threaded direct users).
  std::vector<ResourceRecord> query(const std::string& name, RecordType type);
  // Caller-supplied rotation; safe for concurrent resolvers. The query
  // counter is an order-independent sum, so it stays exact in parallel.
  std::vector<ResourceRecord> query_at(const std::string& name,
                                       RecordType type,
                                       std::uint64_t rotation) const;

 private:
  std::map<std::string, Zone> zones_;  // keyed by apex
  // Atomic: concurrent page loads all funnel their recursive queries here.
  mutable std::atomic<std::uint64_t> queries_ = 0;
};

}  // namespace origin::dns
