// DNS record model. IPv4/IPv6 addresses are opaque identifiers in the
// simulation; what matters to coalescing is equality between the address a
// connection was opened on and addresses returned for later queries
// (paper §2.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/hash.h"

namespace origin::dns {

enum class Family : std::uint8_t { kV4, kV6 };

struct IpAddress {
  Family family = Family::kV4;
  std::uint64_t value = 0;

  static IpAddress v4(std::uint32_t value) {
    return IpAddress{Family::kV4, value};
  }
  static IpAddress v6(std::uint64_t value) {
    return IpAddress{Family::kV6, value};
  }

  std::string to_string() const;
  bool operator==(const IpAddress&) const = default;
  auto operator<=>(const IpAddress&) const = default;
};

enum class RecordType : std::uint8_t { kA, kAAAA, kCNAME };

const char* record_type_name(RecordType type);

struct ResourceRecord {
  std::string name;
  RecordType type = RecordType::kA;
  std::uint32_t ttl_seconds = 300;
  IpAddress address;   // A / AAAA
  std::string target;  // CNAME

  bool operator==(const ResourceRecord&) const = default;
};

}  // namespace origin::dns

namespace origin::util {

// util::FlatSet<dns::IpAddress> support (ideal-IP coalescing tracks seen
// server addresses per page, DESIGN.md §10).
template <>
struct Hash<origin::dns::IpAddress, void> {
  constexpr std::uint64_t operator()(const origin::dns::IpAddress& a) const {
    return mix64(a.value ^
                 (static_cast<std::uint64_t>(a.family) << 63));
  }
};

}  // namespace origin::util
