// Caching stub resolver with CNAME chasing and a latency model.
//
// Every resolution a browser performs is one of the paper's "render-
// blocking DNS queries"; the resolver counts lookups and cache hits so the
// measurement layer can reproduce the DNS columns of Table 1 and Figure 3.
// Plaintext (Do53) vs encrypted (DoH/DoT) transport matters for the privacy
// accounting in §6.2, so queries record their transport.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dns/record.h"
#include "dns/zone.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace origin::dns {

enum class Transport : std::uint8_t { kDo53, kDoT, kDoH };

struct ResolverStats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t recursive_queries = 0;
  std::uint64_t nxdomain = 0;
  // Queries whose name was visible in cleartext on the wire (§6.2).
  std::uint64_t plaintext_exposures = 0;
  // Injected upstream failures (fault_servfail_rate / fault_timeout_rate).
  std::uint64_t injected_servfails = 0;
  std::uint64_t injected_timeouts = 0;
};

struct Answer {
  bool ok = false;
  std::vector<IpAddress> addresses;
  std::string canonical_name;
  std::uint32_t ttl_seconds = 0;
  bool from_cache = false;
  // True when the failure was injected by the fault plan (SERVFAIL or
  // upstream timeout) rather than being an authoritative NXDOMAIN.
  bool injected_fault = false;
  origin::util::Duration latency;
};

class Resolver {
 public:
  struct Params {
    origin::util::Duration cache_hit_latency = origin::util::Duration::micros(100);
    // Recursive resolution latency: base + lognormal jitter.
    origin::util::Duration recursive_base = origin::util::Duration::millis(12);
    double jitter_sigma = 0.6;
    Transport transport = Transport::kDo53;
    int max_cname_depth = 8;
    // Deterministic fault injection: each upstream query rolls a hash of
    // (fault_seed, name, per-name attempt index) against these rates —
    // mirroring netsim::FaultConfig's dns_* knobs without a dependency on
    // the netsim layer. Injected failures are NOT negative-cached, so a
    // retry after backoff re-queries upstream like a real stub resolver.
    double fault_servfail_rate = 0.0;
    double fault_timeout_rate = 0.0;
    std::uint64_t fault_seed = 0;
    origin::util::Duration fault_timeout_latency =
        origin::util::Duration::seconds(5);
  };

  // Resolvers are per-page (fresh_session) and the page seed determines
  // which rotated DNS answer window the page sees: rotation is derived from
  // (seed, name) rather than from a shared zone counter, so concurrent page
  // loads get the same answers they would get serially, in any order.
  Resolver(AuthoritativeDns& upstream, Params params, std::uint64_t seed);

  // Resolves `name` to addresses of `family` at simulated time `now`.
  Answer resolve(const std::string& name, Family family,
                 origin::util::SimTime now);

  void flush_cache() { cache_.clear(); }
  const ResolverStats& stats() const { return stats_; }
  Transport transport() const { return params_.transport; }

 private:
  struct CacheEntry {
    std::vector<IpAddress> addresses;
    std::string canonical_name;
    std::uint32_t ttl_seconds = 0;
    origin::util::SimTime expires;
  };

  std::string cache_key(const std::string& name, Family family) const {
    return name + (family == Family::kV4 ? "|4" : "|6");
  }

  AuthoritativeDns& upstream_;
  Params params_;
  origin::util::Rng rng_;
  std::uint64_t rotation_salt_ = 0;
  // Per-name upstream query count: a TTL-expired re-query advances this
  // resolver's window without touching any shared state.
  std::map<std::string, std::uint64_t> upstream_queries_;
  // Per-name fault roll count, advanced on every upstream attempt so a
  // retried query gets an independent (but still deterministic) roll.
  std::map<std::string, std::uint64_t> fault_attempts_;
  std::map<std::string, CacheEntry> cache_;
  ResolverStats stats_;
};

}  // namespace origin::dns
