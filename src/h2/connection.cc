#include "h2/connection.h"

#include <algorithm>

namespace origin::h2 {

using origin::util::Bytes;
using origin::util::make_error;
using origin::util::Result;
using origin::util::Status;

Connection::Connection(Role role, Origin initial_origin,
                       Settings local_settings)
    : role_(role),
      local_settings_(local_settings),
      encoder_(Settings{}.header_table_size),
      decoder_(local_settings.header_table_size),
      parser_(local_settings.max_frame_size),
      origin_set_(std::move(initial_origin)),
      next_stream_id_(role == Role::kClient ? 1 : 2),
      send_window_(Settings{}.initial_window_size),
      recv_window_(local_settings.initial_window_size) {
  // Connection preface: the client sends the magic octets; both sides then
  // send their initial SETTINGS (RFC 9113 §3.4).
  if (role_ == Role::kClient) {
    output_.insert(output_.end(), kClientPreface.begin(), kClientPreface.end());
  }
  SettingsFrame settings;
  settings.settings = local_settings_.diff_from_defaults();
  enqueue(Frame{settings});
  preface_sent_ = true;
  if (role_ == Role::kClient) {
    // Sensitive request fields are never indexed.
    encoder_.add_sensitive_name("authorization");
    encoder_.add_sensitive_name("cookie");
  }
}

void Connection::enqueue(const Frame& frame) {
  Bytes wire = serialize_frame(frame);
  // analyze:allow(hot-transitive): the output queue is the connection's
  // wire-bytes hand-off; frames append until take_output() drains it, and
  // pre-reserving would require serializing every frame twice
  output_.insert(output_.end(), wire.begin(), wire.end());
}

Bytes Connection::take_output() { return std::exchange(output_, {}); }

Stream* Connection::find_stream(std::uint32_t id) {
  auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : &it->second;
}

std::size_t Connection::active_stream_count() const {
  return static_cast<std::size_t>(
      std::count_if(streams_.begin(), streams_.end(),
                    [](const auto& kv) { return !kv.second.closed(); }));
}

std::uint64_t Connection::frames_received(FrameType type) const {
  auto it = frame_counts_.find(type);
  return it == frame_counts_.end() ? 0 : it->second;
}

Stream& Connection::ensure_stream(std::uint32_t id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    it = streams_
             .emplace(id, Stream(id, remote_settings_.initial_window_size,
                                 local_settings_.initial_window_size))
             .first;
  }
  return it->second;
}

Status Connection::connection_error(ErrorCode code, std::string message) {
  failed_ = true;
  GoAwayFrame goaway;
  goaway.last_stream_id = highest_peer_stream_;
  goaway.error = code;
  goaway.debug_data = message;
  enqueue(Frame{goaway});
  return make_error(std::move(message));
}

Result<std::uint32_t> Connection::submit_request(
    const hpack::HeaderList& headers, bool end_stream) {
  if (role_ != Role::kClient) {
    return make_error("h2: submit_request on server connection");
  }
  if (failed_) return make_error("h2: connection failed");
  if (goaway_received_) {
    return make_error("h2: connection is draining (GOAWAY received)");
  }
  if (active_stream_count() >= remote_settings_.max_concurrent_streams) {
    return make_error("h2: MAX_CONCURRENT_STREAMS reached");
  }
  const std::uint32_t id = next_stream_id_;
  next_stream_id_ += 2;
  Stream& stream = ensure_stream(id);
  if (auto s = stream.apply(StreamEvent::kSendHeaders); !s.ok()) return s.error();
  if (end_stream) {
    if (auto s = stream.apply(StreamEvent::kSendEndStream); !s.ok()) {
      return s.error();
    }
  }
  HeadersFrame frame;
  frame.stream_id = id;
  frame.header_block = encoder_.encode(headers);
  frame.end_stream = end_stream;
  enqueue(Frame{std::move(frame)});
  return id;
}

Status Connection::submit_response(std::uint32_t stream_id,
                                   const hpack::HeaderList& headers,
                                   bool end_stream) {
  if (role_ != Role::kServer) {
    return make_error("h2: submit_response on client connection");
  }
  Stream* stream = find_stream(stream_id);
  if (stream == nullptr) return make_error("h2: no such stream");
  if (auto s = stream->apply(StreamEvent::kSendHeaders); !s.ok()) return s;
  if (end_stream) {
    if (auto s = stream->apply(StreamEvent::kSendEndStream); !s.ok()) return s;
  }
  HeadersFrame frame;
  frame.stream_id = stream_id;
  frame.header_block = encoder_.encode(headers);
  frame.end_stream = end_stream;
  enqueue(Frame{std::move(frame)});
  return {};
}

Status Connection::submit_data(std::uint32_t stream_id,
                               std::span<const std::uint8_t> data,
                               bool end_stream) {
  Stream* stream = find_stream(stream_id);
  if (stream == nullptr) return make_error("h2: no such stream");
  if (!stream->can_send_data()) {
    return make_error("h2: stream not writable");
  }
  const auto n = static_cast<std::int64_t>(data.size());
  if (!send_window_.can_send(n) || !stream->send_window().can_send(n)) {
    return make_error("h2: flow-control window exhausted");
  }
  // Split into frames respecting the peer's MAX_FRAME_SIZE.
  const std::size_t max_chunk = remote_settings_.max_frame_size;
  std::size_t offset = 0;
  do {
    std::size_t chunk = std::min(max_chunk, data.size() - offset);
    DataFrame frame;
    frame.stream_id = stream_id;
    frame.data.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                      data.begin() + static_cast<std::ptrdiff_t>(offset + chunk));
    frame.end_stream = end_stream && (offset + chunk == data.size());
    enqueue(Frame{std::move(frame)});
    offset += chunk;
  } while (offset < data.size());
  // analyze:allow(error-discard): both consumes follow the available()
  // check that sized this chunk, so neither can report exhaustion here
  (void)send_window_.consume(n);
  (void)stream->send_window().consume(n);  // analyze:allow(error-discard): sized by the same available() check as the connection window above
  if (end_stream) {
    if (auto s = stream->apply(StreamEvent::kSendEndStream); !s.ok()) return s;
  }
  return {};
}

Status Connection::submit_origin(const std::vector<std::string>& origins) {
  // RFC 8336 §2: the ORIGIN frame is sent by servers, on stream 0.
  if (role_ != Role::kServer) {
    return make_error("h2: ORIGIN frame is server-only");
  }
  OriginFrame frame;
  frame.origins = origins;
  advertised_origins_ = origins;
  enqueue(Frame{std::move(frame)});
  return {};
}

Status Connection::submit_secondary_certificate(
    const tls::Certificate& cert) {
  if (role_ != Role::kServer) {
    return make_error("h2: CERTIFICATE frame is server-only");
  }
  UnknownFrame frame;
  frame.type = kCertificateFrameType;
  frame.stream_id = 0;
  frame.payload = encode_certificate_payload(cert);
  enqueue(Frame{std::move(frame)});
  return {};
}

Status Connection::submit_altsvc(std::uint32_t stream_id,
                                 const std::string& origin,
                                 const std::string& field_value) {
  if (role_ != Role::kServer) return make_error("h2: ALTSVC is server-only");
  AltSvcFrame frame;
  frame.stream_id = stream_id;
  frame.origin = origin;
  frame.field_value = field_value;
  enqueue(Frame{std::move(frame)});
  return {};
}

void Connection::submit_ping(std::uint64_t opaque) {
  PingFrame frame;
  frame.opaque = opaque;
  enqueue(Frame{frame});
}

void Connection::submit_goaway(ErrorCode error, const std::string& debug) {
  GoAwayFrame frame;
  frame.last_stream_id = highest_peer_stream_;
  frame.error = error;
  frame.debug_data = debug;
  enqueue(Frame{std::move(frame)});
}

Status Connection::submit_rst_stream(std::uint32_t stream_id, ErrorCode error) {
  Stream* stream = find_stream(stream_id);
  if (stream == nullptr) return make_error("h2: no such stream");
  if (auto s = stream->apply(StreamEvent::kSendRstStream); !s.ok()) return s;
  RstStreamFrame frame;
  frame.stream_id = stream_id;
  frame.error = error;
  enqueue(Frame{frame});
  return {};
}

Status Connection::submit_window_update(std::uint32_t stream_id,
                                        std::uint32_t increment) {
  if (stream_id == 0) {
    if (auto s = recv_window_.replenish(increment); !s.ok()) return s;
  } else {
    Stream* stream = find_stream(stream_id);
    if (stream == nullptr) return make_error("h2: no such stream");
    if (auto s = stream->recv_window().replenish(increment); !s.ok()) return s;
  }
  WindowUpdateFrame frame;
  frame.stream_id = stream_id;
  frame.increment = increment;
  enqueue(Frame{frame});
  return {};
}

Status Connection::receive(std::span<const std::uint8_t> bytes) {
  if (failed_) return make_error("h2: connection failed");
  // Servers must first consume the client preface magic.
  if (role_ == Role::kServer && !preface_received_) {
    // Consume as much of the preface as is present in this chunk.
    std::size_t need = kClientPreface.size() - preface_offset_;
    std::size_t take = std::min(need, bytes.size());
    for (std::size_t i = 0; i < take; ++i) {
      if (bytes[i] != static_cast<std::uint8_t>(
                          kClientPreface[preface_offset_ + i])) {
        return connection_error(ErrorCode::kProtocolError,
                                "h2: bad client preface");
      }
    }
    preface_offset_ += take;
    if (preface_offset_ == kClientPreface.size()) preface_received_ = true;
    bytes = bytes.subspan(take);
    if (bytes.empty()) return {};
  }
  auto frames = parser_.feed(bytes);
  if (!frames.ok()) {
    return connection_error(ErrorCode::kFrameSizeError, frames.error().message);
  }
  for (Frame& frame : frames.value()) {
    frame_counts_[frame_type_of(frame)]++;
    ++total_frames_received_;
    if (auto s = handle_frame(std::move(frame)); !s.ok()) return s;
  }
  return {};
}

namespace {

// RFC 9113 §10.5.1: a field's accounted size is name + value + 32 octets of
// per-entry overhead; SETTINGS_MAX_HEADER_LIST_SIZE bounds the sum.
std::uint64_t header_list_size(const hpack::HeaderList& headers) {
  std::uint64_t total = 0;
  for (const auto& header : headers) {
    total += header.name.size() + header.value.size() + 32;
  }
  return total;
}

}  // namespace

Status Connection::check_header_list_size(const hpack::HeaderList& headers) {
  if (header_list_size(headers) > local_settings_.max_header_list_size) {
    // ENHANCE_YOUR_CALM rather than PROTOCOL_ERROR: the peer is burning our
    // memory budget, not breaking framing (header-bomb defense).
    return connection_error(ErrorCode::kEnhanceYourCalm,
                            "h2: header list exceeds "
                            "SETTINGS_MAX_HEADER_LIST_SIZE");
  }
  return {};
}

Status Connection::handle_frame(Frame frame) {
  // While a header block is in flight, only CONTINUATION on the same
  // stream is legal (RFC 9113 §6.10).
  if (pending_headers_ &&
      frame_type_of(frame) != FrameType::kContinuation) {
    return connection_error(ErrorCode::kProtocolError,
                            "h2: expected CONTINUATION");
  }
  return std::visit(
      [this](auto&& f) -> Status {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, SettingsFrame>) {
          if (f.ack) return {};
          if (auto s = remote_settings_.apply(f.settings); !s.ok()) {
            return connection_error(ErrorCode::kProtocolError,
                                    s.error().message);
          }
          encoder_.set_max_table_size(remote_settings_.header_table_size);
          SettingsFrame ack;
          ack.ack = true;
          enqueue(Frame{ack});
          if (callbacks_.on_remote_settings) callbacks_.on_remote_settings(f);
          return {};
        } else if constexpr (std::is_same_v<T, HeadersFrame>) {
          if (role_ == Role::kServer) {
            // New client stream ids must increase monotonically.
            if (f.stream_id % 2 == 0) {
              return connection_error(ErrorCode::kProtocolError,
                                      "h2: client stream id must be odd");
            }
            if (f.stream_id < highest_peer_stream_ &&
                streams_.find(f.stream_id) == streams_.end()) {
              return connection_error(ErrorCode::kProtocolError,
                                      "h2: stream id not monotonic");
            }
          }
          highest_peer_stream_ = std::max(highest_peer_stream_, f.stream_id);
          Stream& stream = ensure_stream(f.stream_id);
          if (auto s = stream.apply(StreamEvent::kRecvHeaders); !s.ok()) {
            return connection_error(ErrorCode::kProtocolError,
                                    s.error().message);
          }
          if (!f.end_headers) {
            pending_headers_ = PendingHeaderBlock{
                f.stream_id, std::move(f.header_block), f.end_stream};
            return {};
          }
          auto headers = decoder_.decode(f.header_block);
          if (!headers.ok()) {
            return connection_error(ErrorCode::kCompressionError,
                                    headers.error().message);
          }
          if (auto s = check_header_list_size(headers.value()); !s.ok()) {
            return s;
          }
          if (f.end_stream) {
            if (auto s = stream.apply(StreamEvent::kRecvEndStream); !s.ok()) {
              return connection_error(ErrorCode::kProtocolError,
                                      s.error().message);
            }
          }
          if (callbacks_.on_headers) {
            callbacks_.on_headers(f.stream_id, headers.value(), f.end_stream);
          }
          return {};
        } else if constexpr (std::is_same_v<T, ContinuationFrame>) {
          if (!pending_headers_ || pending_headers_->stream_id != f.stream_id) {
            return connection_error(ErrorCode::kProtocolError,
                                    "h2: unexpected CONTINUATION");
          }
          pending_headers_->fragments.insert(pending_headers_->fragments.end(),
                                             f.header_block.begin(),
                                             f.header_block.end());
          // HPACK never inflates: compressed fragments at least as large as
          // the configured decoded-size limit cannot decode under it, so an
          // endless never-END_HEADERS CONTINUATION stream is cut off here
          // instead of accumulating fragments without bound (header bomb).
          if (pending_headers_->fragments.size() >
              local_settings_.max_header_list_size) {
            return connection_error(ErrorCode::kEnhanceYourCalm,
                                    "h2: continuation fragments exceed "
                                    "SETTINGS_MAX_HEADER_LIST_SIZE");
          }
          if (!f.end_headers) return {};
          PendingHeaderBlock block = std::move(*pending_headers_);
          pending_headers_.reset();
          auto headers = decoder_.decode(block.fragments);
          if (!headers.ok()) {
            return connection_error(ErrorCode::kCompressionError,
                                    headers.error().message);
          }
          if (auto s = check_header_list_size(headers.value()); !s.ok()) {
            return s;
          }
          Stream& stream = ensure_stream(block.stream_id);
          if (block.end_stream) {
            if (auto s = stream.apply(StreamEvent::kRecvEndStream); !s.ok()) {
              return connection_error(ErrorCode::kProtocolError,
                                      s.error().message);
            }
          }
          if (callbacks_.on_headers) {
            callbacks_.on_headers(block.stream_id, headers.value(),
                                  block.end_stream);
          }
          return {};
        } else if constexpr (std::is_same_v<T, DataFrame>) {
          Stream* stream = find_stream(f.stream_id);
          if (stream == nullptr || !stream->can_recv_data()) {
            return connection_error(ErrorCode::kStreamClosed,
                                    "h2: DATA on closed/unknown stream");
          }
          const auto n = static_cast<std::int64_t>(f.data.size());
          if (auto s = recv_window_.consume(n); !s.ok()) {
            return connection_error(ErrorCode::kFlowControlError,
                                    s.error().message);
          }
          if (auto s = stream->recv_window().consume(n); !s.ok()) {
            return connection_error(ErrorCode::kFlowControlError,
                                    s.error().message);
          }
          if (f.end_stream) {
            if (auto s = stream->apply(StreamEvent::kRecvEndStream); !s.ok()) {
              return connection_error(ErrorCode::kProtocolError,
                                      s.error().message);
            }
          }
          // Auto-replenish both windows (an application with an unbounded
          // receive buffer); keeps the simulation free of artificial
          // stalls while still accounting windows exactly.
          if (n > 0) {
            // analyze:allow(error-discard): replenish of an unbounded
            // receive buffer only fails past the 2^31-1 window cap, which
            // the auto-replenish scheme keeps constant by construction
            (void)recv_window_.replenish(n);
            (void)stream->recv_window().replenish(n);  // analyze:allow(error-discard): same constant-window argument as the connection-level replenish above
            WindowUpdateFrame conn_update;
            conn_update.stream_id = 0;
            conn_update.increment = static_cast<std::uint32_t>(n);
            enqueue(Frame{conn_update});
            if (!stream->closed()) {
              WindowUpdateFrame stream_update;
              stream_update.stream_id = f.stream_id;
              stream_update.increment = static_cast<std::uint32_t>(n);
              enqueue(Frame{stream_update});
            }
          }
          if (callbacks_.on_data) {
            callbacks_.on_data(f.stream_id, f.data, f.end_stream);
          }
          return {};
        } else if constexpr (std::is_same_v<T, OriginFrame>) {
          // RFC 8336 §2: clients apply it; servers MUST ignore it. Frames
          // on nonzero streams never parse as OriginFrame here because the
          // codec keys on type only — enforce stream 0 via construction
          // (OriginFrame has no stream id).
          if (role_ == Role::kClient) {
            origin_set_.apply_origin_frame(f.origins);
            if (callbacks_.on_origin_set_changed) {
              callbacks_.on_origin_set_changed(origin_set_);
            }
          }
          return {};
        } else if constexpr (std::is_same_v<T, AltSvcFrame>) {
          // RFC 7838 §4 validity rules; invalid frames are ignored.
          const bool valid = (f.stream_id == 0) != f.origin.empty();
          if (valid && callbacks_.on_altsvc) callbacks_.on_altsvc(f);
          return {};
        } else if constexpr (std::is_same_v<T, PingFrame>) {
          if (!f.ack) {
            PingFrame ack;
            ack.ack = true;
            ack.opaque = f.opaque;
            enqueue(Frame{ack});
            if (callbacks_.on_ping) callbacks_.on_ping(f);
          }
          return {};
        } else if constexpr (std::is_same_v<T, GoAwayFrame>) {
          goaway_received_ = f;
          if (callbacks_.on_goaway) callbacks_.on_goaway(f);
          return {};
        } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
          Stream* stream = find_stream(f.stream_id);
          if (stream == nullptr) {
            // RST for an already-forgotten stream: ignore.
            return {};
          }
          if (auto s = stream->apply(StreamEvent::kRecvRstStream); !s.ok()) {
            return connection_error(ErrorCode::kProtocolError,
                                    s.error().message);
          }
          if (callbacks_.on_rst_stream) {
            callbacks_.on_rst_stream(f.stream_id, f.error);
          }
          return {};
        } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
          if (f.stream_id == 0) {
            if (auto s = send_window_.replenish(f.increment); !s.ok()) {
              return connection_error(ErrorCode::kFlowControlError,
                                      s.error().message);
            }
          } else if (Stream* stream = find_stream(f.stream_id)) {
            if (auto s = stream->send_window().replenish(f.increment);
                !s.ok()) {
              return connection_error(ErrorCode::kFlowControlError,
                                      s.error().message);
            }
          }
          return {};
        } else if constexpr (std::is_same_v<T, PriorityFrame>) {
          return {};  // priority signal deprecated; accepted and ignored
        } else if constexpr (std::is_same_v<T, PushPromiseFrame>) {
          if (role_ == Role::kClient && !local_settings_.enable_push) {
            return connection_error(ErrorCode::kProtocolError,
                                    "h2: PUSH_PROMISE with push disabled");
          }
          Stream& promised = ensure_stream(f.promised_stream_id);
          if (auto s = promised.apply(StreamEvent::kRecvPushPromise); !s.ok()) {
            return connection_error(ErrorCode::kProtocolError,
                                    s.error().message);
          }
          return {};
        } else {  // UnknownFrame
          // CERTIFICATE extension frames (§6.5) are understood when they
          // arrive on stream 0 of a client connection.
          if (f.type == kCertificateFrameType && f.stream_id == 0 &&
              role_ == Role::kClient) {
            auto cert = decode_certificate_payload(f.payload);
            if (cert.ok()) {
              secondary_certificates_.push_back(cert.value());
              if (callbacks_.on_secondary_certificate) {
                callbacks_.on_secondary_certificate(cert.value());
              }
            }
            // Malformed extension payloads are dropped, never fatal.
            return {};
          }
          // RFC 9113 §4.1: implementations MUST ignore and discard frames
          // of unknown type. This is the rule the §6.7 middlebox broke.
          if (callbacks_.on_unknown_frame) callbacks_.on_unknown_frame(f);
          return {};
        }
      },
      std::move(frame));
}

}  // namespace origin::h2
