// The client-side Origin Set (RFC 8336 §2.3).
//
// Until an ORIGIN frame arrives, the origin set is implicit: it contains
// the origin the connection was opened for, and a client that wants to
// coalesce another origin has to fall back to its own heuristics (IP
// matching, DNS re-resolution — the behaviours §2.3 of the paper documents
// for Chromium and Firefox). Once an ORIGIN frame arrives the set becomes
// explicit: each frame REPLACES the set, and members need no DNS
// revalidation — only certificate coverage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace origin::h2 {

// An ASCII-serialized origin, e.g. "https://images.example.com" or
// "https://example.com:8443". Default ports are elided.
struct Origin {
  std::string scheme = "https";
  std::string host;
  std::uint16_t port = 443;

  std::string serialize() const;
  static std::optional<Origin> parse(std::string_view ascii);

  bool operator==(const Origin&) const = default;
};

class OriginSet {
 public:
  // The connection's initial origin (from SNI / :authority of the first
  // request) is always a member.
  explicit OriginSet(Origin initial);

  // Applies a received ORIGIN frame: the set is replaced by the frame's
  // valid entries (unparseable entries are ignored individually, per RFC
  // 8336 §2.1). The initial origin remains reachable regardless.
  void apply_origin_frame(const std::vector<std::string>& entries);

  // Is `candidate` in the origin set?
  bool contains(const Origin& candidate) const;
  bool contains(std::string_view host) const;  // https + default port

  // False once an ORIGIN frame has been received: members are then usable
  // without any DNS check (certificate checks still apply).
  bool requires_dns_validation() const { return !explicit_; }
  bool received_origin_frame() const { return explicit_; }

  const Origin& initial() const { return initial_; }
  const std::vector<Origin>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }

 private:
  Origin initial_;
  std::vector<Origin> members_;
  bool explicit_ = false;
};

}  // namespace origin::h2
