// Concrete middleboxes used by the experiments.
//
// The hostile ones parameterize the §6.7 incident family: devices that key
// decisions on HTTP/2 frame types (teardown-on-ORIGIN, teardown-on-unknown),
// reorder frames in flight, or enforce that every request's :authority
// matches the connection's first one (anti-domain-fronting DPI — the
// middlebox behaviour that makes coalescing itself the trigger).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "h2/frame.h"
#include "hpack/hpack.h"
#include "netsim/network.h"

namespace origin::h2 {

// A standards-compliant inspection device: looks at every frame, forwards
// everything (the baseline that proves inspection alone breaks nothing).
class PassiveInspector : public netsim::Middlebox {
 public:
  netsim::Middlebox::Verdict inspect(std::uint64_t connection_id,
                  std::span<const std::uint8_t> bytes, bool to_server) override;
  std::string name() const override { return "passive-inspector"; }
  std::uint64_t frames_seen() const { return frames_seen_; }

 private:
  // One parser per (connection, direction): a middlebox instance sees every
  // connection of its client, and interleaved byte streams would otherwise
  // garble a single parser.
  std::map<std::pair<std::uint64_t, bool>, h2::FrameParser> parsers_;
  std::uint64_t frames_seen_ = 0;
};

// The §6.7 bug: a network agent that tears the TLS connection down when it
// sees a frame type it does not recognize — instead of ignoring it as RFC
// 9113 §4.1 requires. Defaults to knowing only the RFC 7540 core frames,
// so ORIGIN (0xc) triggers the teardown.
class StrictFrameMiddlebox : public netsim::Middlebox {
 public:
  StrictFrameMiddlebox();

  // Frame types the agent recognizes (and therefore forwards).
  void add_known_type(std::uint8_t type) { known_types_.insert(type); }

  netsim::Middlebox::Verdict inspect(std::uint64_t connection_id,
                  std::span<const std::uint8_t> bytes, bool to_server) override;
  std::string name() const override { return "strict-av-agent"; }
  std::uint64_t teardowns() const { return teardowns_; }

 private:
  std::set<std::uint8_t> known_types_;
  std::map<std::pair<std::uint64_t, bool>, h2::FrameParser> parsers_;
  std::uint64_t teardowns_ = 0;
};

// The inverse parameterization: tears down on an explicit list of frame
// types and forwards everything else — teardown-on-ORIGIN is
// TeardownOnTypeMiddlebox({0x0c}), a device that tolerates arbitrary
// unknown frames but specifically hates the coalescing advertisement.
class TeardownOnTypeMiddlebox : public netsim::Middlebox {
 public:
  explicit TeardownOnTypeMiddlebox(std::set<std::uint8_t> teardown_types,
                                   std::string name = "type-filter-agent");

  netsim::Middlebox::Verdict inspect(std::uint64_t connection_id,
                  std::span<const std::uint8_t> bytes, bool to_server) override;
  std::string name() const override { return name_; }
  std::uint64_t teardowns() const { return teardowns_; }

 private:
  std::set<std::uint8_t> teardown_types_;
  std::string name_;
  std::map<std::pair<std::uint64_t, bool>, h2::FrameParser> parsers_;
  std::uint64_t teardowns_ = 0;
};

// Swaps the first two complete frames inside a delivery (a buggy
// load-balancer reassembly path). Never tears down by itself; the damage
// surfaces as an h2 protocol error on the receiving endpoint, exercising
// the client's GOAWAY/re-dispatch degradation path.
class FrameReorderingMiddlebox : public netsim::Middlebox {
 public:
  netsim::Middlebox::Verdict inspect(std::uint64_t connection_id,
                  std::span<const std::uint8_t> bytes, bool to_server) override;
  void transform(std::uint64_t connection_id, origin::util::Bytes& bytes,
                 bool to_server) override;
  std::string name() const override { return "frame-reordering-lb"; }
  std::uint64_t reorders() const { return reorders_; }

 private:
  std::uint64_t reorders_ = 0;
};

// Anti-domain-fronting DPI: pins each connection to the :authority of its
// first request and kills the connection when a later request names a
// different one — exactly the device for which a coalesced request IS the
// anomaly. Drives the client's avoid-list: after one teardown the pair
// must go to a dedicated connection and never re-coalesce.
class AuthorityPinningMiddlebox : public netsim::Middlebox {
 public:
  netsim::Middlebox::Verdict inspect(std::uint64_t connection_id,
                  std::span<const std::uint8_t> bytes, bool to_server) override;
  std::string name() const override { return "authority-pinning-proxy"; }
  std::uint64_t teardowns() const { return teardowns_; }

 private:
  struct ConnState {
    h2::FrameParser parser;
    hpack::Decoder decoder;
    std::string pinned_authority;
  };
  std::map<std::uint64_t, ConnState> connections_;
  std::uint64_t teardowns_ = 0;
};

}  // namespace origin::h2
