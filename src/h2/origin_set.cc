#include "h2/origin_set.h"

#include <algorithm>

#include "util/hot_path.h"
#include "util/strings.h"

namespace origin::h2 {

std::string Origin::serialize() const {
  std::string out = scheme + "://" + host;
  const bool default_port =
      (scheme == "https" && port == 443) || (scheme == "http" && port == 80);
  if (!default_port) out += ":" + std::to_string(port);
  return out;
}

std::optional<Origin> Origin::parse(std::string_view ascii) {
  auto scheme_end = ascii.find("://");
  if (scheme_end == std::string_view::npos) return std::nullopt;
  Origin o;
  o.scheme = origin::util::to_lower(ascii.substr(0, scheme_end));
  if (o.scheme != "https" && o.scheme != "http") return std::nullopt;
  std::string_view rest = ascii.substr(scheme_end + 3);
  if (rest.empty()) return std::nullopt;
  auto colon = rest.rfind(':');
  if (colon != std::string_view::npos) {
    std::string_view port_str = rest.substr(colon + 1);
    if (port_str.empty()) return std::nullopt;
    std::uint32_t port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') return std::nullopt;
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
      if (port > 65535) return std::nullopt;
    }
    o.port = static_cast<std::uint16_t>(port);
    rest = rest.substr(0, colon);
  } else {
    o.port = o.scheme == "https" ? 443 : 80;
  }
  if (rest.empty() || rest.find('/') != std::string_view::npos) {
    return std::nullopt;
  }
  o.host = origin::util::to_lower(rest);
  return o;
}

OriginSet::OriginSet(Origin initial) : initial_(std::move(initial)) {
  members_.push_back(initial_);
}

void OriginSet::apply_origin_frame(const std::vector<std::string>& entries) {
  explicit_ = true;
  members_.clear();
  // The initial origin stays reachable on this connection whether or not
  // the server repeats it in the frame.
  members_.push_back(initial_);
  for (const auto& entry : entries) {
    auto parsed = Origin::parse(entry);
    if (!parsed) continue;  // ignore invalid entries individually
    if (std::find(members_.begin(), members_.end(), *parsed) == members_.end()) {
      members_.push_back(std::move(*parsed));
    }
  }
}

ORIGIN_HOT bool OriginSet::contains(const Origin& candidate) const {
  return std::find(members_.begin(), members_.end(), candidate) != members_.end();
}

ORIGIN_HOT bool OriginSet::contains(std::string_view host) const {
  // Member hosts are stored lowercase; comparing case-insensitively here
  // avoids materializing a lowercased copy of the candidate on the frame
  // inspection path.
  for (const Origin& m : members_) {
    if (m.scheme == "https" && m.port == 443 &&
        origin::util::iequals_ascii(m.host, host)) {
      return true;
    }
  }
  return false;
}

}  // namespace origin::h2
