#include "h2/secondary_certs.h"

namespace origin::h2 {

using origin::util::ByteReader;
using origin::util::Bytes;
using origin::util::ByteWriter;
using origin::util::make_error;
using origin::util::Result;
using origin::util::SimTime;

Bytes encode_certificate_payload(const tls::Certificate& cert) {
  ByteWriter writer(128);
  writer.u64(cert.serial);
  writer.u64(cert.issuer_key_id);
  writer.u64(cert.public_key_id);
  writer.u64(cert.signature);
  writer.u64(static_cast<std::uint64_t>(cert.not_before.micros()));
  writer.u64(static_cast<std::uint64_t>(cert.not_after.micros()));
  writer.u16(static_cast<std::uint16_t>(cert.subject_common_name.size()));
  writer.raw(cert.subject_common_name);
  writer.u16(static_cast<std::uint16_t>(cert.san_dns.size()));
  for (const auto& san : cert.san_dns) {
    writer.u16(static_cast<std::uint16_t>(san.size()));
    writer.raw(san);
  }
  // Issuer display name travels too (needed for trust-store lookup logs).
  writer.u16(static_cast<std::uint16_t>(cert.issuer.size()));
  writer.raw(cert.issuer);
  return writer.take();
}

Result<tls::Certificate> decode_certificate_payload(
    std::span<const std::uint8_t> payload) {
  ByteReader reader(payload);
  tls::Certificate cert;
  cert.serial = reader.u64();
  cert.issuer_key_id = reader.u64();
  cert.public_key_id = reader.u64();
  cert.signature = reader.u64();
  cert.not_before =
      SimTime::from_micros(static_cast<std::int64_t>(reader.u64()));
  cert.not_after =
      SimTime::from_micros(static_cast<std::int64_t>(reader.u64()));
  cert.subject_common_name = reader.str(reader.u16());
  const std::uint16_t san_count = reader.u16();
  for (std::uint16_t i = 0; i < san_count && reader.ok(); ++i) {
    cert.san_dns.push_back(reader.str(reader.u16()));
  }
  cert.issuer = reader.str(reader.u16());
  if (!reader.ok() || !reader.at_end()) {
    return make_error("h2: malformed CERTIFICATE frame");
  }
  return cert;
}

std::size_t certificate_frame_wire_size(const tls::Certificate& cert) {
  // In real deployments the payload is a DER X.509 certificate; our
  // structural model underestimates key/signature bytes, so charge the
  // certificate's modeled DER size plus the frame header.
  return 9 + cert.size_bytes();
}

}  // namespace origin::h2
