#include "h2/flow_control.h"

#include "util/hot_path.h"

namespace origin::h2 {

namespace {
constexpr std::int64_t kMaxWindow = 0x7fffffff;
}

ORIGIN_HOT origin::util::Status FlowWindow::consume(std::int64_t n) {
  if (n < 0) return origin::util::make_error("h2: negative consume");
  if (n > available_) {
    return origin::util::make_error("h2: flow-control window underflow");
  }
  available_ -= n;
  return {};
}

ORIGIN_HOT origin::util::Status FlowWindow::replenish(std::int64_t n) {
  if (n <= 0) return origin::util::make_error("h2: WINDOW_UPDATE of 0");
  if (available_ + n > kMaxWindow) {
    return origin::util::make_error("h2: window exceeds 2^31-1");
  }
  available_ += n;
  return {};
}

ORIGIN_HOT origin::util::Status FlowWindow::adjust(std::int64_t delta) {
  if (available_ + delta > kMaxWindow) {
    return origin::util::make_error("h2: window exceeds 2^31-1 after adjust");
  }
  available_ += delta;
  return {};
}

}  // namespace origin::h2
