#include "h2/middleboxes.h"

#include <algorithm>

namespace origin::h2 {

namespace {

// Strips the HTTP/2 client preface when present at the head of a
// client->server delivery; the frame parser does not understand it.
std::span<const std::uint8_t> strip_preface(
    std::span<const std::uint8_t> bytes, bool to_server) {
  if (!to_server) return bytes;
  static constexpr std::string_view magic = h2::kClientPreface;
  if (bytes.size() >= magic.size() &&
      std::equal(magic.begin(), magic.end(), bytes.begin())) {
    return bytes.subspan(magic.size());
  }
  return bytes;
}

}  // namespace

netsim::Middlebox::Verdict PassiveInspector::inspect(
    std::uint64_t connection_id, std::span<const std::uint8_t> bytes,
    bool to_server) {
  // A real inspector tracks the preface too — for counting purposes
  // treating a parse failure as opaque passthrough suffices.
  auto& parser = parsers_[{connection_id, to_server}];
  auto frames = parser.feed(strip_preface(bytes, to_server));
  if (frames.ok()) frames_seen_ += frames->size();
  return Verdict::kForward;
}

StrictFrameMiddlebox::StrictFrameMiddlebox() {
  // RFC 7540 core frame types only; ORIGIN (0xc) and ALTSVC (0xa) postdate
  // the agent's parser.
  for (std::uint8_t t = 0x0; t <= 0x9; ++t) known_types_.insert(t);
}

netsim::Middlebox::Verdict StrictFrameMiddlebox::inspect(
    std::uint64_t connection_id, std::span<const std::uint8_t> bytes,
    bool to_server) {
  auto& parser = parsers_[{connection_id, to_server}];
  auto frames = parser.feed(strip_preface(bytes, to_server));
  if (!frames.ok()) return Verdict::kForward;  // opaque to the agent
  for (const auto& frame : *frames) {
    const auto type = static_cast<std::uint8_t>(h2::frame_type_of(frame));
    if (!known_types_.contains(type)) {
      ++teardowns_;
      return Verdict::kTeardown;
    }
  }
  return Verdict::kForward;
}

TeardownOnTypeMiddlebox::TeardownOnTypeMiddlebox(
    std::set<std::uint8_t> teardown_types, std::string name)
    : teardown_types_(std::move(teardown_types)), name_(std::move(name)) {}

netsim::Middlebox::Verdict TeardownOnTypeMiddlebox::inspect(
    std::uint64_t connection_id, std::span<const std::uint8_t> bytes,
    bool to_server) {
  auto& parser = parsers_[{connection_id, to_server}];
  auto frames = parser.feed(strip_preface(bytes, to_server));
  if (!frames.ok()) return Verdict::kForward;
  for (const auto& frame : *frames) {
    const auto type = static_cast<std::uint8_t>(h2::frame_type_of(frame));
    if (teardown_types_.contains(type)) {
      ++teardowns_;
      return Verdict::kTeardown;
    }
  }
  return Verdict::kForward;
}

netsim::Middlebox::Verdict FrameReorderingMiddlebox::inspect(
    std::uint64_t connection_id, std::span<const std::uint8_t> bytes,
    bool to_server) {
  (void)connection_id;
  (void)bytes;
  (void)to_server;
  return Verdict::kForward;
}

void FrameReorderingMiddlebox::transform(std::uint64_t connection_id,
                                         origin::util::Bytes& bytes,
                                         bool to_server) {
  (void)connection_id;
  // Reassembly only scrambles deliveries it can fully frame: find the frame
  // boundaries from the 9-byte headers and swap the first two frames. If
  // the delivery starts with a preface or ends mid-frame, leave it alone —
  // a partial swap would be a different bug than the one modelled here.
  std::size_t offset = 0;
  if (to_server) {
    static constexpr std::string_view magic = h2::kClientPreface;
    if (bytes.size() >= magic.size() &&
        std::equal(magic.begin(), magic.end(), bytes.begin())) {
      offset = magic.size();
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> frames;  // (start, size)
  std::size_t pos = offset;
  while (pos + 9 <= bytes.size()) {
    const std::size_t length = (static_cast<std::size_t>(bytes[pos]) << 16) |
                               (static_cast<std::size_t>(bytes[pos + 1]) << 8) |
                               static_cast<std::size_t>(bytes[pos + 2]);
    const std::size_t total = 9 + length;
    if (pos + total > bytes.size()) return;  // ends mid-frame
    // analyze:allow(hot-transitive): bounded per-segment scratch —
    // a TCP segment carries at most a handful of frame boundaries
    frames.emplace_back(pos, total);
    pos += total;
  }
  if (pos != bytes.size() || frames.size() < 2) return;

  origin::util::Bytes out;
  out.reserve(bytes.size());
  out.insert(out.end(), bytes.begin(),
             bytes.begin() + static_cast<std::ptrdiff_t>(offset));
  for (const auto& [start, size] : {frames[1], frames[0]}) {
    out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(start),
               bytes.begin() + static_cast<std::ptrdiff_t>(start + size));
  }
  const std::size_t rest = frames[1].first + frames[1].second;
  out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(rest),
             bytes.end());
  bytes = std::move(out);
  ++reorders_;
}

netsim::Middlebox::Verdict AuthorityPinningMiddlebox::inspect(
    std::uint64_t connection_id, std::span<const std::uint8_t> bytes,
    bool to_server) {
  // Only requests carry :authority; server bytes pass untouched (and must
  // not feed the client-direction parser).
  if (!to_server) return Verdict::kForward;
  auto& conn = connections_[connection_id];
  auto frames = conn.parser.feed(strip_preface(bytes, to_server));
  if (!frames.ok()) return Verdict::kForward;
  for (const auto& frame : *frames) {
    const auto* headers = std::get_if<h2::HeadersFrame>(&frame);
    if (headers == nullptr) continue;
    auto fields = conn.decoder.decode(headers->header_block);
    // An undecodable block leaves the shared dynamic table unusable; a
    // real DPI box fails open here rather than killing every connection.
    if (!fields.ok()) return Verdict::kForward;
    for (const auto& field : *fields) {
      if (field.name != ":authority") continue;
      if (conn.pinned_authority.empty()) {
        conn.pinned_authority = field.value;
      } else if (conn.pinned_authority != field.value) {
        ++teardowns_;
        connections_.erase(connection_id);
        return Verdict::kTeardown;
      }
    }
  }
  return Verdict::kForward;
}

}  // namespace origin::h2
