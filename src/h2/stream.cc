#include "h2/stream.h"

#include <string>

namespace origin::h2 {

const char* stream_state_name(StreamState state) {
  switch (state) {
    case StreamState::kIdle: return "idle";
    case StreamState::kReservedLocal: return "reserved(local)";
    case StreamState::kReservedRemote: return "reserved(remote)";
    case StreamState::kOpen: return "open";
    case StreamState::kHalfClosedLocal: return "half-closed(local)";
    case StreamState::kHalfClosedRemote: return "half-closed(remote)";
    case StreamState::kClosed: return "closed";
  }
  return "?";
}

origin::util::Status Stream::apply(StreamEvent event) {
  auto invalid = [&]() -> origin::util::Status {
    // analyze:allow(hot-transitive): error path only — the message is
    // built when a stream event is invalid, never in steady-state replay
    return origin::util::make_error(std::string("h2: invalid stream event in ") +
                                    stream_state_name(state_));
  };
  switch (event) {
    case StreamEvent::kSendHeaders:
      switch (state_) {
        case StreamState::kIdle: state_ = StreamState::kOpen; return {};
        case StreamState::kReservedLocal: state_ = StreamState::kHalfClosedRemote; return {};
        case StreamState::kOpen:
        case StreamState::kHalfClosedRemote: return {};  // trailers
        default: return invalid();
      }
    case StreamEvent::kRecvHeaders:
      switch (state_) {
        case StreamState::kIdle: state_ = StreamState::kOpen; return {};
        case StreamState::kReservedRemote: state_ = StreamState::kHalfClosedLocal; return {};
        case StreamState::kOpen:
        case StreamState::kHalfClosedLocal: return {};  // trailers
        default: return invalid();
      }
    case StreamEvent::kSendEndStream:
      switch (state_) {
        case StreamState::kOpen: state_ = StreamState::kHalfClosedLocal; return {};
        case StreamState::kHalfClosedRemote: state_ = StreamState::kClosed; return {};
        default: return invalid();
      }
    case StreamEvent::kRecvEndStream:
      switch (state_) {
        case StreamState::kOpen: state_ = StreamState::kHalfClosedRemote; return {};
        case StreamState::kHalfClosedLocal: state_ = StreamState::kClosed; return {};
        default: return invalid();
      }
    case StreamEvent::kSendRstStream:
    case StreamEvent::kRecvRstStream:
      // RST on an idle stream is a connection error; from any other state
      // the stream simply closes.
      if (state_ == StreamState::kIdle) return invalid();
      state_ = StreamState::kClosed;
      return {};
    case StreamEvent::kSendPushPromise:
      if (state_ != StreamState::kIdle) return invalid();
      state_ = StreamState::kReservedLocal;
      return {};
    case StreamEvent::kRecvPushPromise:
      if (state_ != StreamState::kIdle) return invalid();
      state_ = StreamState::kReservedRemote;
      return {};
  }
  return invalid();
}

}  // namespace origin::h2
