// Flow-control windows (RFC 9113 §5.2, §6.9).
//
// Windows are signed: a SETTINGS_INITIAL_WINDOW_SIZE decrease can push a
// stream window negative. Growing a window past 2^31-1 is a
// FLOW_CONTROL_ERROR.
#pragma once

#include <cstdint>

#include "util/result.h"

namespace origin::h2 {

class FlowWindow {
 public:
  explicit FlowWindow(std::int64_t initial = 65535) : available_(initial) {}

  std::int64_t available() const { return available_; }

  // Can `n` bytes be sent right now?
  bool can_send(std::int64_t n) const { return available_ >= n; }

  // Deducts sent/received bytes. Receiving more than the advertised window
  // is the peer's flow-control violation.
  [[nodiscard]] origin::util::Status consume(std::int64_t n);

  // WINDOW_UPDATE. Fails when the window would exceed 2^31-1.
  [[nodiscard]] origin::util::Status replenish(std::int64_t n);

  // SETTINGS_INITIAL_WINDOW_SIZE delta applied to all open stream windows
  // (RFC 9113 §6.9.2); may legitimately drive the window negative.
  [[nodiscard]] origin::util::Status adjust(std::int64_t delta);

 private:
  std::int64_t available_;
};

}  // namespace origin::h2
