// Seeded HTTP/2 abusive-client generators.
//
// Every server-side overload defense (server/http2_server.h) is paired with
// a reproducible attacker here, so the defenses are tested against the real
// frame sequences they exist for rather than hand-waved unit inputs:
//
//   kRapidReset     bursts of HEADERS immediately followed by RST_STREAM
//                   (CVE-2023-44487 shape): each pair costs the server a
//                   full request dispatch while the client pays almost
//                   nothing.
//   kHeaderBomb     HEADERS with an oversized literal header block, split
//                   across CONTINUATION frames, inflating the server's
//                   header accounting.
//   kPingFlood      bursts of PING frames, each demanding an ack.
//   kSettingsFlood  bursts of empty SETTINGS frames, each demanding an ack.
//   kSlowloris      a connection that trickles a few preface bytes and then
//                   stalls forever, pinning server session state until the
//                   deadline-driven reaper notices.
//
// Generators are driven entirely by the discrete-event simulator and a
// caller-provided seed: the same (kind, seed, options) triple always emits
// the same frame schedule, so every shed decision the server makes is
// replayable bit for bit. They live in src/h2 (not netsim) because they
// speak the protocol: the layering contract keeps netsim below h2.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dns/record.h"
#include "hpack/hpack.h"
#include "netsim/network.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace origin::h2 {

enum class AbuseKind : std::uint8_t {
  kRapidReset,
  kHeaderBomb,
  kPingFlood,
  kSettingsFlood,
  kSlowloris,
};

const char* abuse_kind_name(AbuseKind kind);

// A named mix of attackers, parsed from the ORIGIN_ABUSE_MIX environment
// knob ("rapid_reset=2,ping_flood=1,slowloris=4"). Unknown keys, malformed
// counts, and missing '=' are errors — the same strict contract as
// netsim::FaultConfig::parse.
struct AbuseMix {
  std::size_t rapid_reset = 0;
  std::size_t header_bomb = 0;
  std::size_t ping_flood = 0;
  std::size_t settings_flood = 0;
  std::size_t slowloris = 0;

  [[nodiscard]] static origin::util::Result<AbuseMix> parse(
      std::string_view text);

  // Canonical key=value form; parse(serialize()) round-trips.
  std::string serialize() const;

  std::size_t total() const {
    return rapid_reset + header_bomb + ping_flood + settings_flood + slowloris;
  }

  // The mix expanded into one AbuseKind per client, in canonical order
  // (rapid_reset first, slowloris last) so client tags are stable.
  std::vector<AbuseKind> expand() const;
};

struct AbusiveClientOptions {
  // Sending rounds after the connect; bounded so run_until_idle terminates
  // even when the server never sheds the client.
  std::size_t bursts = 8;
  // Frames emitted per round (pairs count as two for rapid reset).
  std::size_t frames_per_burst = 64;
  origin::util::Duration burst_interval = origin::util::Duration::millis(5);
  // Header bomb: bytes of literal header value per HEADERS+CONTINUATION
  // round.
  std::size_t bomb_bytes = 64 * 1024;
  // Slowloris: preface bytes trickled one per interval, then silence. Six
  // bytes never completes the 24-byte client preface.
  std::size_t trickle_bytes = 6;
  origin::util::Duration trickle_interval = origin::util::Duration::seconds(2);
  // How long a burst client lingers after its last round before closing
  // itself. netsim drops in-flight bytes once either side tears down, so a
  // client that hangs up right after its final send would un-deliver its
  // own attack; the linger must exceed the link's one-way latency plus
  // transfer time for the last burst to land (and gives the server's shed
  // GOAWAY time to arrive).
  origin::util::Duration linger = origin::util::Duration::millis(250);
  // :authority for generated requests (rapid reset / header bomb).
  std::string authority = "www.site.com";
};

// One reproducible attacker. `start()` connects under the client tag
// "abuse:<kind>:<seed>" and schedules the kind's frame program; the client
// stops as soon as its endpoint closes (the server shed it) or its burst
// budget runs out, closing the connection itself in the latter case (except
// slowloris, whose entire point is never to close).
class AbusiveClient {
 public:
  AbusiveClient(netsim::Network& network, AbuseKind kind, std::uint64_t seed,
                AbusiveClientOptions options = {});

  void start(dns::IpAddress target);

  AbuseKind kind() const { return kind_; }
  const std::string& tag() const { return tag_; }
  bool connected() const { return connected_; }
  // The server (or network) closed this client's connection.
  bool closed() const { return closed_; }
  const std::string& close_reason() const { return close_reason_; }
  // Shed = closed by a server-side overload/admission decision.
  bool shed() const { return shed_; }
  std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  void run_burst(std::size_t round);
  void run_trickle(std::size_t sent);
  origin::util::Bytes burst_bytes(std::size_t round);
  std::uint32_t open_stream_id();

  netsim::Network& network_;
  AbuseKind kind_;
  std::uint64_t seed_;
  AbusiveClientOptions options_;
  std::string tag_;
  netsim::TcpEndpoint endpoint_;
  hpack::Encoder encoder_;
  std::uint32_t next_stream_id_ = 1;
  bool connected_ = false;
  bool closed_ = false;
  bool shed_ = false;
  std::string close_reason_;
  std::uint64_t frames_sent_ = 0;
};

// True when a netsim close reason records a deliberate server-side shed
// (overload budget, admission decision, or drain) rather than a normal
// close — the bit the admission greylist feeds on.
bool abusive_close_reason(const std::string& reason);

}  // namespace origin::h2
