/*
  Per-stream state machine (RFC 9113 §5.1).

                           +--------+
                   send PP |        | recv PP
                  ,--------+  idle  +--------.
                 /         |        |         \
                v          +--------+          v
         +----------+          |           +----------+
         |          |          | send H /  |          |
         | reserved |          | recv H    | reserved |
         | (local)  |          |           | (remote) |
         +----------+          v           +----------+
             |             +--------+             |
             |     recv ES |        | send ES     |
             |    ,--------+  open  +--------.    |
             |   /         |        |         \   |
             v  v          +--------+          v  v
         +----------+          |           +----------+
         |   half-  |          |           |   half-  |
         |  closed  |          | send R /  |  closed  |
         | (remote) |          | recv R    | (local)  |
         +----------+          |           +----------+
              |                v                 |
              |            +--------+            |
              `----------->| closed |<-----------'
                           +--------+
*/
#pragma once

#include <cstdint>

#include "h2/flow_control.h"
#include "util/result.h"

namespace origin::h2 {

enum class StreamState {
  kIdle,
  kReservedLocal,
  kReservedRemote,
  kOpen,
  kHalfClosedLocal,
  kHalfClosedRemote,
  kClosed,
};

const char* stream_state_name(StreamState state);

// Events that drive transitions. "Local" = this endpoint sent it.
enum class StreamEvent {
  kSendHeaders,
  kRecvHeaders,
  kSendEndStream,
  kRecvEndStream,
  kSendRstStream,
  kRecvRstStream,
  kSendPushPromise,  // applied to the promised stream
  kRecvPushPromise,
};

class Stream {
 public:
  Stream(std::uint32_t id, std::int64_t send_window, std::int64_t recv_window)
      : id_(id), send_window_(send_window), recv_window_(recv_window) {}

  std::uint32_t id() const { return id_; }
  StreamState state() const { return state_; }
  bool closed() const { return state_ == StreamState::kClosed; }

  // Applies an event; invalid transitions are protocol errors.
  [[nodiscard]] origin::util::Status apply(StreamEvent event);

  FlowWindow& send_window() { return send_window_; }
  FlowWindow& recv_window() { return recv_window_; }

  // True if this endpoint may still send DATA on the stream.
  bool can_send_data() const {
    return state_ == StreamState::kOpen ||
           state_ == StreamState::kHalfClosedRemote;
  }
  bool can_recv_data() const {
    return state_ == StreamState::kOpen ||
           state_ == StreamState::kHalfClosedLocal;
  }

 private:
  std::uint32_t id_;
  StreamState state_ = StreamState::kIdle;
  FlowWindow send_window_;
  FlowWindow recv_window_;
};

}  // namespace origin::h2
