// HTTP/2 frame model and wire codec (RFC 9113 §4, §6), including the
// extension frames this study depends on: ORIGIN (RFC 8336) and ALTSVC
// (RFC 7838).
//
// Every frame on the wire is a 9-octet header (24-bit length, 8-bit type,
// 8-bit flags, 31-bit stream id) followed by the payload. Unknown frame
// types MUST be ignored by compliant endpoints (RFC 9113 §4.1) — the §6.7
// middlebox incident in the paper is exactly a violation of that rule, so
// the codec deliberately preserves unknown frames as UnknownFrame rather
// than erroring.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace origin::h2 {

enum class FrameType : std::uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kPriority = 0x2,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPushPromise = 0x5,
  kPing = 0x6,
  kGoAway = 0x7,
  kWindowUpdate = 0x8,
  kContinuation = 0x9,
  kAltSvc = 0xa,   // RFC 7838
  kOrigin = 0xc,   // RFC 8336
};

const char* frame_type_name(FrameType type);

// Frame flags (per-type meaning, RFC 9113 §6).
inline constexpr std::uint8_t kFlagEndStream = 0x1;   // DATA, HEADERS
inline constexpr std::uint8_t kFlagAck = 0x1;         // SETTINGS, PING
inline constexpr std::uint8_t kFlagEndHeaders = 0x4;  // HEADERS, CONTINUATION
inline constexpr std::uint8_t kFlagPadded = 0x8;      // DATA, HEADERS
inline constexpr std::uint8_t kFlagPriority = 0x20;   // HEADERS

enum class ErrorCode : std::uint32_t {
  kNoError = 0x0,
  kProtocolError = 0x1,
  kInternalError = 0x2,
  kFlowControlError = 0x3,
  kSettingsTimeout = 0x4,
  kStreamClosed = 0x5,
  kFrameSizeError = 0x6,
  kRefusedStream = 0x7,
  kCancel = 0x8,
  kCompressionError = 0x9,
  kConnectError = 0xa,
  kEnhanceYourCalm = 0xb,
  kInadequateSecurity = 0xc,
  kHttp11Required = 0xd,
};

const char* error_code_name(ErrorCode code);

// RFC 9113 §6.5.2 setting identifiers.
enum class SettingId : std::uint16_t {
  kHeaderTableSize = 0x1,
  kEnablePush = 0x2,
  kMaxConcurrentStreams = 0x3,
  kInitialWindowSize = 0x4,
  kMaxFrameSize = 0x5,
  kMaxHeaderListSize = 0x6,
};

struct DataFrame {
  std::uint32_t stream_id = 0;
  origin::util::Bytes data;
  bool end_stream = false;
  std::uint8_t pad_length = 0;
};

struct HeadersFrame {
  std::uint32_t stream_id = 0;
  origin::util::Bytes header_block;  // HPACK-coded fragment
  bool end_stream = false;
  bool end_headers = true;
};

struct PriorityFrame {
  std::uint32_t stream_id = 0;
  std::uint32_t dependency = 0;
  std::uint8_t weight = 16;  // wire value + 1
  bool exclusive = false;
};

struct RstStreamFrame {
  std::uint32_t stream_id = 0;
  ErrorCode error = ErrorCode::kNoError;
};

struct SettingsFrame {
  bool ack = false;
  std::vector<std::pair<SettingId, std::uint32_t>> settings;
};

struct PushPromiseFrame {
  std::uint32_t stream_id = 0;
  std::uint32_t promised_stream_id = 0;
  origin::util::Bytes header_block;
  bool end_headers = true;
};

struct PingFrame {
  bool ack = false;
  std::uint64_t opaque = 0;
};

struct GoAwayFrame {
  std::uint32_t last_stream_id = 0;
  ErrorCode error = ErrorCode::kNoError;
  std::string debug_data;
};

struct WindowUpdateFrame {
  std::uint32_t stream_id = 0;  // 0 = connection-level
  std::uint32_t increment = 0;
};

struct ContinuationFrame {
  std::uint32_t stream_id = 0;
  origin::util::Bytes header_block;
  bool end_headers = true;
};

struct AltSvcFrame {
  std::uint32_t stream_id = 0;
  std::string origin;       // empty when sent on a request stream
  std::string field_value;  // Alt-Svc header syntax
};

// RFC 8336: sent by servers on stream 0; the payload is a sequence of
// Origin-Entry = (2-octet length, ASCII-serialized origin). Receipt replaces
// the client's origin set for the connection.
struct OriginFrame {
  std::vector<std::string> origins;
};

struct UnknownFrame {
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;
  origin::util::Bytes payload;
};

using Frame =
    std::variant<DataFrame, HeadersFrame, PriorityFrame, RstStreamFrame,
                 SettingsFrame, PushPromiseFrame, PingFrame, GoAwayFrame,
                 WindowUpdateFrame, ContinuationFrame, AltSvcFrame,
                 OriginFrame, UnknownFrame>;

FrameType frame_type_of(const Frame& frame);
std::uint32_t stream_id_of(const Frame& frame);

// Serializes one frame, including its 9-octet header.
origin::util::Bytes serialize_frame(const Frame& frame);

// Incremental frame parser: feed bytes in any chunking; complete frames are
// returned in order. Enforces the local SETTINGS_MAX_FRAME_SIZE. Parse
// failures are connection-fatal per RFC 9113 and surface as errors.
class FrameParser {
 public:
  explicit FrameParser(std::uint32_t max_frame_size = 16384)
      : max_frame_size_(max_frame_size) {}

  void set_max_frame_size(std::uint32_t size) { max_frame_size_ = size; }

  // Appends bytes to the internal buffer and extracts all complete frames.
  [[nodiscard]] origin::util::Result<std::vector<Frame>> feed(
      std::span<const std::uint8_t> bytes);

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  origin::util::Bytes buffer_;
  std::uint32_t max_frame_size_;
};

// The client connection preface (RFC 9113 §3.4).
inline constexpr std::string_view kClientPreface =
    "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

}  // namespace origin::h2
