// An HTTP/2 connection endpoint: multiplexes streams, runs HPACK in both
// directions, enforces flow control and the stream state machine, exchanges
// SETTINGS, and implements the RFC 8336 ORIGIN extension on both sides.
//
// I/O model: the connection is sans-io. Incoming bytes are pushed with
// `receive()`; outgoing bytes accumulate in an internal buffer drained with
// `take_output()`. The netsim layer moves those buffers between endpoints
// with simulated latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "h2/frame.h"
#include "h2/origin_set.h"
#include "h2/secondary_certs.h"
#include "h2/settings.h"
#include "h2/stream.h"
#include "hpack/hpack.h"
#include "util/bytes.h"
#include "util/result.h"

namespace origin::h2 {

struct ConnectionCallbacks {
  // A complete header block arrived for a stream.
  std::function<void(std::uint32_t stream_id, const hpack::HeaderList&,
                     bool end_stream)>
      on_headers;
  std::function<void(std::uint32_t stream_id,
                     std::span<const std::uint8_t> data, bool end_stream)>
      on_data;
  // The connection's origin set changed (client side, ORIGIN frame).
  std::function<void(const OriginSet&)> on_origin_set_changed;
  std::function<void(std::uint32_t stream_id, ErrorCode)> on_rst_stream;
  std::function<void(const GoAwayFrame&)> on_goaway;
  std::function<void(const AltSvcFrame&)> on_altsvc;
  std::function<void(const SettingsFrame&)> on_remote_settings;
  // A secondary certificate arrived on stream 0 (§6.5 / secondary-certs
  // draft) and was added to the connection's secondary certificate set.
  std::function<void(const tls::Certificate&)> on_secondary_certificate;
  // An unknown/extension frame arrived (and was ignored, as the spec
  // requires). Exposed so tests can observe fail-open behaviour.
  std::function<void(const UnknownFrame&)> on_unknown_frame;
  // A peer PING arrived (the ack is queued internally before this fires).
  // Servers use it to account PING-flood budgets.
  std::function<void(const PingFrame&)> on_ping;
};

class Connection {
 public:
  enum class Role { kClient, kServer };

  // `initial_origin` seeds the client's origin set (ignored for servers).
  Connection(Role role, Origin initial_origin, Settings local_settings = {});

  void set_callbacks(ConnectionCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  Role role() const { return role_; }

  // --- Sending ---------------------------------------------------------

  // Client only: opens a new stream carrying `headers`.
  [[nodiscard]] origin::util::Result<std::uint32_t> submit_request(
      const hpack::HeaderList& headers, bool end_stream);

  // Server only: response headers on an open stream.
  [[nodiscard]] origin::util::Status submit_response(std::uint32_t stream_id,
                                       const hpack::HeaderList& headers,
                                       bool end_stream);

  [[nodiscard]] origin::util::Status submit_data(std::uint32_t stream_id,
                                   std::span<const std::uint8_t> data,
                                   bool end_stream);

  // Server only: advertises the origin set on stream 0 (RFC 8336). The
  // serialized frame also updates `advertised_origins()`.
  [[nodiscard]] origin::util::Status submit_origin(const std::vector<std::string>& origins);

  // Server only: proves authority for additional origins by shipping a
  // further certificate on stream 0 (§6.5, secondary-certs draft).
  [[nodiscard]] origin::util::Status submit_secondary_certificate(
      const tls::Certificate& cert);

  [[nodiscard]] origin::util::Status submit_altsvc(std::uint32_t stream_id,
                                     const std::string& origin,
                                     const std::string& field_value);

  void submit_ping(std::uint64_t opaque);
  void submit_goaway(ErrorCode error, const std::string& debug);
  [[nodiscard]] origin::util::Status submit_rst_stream(std::uint32_t stream_id,
                                         ErrorCode error);
  [[nodiscard]] origin::util::Status submit_window_update(std::uint32_t stream_id,
                                            std::uint32_t increment);

  // --- Receiving -------------------------------------------------------

  // Processes peer bytes. A returned error is a connection error: a GOAWAY
  // has been queued in the output and the connection is dead.
  [[nodiscard]] origin::util::Status receive(std::span<const std::uint8_t> bytes);

  // --- Introspection ---------------------------------------------------

  origin::util::Bytes take_output();
  bool has_output() const { return !output_.empty(); }

  const OriginSet& origin_set() const { return origin_set_; }
  // Secondary certificates received on this connection (client side).
  const std::vector<tls::Certificate>& secondary_certificates() const {
    return secondary_certificates_;
  }
  const std::vector<std::string>& advertised_origins() const {
    return advertised_origins_;
  }

  const Settings& local_settings() const { return local_settings_; }
  const Settings& remote_settings() const { return remote_settings_; }

  Stream* find_stream(std::uint32_t id);
  std::size_t active_stream_count() const;
  std::uint32_t highest_peer_stream() const { return highest_peer_stream_; }
  bool failed() const { return failed_; }
  bool goaway_received() const { return goaway_received_.has_value(); }
  const std::optional<GoAwayFrame>& received_goaway() const {
    return goaway_received_;
  }
  std::uint64_t frames_received(FrameType type) const;
  // Total frames of every type this connection has parsed; the input to
  // connection-lifetime frame-rate budgets.
  std::uint64_t total_frames_received() const { return total_frames_received_; }
  std::int64_t connection_send_window() const {
    return send_window_.available();
  }

 private:
  [[nodiscard]] origin::util::Status handle_frame(Frame frame);
  [[nodiscard]] origin::util::Status connection_error(ErrorCode code, std::string message);
  // Enforces local SETTINGS_MAX_HEADER_LIST_SIZE on a decoded header list
  // (RFC 9113 §10.5.1 accounting: name + value + 32 per field).
  [[nodiscard]] origin::util::Status check_header_list_size(
      const hpack::HeaderList& headers);
  Stream& ensure_stream(std::uint32_t id);
  void enqueue(const Frame& frame);

  Role role_;
  Settings local_settings_;
  Settings remote_settings_;
  ConnectionCallbacks callbacks_;

  hpack::Encoder encoder_;
  hpack::Decoder decoder_;
  FrameParser parser_;

  OriginSet origin_set_;
  std::vector<std::string> advertised_origins_;
  std::vector<tls::Certificate> secondary_certificates_;

  std::map<std::uint32_t, Stream> streams_;
  std::uint32_t next_stream_id_;
  std::uint32_t highest_peer_stream_ = 0;

  FlowWindow send_window_;
  FlowWindow recv_window_;

  origin::util::Bytes output_;
  bool preface_sent_ = false;
  bool preface_received_ = false;
  std::size_t preface_offset_ = 0;
  bool failed_ = false;
  std::optional<GoAwayFrame> goaway_received_;
  std::map<FrameType, std::uint64_t> frame_counts_;
  std::uint64_t total_frames_received_ = 0;

  // A HEADERS without END_HEADERS leaves the connection in "continuation
  // expected" state; only CONTINUATION on the same stream is then legal.
  struct PendingHeaderBlock {
    std::uint32_t stream_id;
    origin::util::Bytes fragments;
    bool end_stream;
  };
  std::optional<PendingHeaderBlock> pending_headers_;
};

}  // namespace origin::h2
