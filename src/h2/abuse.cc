#include "h2/abuse.h"

#include <algorithm>
#include <charconv>

#include "h2/frame.h"
#include "util/fnv.h"

namespace origin::h2 {

using origin::util::Bytes;
using origin::util::make_error;
using origin::util::Result;

const char* abuse_kind_name(AbuseKind kind) {
  switch (kind) {
    case AbuseKind::kRapidReset: return "rapid_reset";
    case AbuseKind::kHeaderBomb: return "header_bomb";
    case AbuseKind::kPingFlood: return "ping_flood";
    case AbuseKind::kSettingsFlood: return "settings_flood";
    case AbuseKind::kSlowloris: return "slowloris";
  }
  return "unknown";
}

Result<AbuseMix> AbuseMix::parse(std::string_view text) {
  AbuseMix mix;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view entry = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace; empty entries (trailing comma) are fine.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.remove_suffix(1);
    }
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return make_error("abuse mix: missing '=' in \"" + std::string(entry) +
                        "\"");
    }
    const std::string_view key = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);
    std::size_t count = 0;
    const auto parsed =
        std::from_chars(value.data(), value.data() + value.size(), count);
    if (parsed.ec != std::errc{} || parsed.ptr != value.data() + value.size()) {
      return make_error("abuse mix: bad count in \"" + std::string(entry) +
                        "\"");
    }
    if (key == "rapid_reset") {
      mix.rapid_reset = count;
    } else if (key == "header_bomb") {
      mix.header_bomb = count;
    } else if (key == "ping_flood") {
      mix.ping_flood = count;
    } else if (key == "settings_flood") {
      mix.settings_flood = count;
    } else if (key == "slowloris") {
      mix.slowloris = count;
    } else {
      return make_error("abuse mix: unknown kind \"" + std::string(key) +
                        "\"");
    }
  }
  return mix;
}

std::string AbuseMix::serialize() const {
  std::string out;
  auto field = [&out](const char* name, std::size_t value) {
    if (!out.empty()) out += ',';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("rapid_reset", rapid_reset);
  field("header_bomb", header_bomb);
  field("ping_flood", ping_flood);
  field("settings_flood", settings_flood);
  field("slowloris", slowloris);
  return out;
}

std::vector<AbuseKind> AbuseMix::expand() const {
  std::vector<AbuseKind> kinds;
  kinds.reserve(total());
  for (std::size_t i = 0; i < rapid_reset; ++i) {
    kinds.push_back(AbuseKind::kRapidReset);
  }
  for (std::size_t i = 0; i < header_bomb; ++i) {
    kinds.push_back(AbuseKind::kHeaderBomb);
  }
  for (std::size_t i = 0; i < ping_flood; ++i) {
    kinds.push_back(AbuseKind::kPingFlood);
  }
  for (std::size_t i = 0; i < settings_flood; ++i) {
    kinds.push_back(AbuseKind::kSettingsFlood);
  }
  for (std::size_t i = 0; i < slowloris; ++i) {
    kinds.push_back(AbuseKind::kSlowloris);
  }
  return kinds;
}

AbusiveClient::AbusiveClient(netsim::Network& network, AbuseKind kind,
                             std::uint64_t seed, AbusiveClientOptions options)
    : network_(network),
      kind_(kind),
      seed_(seed),
      options_(std::move(options)),
      tag_("abuse:" + std::string(abuse_kind_name(kind)) + ":" +
           std::to_string(seed)) {}

bool abusive_close_reason(const std::string& reason) {
  return reason.rfind("overload:", 0) == 0 ||
         reason.rfind("admission:", 0) == 0 ||
         reason.rfind("drain:", 0) == 0;
}

void AbusiveClient::start(dns::IpAddress target) {
  network_.connect(
      tag_, target,
      [this](origin::util::Result<netsim::TcpEndpoint> endpoint) {
        if (!endpoint.ok()) {
          // Admission shed the connection before it existed: record the
          // refusal like a close so mixes over refused clients still
          // account every attacker.
          closed_ = true;
          shed_ = true;
          close_reason_ = endpoint.error().message;
          return;
        }
        connected_ = true;
        endpoint_ = *endpoint;
        endpoint_.set_on_receive([](std::span<const std::uint8_t>) {
          // Abusers never read: acks and responses rot in the void.
        });
        endpoint_.set_on_close([this](const std::string& reason) {
          closed_ = true;
          close_reason_ = reason;
          shed_ = abusive_close_reason(reason);
        });
        if (kind_ == AbuseKind::kSlowloris) {
          run_trickle(0);
        } else {
          run_burst(0);
        }
      });
}

std::uint32_t AbusiveClient::open_stream_id() {
  const std::uint32_t id = next_stream_id_;
  next_stream_id_ += 2;
  return id;
}

Bytes AbusiveClient::burst_bytes(std::size_t round) {
  Bytes wire;
  if (round == 0) {
    // Even attackers must complete the preface to get past frame parsing.
    wire.insert(wire.end(), kClientPreface.begin(), kClientPreface.end());
    SettingsFrame settings;
    const Bytes frame = serialize_frame(Frame{settings});
    wire.insert(wire.end(), frame.begin(), frame.end());
    ++frames_sent_;
  }
  auto append = [this, &wire](const Frame& frame) {
    const Bytes bytes = serialize_frame(frame);
    wire.insert(wire.end(), bytes.begin(), bytes.end());
    ++frames_sent_;
  };
  switch (kind_) {
    case AbuseKind::kRapidReset: {
      for (std::size_t i = 0; i + 1 < options_.frames_per_burst; i += 2) {
        const std::uint32_t id = open_stream_id();
        HeadersFrame headers;
        headers.stream_id = id;
        headers.end_stream = true;
        headers.header_block = encoder_.encode(
            {{":method", "GET"},
             {":scheme", "https"},
             {":authority", options_.authority},
             {":path", "/reset/" + std::to_string(round) + "/" +
                           std::to_string(i)}});
        append(Frame{std::move(headers)});
        RstStreamFrame rst;
        rst.stream_id = id;
        rst.error = ErrorCode::kCancel;
        append(Frame{rst});
      }
      break;
    }
    case AbuseKind::kHeaderBomb: {
      // One request whose cookie header dwarfs any sane header budget;
      // split across CONTINUATION frames like a real oversized block.
      const std::uint32_t id = open_stream_id();
      std::string bomb(options_.bomb_bytes, 'x');
      // Seed-dependent sprinkle keeps blocks distinct across clients.
      bomb[bomb.size() / 2] =
          static_cast<char>('a' + (origin::util::fnv1a64_mix(seed_, round) %
                                   26));
      Bytes block = encoder_.encode({{":method", "GET"},
                                     {":scheme", "https"},
                                     {":authority", options_.authority},
                                     {":path", "/bomb"},
                                     {"cookie", bomb}});
      // Chunks must fit the default SETTINGS_MAX_FRAME_SIZE (16384): the
      // point is to blow the header-byte budget, not trip frame parsing.
      constexpr std::size_t kChunk = 16000;
      std::size_t offset = 0;
      bool first = true;
      while (offset < block.size()) {
        const std::size_t len = std::min(kChunk, block.size() - offset);
        const bool last = offset + len == block.size();
        auto begin = block.begin() + static_cast<std::ptrdiff_t>(offset);
        auto end = begin + static_cast<std::ptrdiff_t>(len);
        if (first) {
          HeadersFrame headers;
          headers.stream_id = id;
          headers.end_headers = last;
          headers.header_block.assign(begin, end);
          append(Frame{std::move(headers)});
          first = false;
        } else {
          ContinuationFrame continuation;
          continuation.stream_id = id;
          continuation.end_headers = last;
          continuation.header_block.assign(begin, end);
          append(Frame{std::move(continuation)});
        }
        offset += len;
      }
      break;
    }
    case AbuseKind::kPingFlood: {
      for (std::size_t i = 0; i < options_.frames_per_burst; ++i) {
        PingFrame ping;
        ping.opaque = origin::util::fnv1a64_mix(seed_, (round << 16) | i);
        append(Frame{ping});
      }
      break;
    }
    case AbuseKind::kSettingsFlood: {
      for (std::size_t i = 0; i < options_.frames_per_burst; ++i) {
        SettingsFrame settings;
        append(Frame{settings});
      }
      break;
    }
    case AbuseKind::kSlowloris:
      break;  // trickles bytes, never frames
  }
  return wire;
}

void AbusiveClient::run_burst(std::size_t round) {
  if (closed_ || !endpoint_.open()) return;
  if (round >= options_.bursts) {
    // Budget spent. Linger before hanging up: closing immediately would
    // drop our own in-flight bytes (netsim discards deliveries to a torn-
    // down connection), and the server's shed GOAWAY needs time to land.
    network_.simulator().schedule(options_.linger, [this]() {
      if (closed_ || !endpoint_.open()) return;
      endpoint_.close("abuse: schedule complete");
    });
    return;
  }
  endpoint_.send(burst_bytes(round));
  network_.simulator().schedule(options_.burst_interval,
                                [this, round]() { run_burst(round + 1); });
}

void AbusiveClient::run_trickle(std::size_t sent) {
  if (closed_ || !endpoint_.open()) return;
  if (sent >= options_.trickle_bytes) return;  // stall forever from here on
  Bytes byte;
  byte.push_back(static_cast<std::uint8_t>(kClientPreface[sent]));
  endpoint_.send(std::move(byte));
  network_.simulator().schedule(options_.trickle_interval,
                                [this, sent]() { run_trickle(sent + 1); });
}

}  // namespace origin::h2
