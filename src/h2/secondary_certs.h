// Secondary certificate authentication (paper §6.5; modeled on
// draft-ietf-httpbis-http2-secondary-certs).
//
// Instead of enlarging the primary certificate's SAN, a server can prove
// authority for additional origins by sending further certificates on
// stream 0 after the handshake. The paper weighs this against SAN
// additions: each secondary certificate ships a complete certificate —
// key, signature, and all — so for the handful of names most sites need
// (§4.3: <=10 for 92% of sites) SAN additions are strictly smaller, while
// certificate frames buy operational flexibility for very large or
// frequently-changing origin sets.
//
// Wire format of our CERTIFICATE frame (type 0xd, stream 0):
//   serial(8) issuer_key_id(8) public_key_id(8) signature(8)
//   not_before(8) not_after(8)
//   cn_len(2) cn  san_count(2) { san_len(2) san }*
#pragma once

#include <cstdint>

#include "tls/certificate.h"
#include "util/bytes.h"
#include "util/result.h"

namespace origin::h2 {

inline constexpr std::uint8_t kCertificateFrameType = 0xd;

// Serializes `cert` as a CERTIFICATE frame payload.
origin::util::Bytes encode_certificate_payload(const tls::Certificate& cert);

// Parses a CERTIFICATE frame payload back into a certificate.
[[nodiscard]] origin::util::Result<tls::Certificate> decode_certificate_payload(
    std::span<const std::uint8_t> payload);

// Wire size of the full frame (9-octet header + payload) — the quantity
// the §6.5 comparison is about.
std::size_t certificate_frame_wire_size(const tls::Certificate& cert);

}  // namespace origin::h2
