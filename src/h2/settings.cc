#include "h2/settings.h"

namespace origin::h2 {

origin::util::Status Settings::apply(
    const std::vector<std::pair<SettingId, std::uint32_t>>& changes) {
  for (const auto& [id, value] : changes) {
    switch (id) {
      case SettingId::kHeaderTableSize:
        header_table_size = value;
        break;
      case SettingId::kEnablePush:
        if (value > 1) {
          return origin::util::make_error("h2: ENABLE_PUSH must be 0 or 1");
        }
        enable_push = value == 1;
        break;
      case SettingId::kMaxConcurrentStreams:
        max_concurrent_streams = value;
        break;
      case SettingId::kInitialWindowSize:
        if (value > 0x7fffffffu) {
          return origin::util::make_error(
              "h2: INITIAL_WINDOW_SIZE above 2^31-1 (FLOW_CONTROL_ERROR)");
        }
        initial_window_size = value;
        break;
      case SettingId::kMaxFrameSize:
        if (value < 16384 || value > 16777215) {
          return origin::util::make_error(
              "h2: MAX_FRAME_SIZE outside [2^14, 2^24-1]");
        }
        max_frame_size = value;
        break;
      case SettingId::kMaxHeaderListSize:
        max_header_list_size = value;
        break;
      default:
        // Unknown settings MUST be ignored (RFC 9113 §6.5.2).
        break;
    }
  }
  return {};
}

std::vector<std::pair<SettingId, std::uint32_t>> Settings::diff_from_defaults()
    const {
  const Settings defaults;
  std::vector<std::pair<SettingId, std::uint32_t>> out;
  if (header_table_size != defaults.header_table_size) {
    out.emplace_back(SettingId::kHeaderTableSize, header_table_size);
  }
  if (enable_push != defaults.enable_push) {
    out.emplace_back(SettingId::kEnablePush, enable_push ? 1 : 0);
  }
  if (max_concurrent_streams != defaults.max_concurrent_streams) {
    out.emplace_back(SettingId::kMaxConcurrentStreams, max_concurrent_streams);
  }
  if (initial_window_size != defaults.initial_window_size) {
    out.emplace_back(SettingId::kInitialWindowSize, initial_window_size);
  }
  if (max_frame_size != defaults.max_frame_size) {
    out.emplace_back(SettingId::kMaxFrameSize, max_frame_size);
  }
  if (max_header_list_size != defaults.max_header_list_size) {
    out.emplace_back(SettingId::kMaxHeaderListSize, max_header_list_size);
  }
  return out;
}

}  // namespace origin::h2
