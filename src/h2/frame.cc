#include "h2/frame.h"

#include <limits>

#include "util/hot_path.h"

namespace origin::h2 {

namespace {

using origin::util::ByteReader;
using origin::util::Bytes;
using origin::util::ByteWriter;
using origin::util::make_error;
using origin::util::Result;

constexpr std::uint32_t kStreamIdMask = 0x7fffffffu;

void write_header(ByteWriter& w, std::size_t length, FrameType type,
                  std::uint8_t flags, std::uint32_t stream_id) {
  w.u24(static_cast<std::uint32_t>(length));
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(flags);
  w.u32(stream_id & kStreamIdMask);
}

Result<Frame> parse_payload(std::uint8_t type_byte, std::uint8_t flags,
                            std::uint32_t stream_id,
                            std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  switch (static_cast<FrameType>(type_byte)) {
    case FrameType::kData: {
      DataFrame f;
      f.stream_id = stream_id;
      f.end_stream = flags & kFlagEndStream;
      if (stream_id == 0) return make_error("h2: DATA on stream 0");
      std::size_t data_len = payload.size();
      if (flags & kFlagPadded) {
        f.pad_length = r.u8();
        if (!r.ok() || f.pad_length + 1u > payload.size()) {
          return make_error("h2: DATA padding exceeds payload");
        }
        data_len = payload.size() - 1 - f.pad_length;
      }
      auto data = r.raw(data_len);
      f.data.assign(data.begin(), data.end());
      return Frame{std::move(f)};
    }
    case FrameType::kHeaders: {
      HeadersFrame f;
      f.stream_id = stream_id;
      f.end_stream = flags & kFlagEndStream;
      f.end_headers = flags & kFlagEndHeaders;
      if (stream_id == 0) return make_error("h2: HEADERS on stream 0");
      std::size_t block_len = payload.size();
      std::uint8_t pad = 0;
      if (flags & kFlagPadded) {
        pad = r.u8();
        block_len -= 1;
      }
      if (flags & kFlagPriority) {
        r.u32();  // dependency (ignored: RFC 9113 deprecates priority signal)
        r.u8();   // weight
        block_len -= 5;
      }
      if (!r.ok() || block_len > payload.size() || pad > block_len) {
        return make_error("h2: HEADERS padding/priority exceeds payload");
      }
      auto block = r.raw(block_len - pad);
      if (!r.ok()) return make_error("h2: HEADERS truncated");
      f.header_block.assign(block.begin(), block.end());
      return Frame{std::move(f)};
    }
    case FrameType::kPriority: {
      if (payload.size() != 5) return make_error("h2: PRIORITY size != 5");
      if (stream_id == 0) return make_error("h2: PRIORITY on stream 0");
      PriorityFrame f;
      f.stream_id = stream_id;
      std::uint32_t dep = r.u32();
      f.exclusive = dep & ~kStreamIdMask;
      f.dependency = dep & kStreamIdMask;
      f.weight = static_cast<std::uint8_t>(r.u8() + 1);
      return Frame{f};
    }
    case FrameType::kRstStream: {
      if (payload.size() != 4) return make_error("h2: RST_STREAM size != 4");
      if (stream_id == 0) return make_error("h2: RST_STREAM on stream 0");
      RstStreamFrame f;
      f.stream_id = stream_id;
      f.error = static_cast<ErrorCode>(r.u32());
      return Frame{f};
    }
    case FrameType::kSettings: {
      if (stream_id != 0) return make_error("h2: SETTINGS on nonzero stream");
      SettingsFrame f;
      f.ack = flags & kFlagAck;
      if (f.ack && !payload.empty()) {
        return make_error("h2: SETTINGS ack with payload");
      }
      if (payload.size() % 6 != 0) {
        return make_error("h2: SETTINGS size not multiple of 6");
      }
      while (r.remaining() >= 6) {
        auto id = static_cast<SettingId>(r.u16());
        std::uint32_t value = r.u32();
        f.settings.emplace_back(id, value);
      }
      return Frame{std::move(f)};
    }
    case FrameType::kPushPromise: {
      if (stream_id == 0) return make_error("h2: PUSH_PROMISE on stream 0");
      PushPromiseFrame f;
      f.stream_id = stream_id;
      f.end_headers = flags & kFlagEndHeaders;
      std::size_t block_len = payload.size();
      std::uint8_t pad = 0;
      if (flags & kFlagPadded) {
        pad = r.u8();
        block_len -= 1;
      }
      f.promised_stream_id = r.u32() & kStreamIdMask;
      block_len -= 4;
      if (!r.ok() || block_len > payload.size() || pad > block_len) {
        return make_error("h2: PUSH_PROMISE malformed");
      }
      auto block = r.raw(block_len - pad);
      f.header_block.assign(block.begin(), block.end());
      return Frame{std::move(f)};
    }
    case FrameType::kPing: {
      if (payload.size() != 8) return make_error("h2: PING size != 8");
      if (stream_id != 0) return make_error("h2: PING on nonzero stream");
      PingFrame f;
      f.ack = flags & kFlagAck;
      f.opaque = r.u64();
      return Frame{f};
    }
    case FrameType::kGoAway: {
      if (stream_id != 0) return make_error("h2: GOAWAY on nonzero stream");
      if (payload.size() < 8) return make_error("h2: GOAWAY too short");
      GoAwayFrame f;
      f.last_stream_id = r.u32() & kStreamIdMask;
      f.error = static_cast<ErrorCode>(r.u32());
      f.debug_data = r.str(r.remaining());
      return Frame{std::move(f)};
    }
    case FrameType::kWindowUpdate: {
      if (payload.size() != 4) return make_error("h2: WINDOW_UPDATE size != 4");
      WindowUpdateFrame f;
      f.stream_id = stream_id;
      f.increment = r.u32() & kStreamIdMask;
      if (f.increment == 0) {
        return make_error("h2: WINDOW_UPDATE increment 0");
      }
      return Frame{f};
    }
    case FrameType::kContinuation: {
      if (stream_id == 0) return make_error("h2: CONTINUATION on stream 0");
      ContinuationFrame f;
      f.stream_id = stream_id;
      f.end_headers = flags & kFlagEndHeaders;
      f.header_block.assign(payload.begin(), payload.end());
      return Frame{std::move(f)};
    }
    case FrameType::kAltSvc: {
      // RFC 7838 §4: Origin-Len (2), Origin, Alt-Svc-Field-Value.
      AltSvcFrame f;
      f.stream_id = stream_id;
      std::uint16_t origin_len = r.u16();
      f.origin = r.str(origin_len);
      if (!r.ok()) return make_error("h2: ALTSVC truncated origin");
      f.field_value = r.str(r.remaining());
      // §4: ALTSVC on stream 0 with empty origin, or nonzero stream with
      // non-empty origin, is invalid and MUST be ignored — we surface it as
      // a frame and let the connection layer decide.
      return Frame{std::move(f)};
    }
    case FrameType::kOrigin: {
      // RFC 8336 §2.1: only valid on stream 0. On any other stream the
      // frame MUST be ignored — surface it as an opaque unknown frame so
      // the connection's ignore path handles it.
      if (stream_id != 0) {
        UnknownFrame f;
        f.type = type_byte;
        f.flags = flags;
        f.stream_id = stream_id;
        f.payload.assign(payload.begin(), payload.end());
        return Frame{std::move(f)};
      }
      OriginFrame f;
      while (r.remaining() >= 2) {
        std::uint16_t len = r.u16();
        // analyze:allow(hot-transitive): ORIGIN is once-per-connection
        // control traffic, not per-request serving work
        std::string entry = r.str(len);
        if (!r.ok()) return make_error("h2: ORIGIN truncated entry");
        f.origins.push_back(std::move(entry));
      }
      if (r.remaining() != 0) return make_error("h2: ORIGIN trailing bytes");
      return Frame{std::move(f)};
    }
    default: {
      UnknownFrame f;
      f.type = type_byte;
      f.flags = flags;
      f.stream_id = stream_id;
      f.payload.assign(payload.begin(), payload.end());
      return Frame{std::move(f)};
    }
  }
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kPriority: return "PRIORITY";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPushPromise: return "PUSH_PROMISE";
    case FrameType::kPing: return "PING";
    case FrameType::kGoAway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kContinuation: return "CONTINUATION";
    case FrameType::kAltSvc: return "ALTSVC";
    case FrameType::kOrigin: return "ORIGIN";
  }
  return "UNKNOWN";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNoError: return "NO_ERROR";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kInternalError: return "INTERNAL_ERROR";
    case ErrorCode::kFlowControlError: return "FLOW_CONTROL_ERROR";
    case ErrorCode::kSettingsTimeout: return "SETTINGS_TIMEOUT";
    case ErrorCode::kStreamClosed: return "STREAM_CLOSED";
    case ErrorCode::kFrameSizeError: return "FRAME_SIZE_ERROR";
    case ErrorCode::kRefusedStream: return "REFUSED_STREAM";
    case ErrorCode::kCancel: return "CANCEL";
    case ErrorCode::kCompressionError: return "COMPRESSION_ERROR";
    case ErrorCode::kConnectError: return "CONNECT_ERROR";
    case ErrorCode::kEnhanceYourCalm: return "ENHANCE_YOUR_CALM";
    case ErrorCode::kInadequateSecurity: return "INADEQUATE_SECURITY";
    case ErrorCode::kHttp11Required: return "HTTP_1_1_REQUIRED";
  }
  return "UNKNOWN_ERROR";
}

FrameType frame_type_of(const Frame& frame) {
  return std::visit(
      [](const auto& f) -> FrameType {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, DataFrame>) return FrameType::kData;
        else if constexpr (std::is_same_v<T, HeadersFrame>) return FrameType::kHeaders;
        else if constexpr (std::is_same_v<T, PriorityFrame>) return FrameType::kPriority;
        else if constexpr (std::is_same_v<T, RstStreamFrame>) return FrameType::kRstStream;
        else if constexpr (std::is_same_v<T, SettingsFrame>) return FrameType::kSettings;
        else if constexpr (std::is_same_v<T, PushPromiseFrame>) return FrameType::kPushPromise;
        else if constexpr (std::is_same_v<T, PingFrame>) return FrameType::kPing;
        else if constexpr (std::is_same_v<T, GoAwayFrame>) return FrameType::kGoAway;
        else if constexpr (std::is_same_v<T, WindowUpdateFrame>) return FrameType::kWindowUpdate;
        else if constexpr (std::is_same_v<T, ContinuationFrame>) return FrameType::kContinuation;
        else if constexpr (std::is_same_v<T, AltSvcFrame>) return FrameType::kAltSvc;
        else if constexpr (std::is_same_v<T, OriginFrame>) return FrameType::kOrigin;
        else return static_cast<FrameType>(f.type);
      },
      frame);
}

std::uint32_t stream_id_of(const Frame& frame) {
  return std::visit(
      [](const auto& f) -> std::uint32_t {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, SettingsFrame> ||
                      std::is_same_v<T, PingFrame> ||
                      std::is_same_v<T, GoAwayFrame> ||
                      std::is_same_v<T, OriginFrame>) {
          return 0;
        } else {
          return f.stream_id;
        }
      },
      frame);
}

ORIGIN_HOT Bytes serialize_frame(const Frame& frame) {
  ByteWriter w(32);
  std::visit(
      [&w](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, DataFrame>) {
          std::uint8_t flags = 0;
          if (f.end_stream) flags |= kFlagEndStream;
          std::size_t length = f.data.size();
          if (f.pad_length > 0) {
            flags |= kFlagPadded;
            length += 1 + f.pad_length;
          }
          write_header(w, length, FrameType::kData, flags, f.stream_id);
          if (f.pad_length > 0) w.u8(f.pad_length);
          w.raw(f.data);
          for (int i = 0; i < f.pad_length; ++i) w.u8(0);
        } else if constexpr (std::is_same_v<T, HeadersFrame>) {
          std::uint8_t flags = 0;
          if (f.end_stream) flags |= kFlagEndStream;
          if (f.end_headers) flags |= kFlagEndHeaders;
          write_header(w, f.header_block.size(), FrameType::kHeaders, flags,
                       f.stream_id);
          w.raw(f.header_block);
        } else if constexpr (std::is_same_v<T, PriorityFrame>) {
          write_header(w, 5, FrameType::kPriority, 0, f.stream_id);
          w.u32(f.dependency | (f.exclusive ? 0x80000000u : 0));
          w.u8(static_cast<std::uint8_t>(f.weight - 1));
        } else if constexpr (std::is_same_v<T, RstStreamFrame>) {
          write_header(w, 4, FrameType::kRstStream, 0, f.stream_id);
          w.u32(static_cast<std::uint32_t>(f.error));
        } else if constexpr (std::is_same_v<T, SettingsFrame>) {
          write_header(w, f.settings.size() * 6, FrameType::kSettings,
                       f.ack ? kFlagAck : 0, 0);
          for (const auto& [id, value] : f.settings) {
            w.u16(static_cast<std::uint16_t>(id));
            w.u32(value);
          }
        } else if constexpr (std::is_same_v<T, PushPromiseFrame>) {
          write_header(w, 4 + f.header_block.size(), FrameType::kPushPromise,
                       f.end_headers ? kFlagEndHeaders : 0, f.stream_id);
          w.u32(f.promised_stream_id);
          w.raw(f.header_block);
        } else if constexpr (std::is_same_v<T, PingFrame>) {
          write_header(w, 8, FrameType::kPing, f.ack ? kFlagAck : 0, 0);
          w.u64(f.opaque);
        } else if constexpr (std::is_same_v<T, GoAwayFrame>) {
          write_header(w, 8 + f.debug_data.size(), FrameType::kGoAway, 0, 0);
          w.u32(f.last_stream_id);
          w.u32(static_cast<std::uint32_t>(f.error));
          w.raw(f.debug_data);
        } else if constexpr (std::is_same_v<T, WindowUpdateFrame>) {
          write_header(w, 4, FrameType::kWindowUpdate, 0, f.stream_id);
          w.u32(f.increment);
        } else if constexpr (std::is_same_v<T, ContinuationFrame>) {
          write_header(w, f.header_block.size(), FrameType::kContinuation,
                       f.end_headers ? kFlagEndHeaders : 0, f.stream_id);
          w.raw(f.header_block);
        } else if constexpr (std::is_same_v<T, AltSvcFrame>) {
          write_header(w, 2 + f.origin.size() + f.field_value.size(),
                       FrameType::kAltSvc, 0, f.stream_id);
          w.u16(static_cast<std::uint16_t>(f.origin.size()));
          w.raw(f.origin);
          w.raw(f.field_value);
        } else if constexpr (std::is_same_v<T, OriginFrame>) {
          std::size_t length = 0;
          for (const auto& o : f.origins) length += 2 + o.size();
          write_header(w, length, FrameType::kOrigin, 0, 0);
          for (const auto& o : f.origins) {
            w.u16(static_cast<std::uint16_t>(o.size()));
            w.raw(o);
          }
        } else {  // UnknownFrame
          write_header(w, f.payload.size(), static_cast<FrameType>(f.type),
                       f.flags, f.stream_id);
          w.raw(f.payload);
        }
      },
      frame);
  return w.take();
}

Result<std::vector<Frame>> FrameParser::feed(
    std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  std::vector<Frame> frames;
  std::size_t consumed = 0;
  while (buffer_.size() - consumed >= 9) {
    std::span<const std::uint8_t> view(buffer_.data() + consumed,
                                       buffer_.size() - consumed);
    ByteReader header(view.subspan(0, 9));
    std::uint32_t length = header.u24();
    std::uint8_t type = header.u8();
    std::uint8_t flags = header.u8();
    std::uint32_t stream_id = header.u32() & kStreamIdMask;
    if (length > max_frame_size_) {
      buffer_.clear();
      return make_error("h2: frame exceeds SETTINGS_MAX_FRAME_SIZE");
    }
    if (view.size() < 9u + length) break;  // incomplete frame, wait for more
    auto frame = parse_payload(type, flags, stream_id, view.subspan(9, length));
    if (!frame.ok()) {
      buffer_.clear();
      return frame.error();
    }
    // analyze:allow(hot-transitive): per-feed frame batch is a few
    // entries and returned to the caller; reserving would need a pre-scan
    frames.push_back(std::move(frame).value());
    consumed += 9u + length;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
  return frames;
}

}  // namespace origin::h2
