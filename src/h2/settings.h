// Connection settings (RFC 9113 §6.5) with validation rules.
#pragma once

#include <cstdint>
#include <vector>

#include "h2/frame.h"
#include "util/result.h"

namespace origin::h2 {

struct Settings {
  std::uint32_t header_table_size = 4096;
  bool enable_push = true;
  std::uint32_t max_concurrent_streams = 0xffffffffu;  // unlimited by default
  std::uint32_t initial_window_size = 65535;
  std::uint32_t max_frame_size = 16384;
  std::uint32_t max_header_list_size = 0xffffffffu;

  // Applies received settings in order; invalid values are connection
  // errors (RFC 9113 §6.5.2).
  [[nodiscard]] origin::util::Status apply(
      const std::vector<std::pair<SettingId, std::uint32_t>>& changes);

  // Serializes the non-default values for the initial SETTINGS frame.
  std::vector<std::pair<SettingId, std::uint32_t>> diff_from_defaults() const;
};

}  // namespace origin::h2
