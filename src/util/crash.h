// Deterministic crash injection for the durability layer (DESIGN.md §15).
//
// The storage pipeline seeds named crash points through its commit
// boundaries (shard load/encode, the temp-write → rename window inside
// util/durable_file, the manifest append, per-shard analyze). A point does
// nothing until armed; once armed, the k-th hit of the named point fires.
//
// Two firing modes:
//   * hard (the default, and the only mode ORIGIN_CRASH_AT selects): the
//     process dies on the spot via _exit(kCrashExitCode) — no destructors,
//     no stream flushes, exactly the torn state a power cut leaves behind.
//     The kill–resume supervisor (bench/bench_ablation_crash.cc) drives
//     child processes this way.
//   * soft (test-only, armed through arm()): crash_point() returns true
//     once and disarms; the caller must abandon the run by propagating an
//     error, leaving partial on-disk state for a resume to recover. This is
//     how the in-process resume matrix kills a run at every boundary
//     without forking per parameter.
//
// Environment: ORIGIN_CRASH_AT=<point>:<k> arms a hard crash at the k-th
// hit of <point> (k >= 1, counted process-wide). Parsed once, lazily.
//
// Hit counting is atomic but points are expected to sit at serial pipeline
// boundaries, so "k-th hit" is deterministic for a fixed configuration.
#pragma once

#include <cstdint>
#include <string_view>

namespace origin::util::crash {

// Exit status of a hard injected crash; the supervisor treats any other
// child failure as a real bug, not a scheduled kill.
inline constexpr int kCrashExitCode = 113;

// Arms a crash: the `count`-th hit of `point` fires (count >= 1). Soft mode
// makes crash_point() return true instead of killing the process.
void arm(std::string_view point, std::uint64_t count, bool soft);

// Disarms any armed crash and resets hit counters.
void disarm();

// True while a crash is armed (either mode).
bool armed();

// Marks one named pipeline boundary. Returns true exactly when a soft
// crash fires here — the caller must then abandon the run (return an
// error up the stack) without completing the operation. Hard crashes never
// return. Unarmed or non-matching hits return false and cost two atomic
// loads.
[[nodiscard]] bool crash_point(const char* point);

}  // namespace origin::util::crash
