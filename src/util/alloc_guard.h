// Counting-allocator hook: the runtime ground truth behind ORIGIN_HOT.
//
// Linking alloc_guard.cc into a binary replaces the global operator
// new/delete family with thin wrappers over malloc/free that bump
// per-thread counters. AllocGuard snapshots the calling thread's counters
// at construction; allocations()/bytes() report the delta since. Because
// the object files live in repro_util but the replacement operators are
// only pulled in when a translation unit references AllocGuard (or calls
// util::alloc_hook_touch()), binaries that never use the guard keep the
// stock allocator.
//
// The counters are thread-local: a guard only observes allocations made on
// its own thread. Measure batch APIs at threads == 1 (the serial inline
// path), where every allocation lands on the caller.
//
// This is what turns "~0 allocs/page warm" from a bench note into a
// failing test (DESIGN.md §11): warm the scratch arenas with one batch,
// arm a guard, replay again, and assert the marginal count per page is
// zero.
#pragma once

#include <cstdint>

namespace origin::util {

struct AllocCounts {
  std::uint64_t allocations = 0;  // operator new / new[] calls
  std::uint64_t bytes = 0;        // sum of requested sizes
};

// Counters for the calling thread since thread start.
AllocCounts thread_alloc_counts();

// Forces the linker to pull in the replacement operators (any reference
// into alloc_guard.cc does); returns true so callers can assert on it.
bool alloc_hook_touch();

class AllocGuard {
 public:
  AllocGuard() : start_(thread_alloc_counts()) {}

  // Allocations on this thread since the guard was constructed.
  std::uint64_t allocations() const {
    return thread_alloc_counts().allocations - start_.allocations;
  }
  std::uint64_t bytes() const {
    return thread_alloc_counts().bytes - start_.bytes;
  }

  // Re-baselines the guard to "now".
  void reset() { start_ = thread_alloc_counts(); }

 private:
  AllocCounts start_;
};

}  // namespace origin::util
