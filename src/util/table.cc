#include "util/table.h"

#include <algorithm>
#include <cctype>

namespace origin::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != ',' &&
        c != '-' && c != '+' && c != '%' && c != '=' && c != 'e') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  // Right-align a column if every non-empty cell looks numeric.
  std::vector<bool> right(headers_.size(), true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (const auto& row : rows_) {
      if (!row[c].empty() && !looks_numeric(row[c])) {
        right[c] = false;
        break;
      }
    }
  }

  std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out += pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      std::string fill(widths[c] - cell.size(), ' ');
      out += (right[c] ? fill + cell : cell + fill);
      if (c + 1 < cells.size()) out += "  ";
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_);
  out += pad;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out += std::string(widths[c], '-');
    if (c + 1 < widths.size()) out += "  ";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace origin::util
