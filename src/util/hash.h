// Default hash functors for the open-addressing containers in
// util/flat_map.h. All hashes are deterministic across processes and
// platforms (FNV-1a / splitmix64, no per-run seeding): container iteration
// order is a pure function of the insertion sequence, which the pipeline's
// bit-identical-output contract (DESIGN.md §8, §10) depends on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "util/fnv.h"

namespace origin::util {

// splitmix64 finalizer. Power-of-two-masked tables index with the low bits
// only, so integer keys must have every input bit diffused into them.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Primary template: specialize for domain types (see dns/record.h for
// dns::IpAddress), or rely on the built-ins below for integers, enums,
// strings, and pairs.
template <typename T, typename Enable = void>
struct Hash;

template <typename T>
struct Hash<T, std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>>> {
  constexpr std::uint64_t operator()(T value) const {
    return mix64(static_cast<std::uint64_t>(value));
  }
};

template <>
struct Hash<std::string_view, void> {
  using is_transparent = void;
  constexpr std::uint64_t operator()(std::string_view s) const {
    return fnv1a64(s);
  }
};

// Accepts string_view so string-keyed containers support heterogeneous
// lookup without constructing a temporary std::string.
template <>
struct Hash<std::string, void> {
  using is_transparent = void;
  constexpr std::uint64_t operator()(std::string_view s) const {
    return fnv1a64(s);
  }
};

template <typename A, typename B>
struct Hash<std::pair<A, B>, void> {
  constexpr std::uint64_t operator()(const std::pair<A, B>& p) const {
    return fnv1a64_mix(Hash<A>{}(p.first), Hash<B>{}(p.second));
  }
};

}  // namespace origin::util
