// Default hash functors for the open-addressing containers in
// util/flat_map.h. All hashes are deterministic across processes and
// platforms (FNV-1a / splitmix64, no per-run seeding): container iteration
// order is a pure function of the insertion sequence, which the pipeline's
// bit-identical-output contract (DESIGN.md §8, §10) depends on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "util/fnv.h"

namespace origin::util {

// splitmix64 finalizer. Power-of-two-masked tables index with the low bits
// only, so integer keys must have every input bit diffused into them.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Primary template: specialize for domain types (see dns/record.h for
// dns::IpAddress), or rely on the built-ins below for integers, enums,
// strings, and pairs.
template <typename T, typename Enable = void>
struct Hash;

template <typename T>
struct Hash<T, std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>>> {
  constexpr std::uint64_t operator()(T value) const {
    return mix64(static_cast<std::uint64_t>(value));
  }
};

template <>
struct Hash<std::string_view, void> {
  using is_transparent = void;
  constexpr std::uint64_t operator()(std::string_view s) const {
    return fnv1a64(s);
  }
};

// Accepts string_view so string-keyed containers support heterogeneous
// lookup without constructing a temporary std::string.
template <>
struct Hash<std::string, void> {
  using is_transparent = void;
  constexpr std::uint64_t operator()(std::string_view s) const {
    return fnv1a64(s);
  }
};

template <typename A, typename B>
struct Hash<std::pair<A, B>, void> {
  constexpr std::uint64_t operator()(const std::pair<A, B>& p) const {
    return fnv1a64_mix(Hash<A>{}(p.first), Hash<B>{}(p.second));
  }
};

// --- CRC-64/XZ (reflected ECMA-182) ---------------------------------------
//
// The integrity checksum behind the durable storage layer (DESIGN.md §15):
// OCS1 shard footers, OCM1 manifest records, and the per-shard content
// digests in BENCH_corpus.json. Unlike the FNV/splitmix hashes above it is
// a true CRC — any single-bit flip (and any burst error up to 64 bits) in a
// checked span is guaranteed to change the value, which is the property the
// torn/corrupt-shard detection relies on. check("123456789") ==
// 0x995DC9BBDF1939FA. Chaining: crc64(b, crc64(a)) == crc64(a + b).

namespace detail {

struct Crc64Table {
  std::uint64_t t[256];
  constexpr Crc64Table() : t{} {
    constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;  // reflected
    for (int i = 0; i < 256; ++i) {
      std::uint64_t crc = static_cast<std::uint64_t>(i);
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[i] = crc;
    }
  }
};
inline constexpr Crc64Table kCrc64Table{};

}  // namespace detail

constexpr std::uint64_t crc64_update(std::uint64_t crc, std::uint8_t byte) {
  return detail::kCrc64Table.t[(crc ^ byte) & 0xff] ^ (crc >> 8);
}

inline std::uint64_t crc64(std::span<const std::uint8_t> data,
                           std::uint64_t seed = 0) {
  std::uint64_t crc = ~seed;
  for (const std::uint8_t byte : data) crc = crc64_update(crc, byte);
  return ~crc;
}

constexpr std::uint64_t crc64(std::string_view data, std::uint64_t seed = 0) {
  std::uint64_t crc = ~seed;
  for (const char c : data) {
    crc = crc64_update(crc, static_cast<std::uint8_t>(c));
  }
  return ~crc;
}

static_assert(crc64("123456789") == 0x995DC9BBDF1939FAULL,
              "CRC-64/XZ check vector");

}  // namespace origin::util
