// Crash-consistent file IO for the storage layer (DESIGN.md §15).
//
// Every artifact the pipeline persists (OCS1 shard snapshots, the OCM1 run
// manifest) goes through this module — enforced by the tools/lint
// `durable-write-only` rule, which forbids raw std::ofstream/fopen writes
// in src/dataset. The discipline:
//
//   durable_write_file: write to `<path>.tmp`, fsync the temp, rename(2)
//   onto the final path, fsync the parent directory. rename is the commit
//   point — a crash at any instant leaves either the old file (or nothing)
//   or the complete new file, never a torn final file. Torn *temp* files
//   are possible and expected; sweep_stale_temps() deletes them at startup
//   and the resume logic never reads a `.tmp`.
//
//   DurableLog: append-only journal handle. Each append is a single
//   write(2) followed by fsync, so a crash can only tear the final record —
//   which the manifest reader detects by per-record CRC and drops.
//
// Crash points seeded here (util/crash.h): `durable.mid_write` (half the
// payload written, temp torn), `durable.pre_rename` (temp complete and
// synced, commit not yet done), `durable.post_rename` (committed, caller's
// follow-up bookkeeping not yet run).
//
// All functions are total: failures come back as Status/Result, never
// exceptions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace origin::util {

// Suffix of in-flight temp files; anything ending in this in a spill
// directory is garbage from a crashed run.
inline constexpr std::string_view kDurableTempSuffix = ".tmp";

// Atomically replaces `path` with `bytes` (write-temp → fsync → rename →
// fsync-dir). Creates parent directories as needed.
[[nodiscard]] Status durable_write_file(const std::string& path,
                                        std::span<const std::uint8_t> bytes);
[[nodiscard]] Status durable_write_file(const std::string& path,
                                        std::string_view text);

// Whole-file read (total; missing file is an error, not a crash).
[[nodiscard]] Result<Bytes> read_file(const std::string& path);

// Removes one file; an error names the path.
[[nodiscard]] Status remove_file(const std::string& path);

// Deletes every `*.tmp` directly inside `dir` (startup hygiene after a
// crashed run). Returns the number of temp files removed; a missing
// directory is zero, not an error.
[[nodiscard]] Result<std::size_t> sweep_stale_temps(const std::string& dir);

// Append-only journal with per-append durability. Not thread-safe: owned
// by the serial shard-commit loop.
class DurableLog {
 public:
  DurableLog() = default;
  DurableLog(DurableLog&& other) noexcept;
  DurableLog& operator=(DurableLog&& other) noexcept;
  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;
  ~DurableLog();

  // Opens `path` for appending, creating it (and parents) if absent.
  [[nodiscard]] static Result<DurableLog> open(const std::string& path);

  // Appends `bytes` and fsyncs. A crash mid-append tears at most this one
  // record off the tail; nothing previously synced is at risk.
  [[nodiscard]] Status append(std::span<const std::uint8_t> bytes);

  void close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace origin::util
