#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

namespace origin::util {

namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_whitespace();
    if (pos_ != text_.size()) {
      return make_error("json: trailing characters at offset " +
                        std::to_string(pos_));
    }
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) return make_error("json: unexpected end");
    if (depth_ >= Json::kMaxParseDepth) {
      return make_error("json: nesting exceeds depth limit");
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      return Json(std::move(s).value());
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return parse_number();
  }

  Result<Json> parse_object() {
    ++pos_;  // '{'
    DepthGuard guard(depth_);
    Json::Object object;
    skip_whitespace();
    if (consume('}')) return Json(std::move(object));
    for (;;) {
      skip_whitespace();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      if (!consume(':')) return make_error("json: expected ':'");
      auto value = parse_value();
      if (!value.ok()) return value;
      object.emplace(std::move(key).value(), std::move(value).value());
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(object));
      return make_error("json: expected ',' or '}'");
    }
  }

  Result<Json> parse_array() {
    ++pos_;  // '['
    DepthGuard guard(depth_);
    Json::Array array;
    skip_whitespace();
    if (consume(']')) return Json(std::move(array));
    for (;;) {
      auto value = parse_value();
      if (!value.ok()) return value;
      array.push_back(std::move(value).value());
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(array));
      return make_error("json: expected ',' or ']'");
    }
  }

  Result<std::string> parse_string() {
    skip_whitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return make_error("json: expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return make_error("json: bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return make_error("json: bad \\u escape");
          }
          // BMP-only UTF-8 encoding (HAR content here is ASCII anyway).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return make_error("json: unknown escape");
      }
    }
    return make_error("json: unterminated string");
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return make_error("json: invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    if (is_double) {
      return Json(std::strtod(token.c_str(), nullptr));
    }
    return Json(static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
  }

  struct DepthGuard {
    explicit DepthGuard(int& depth) : depth(depth) { ++depth; }
    ~DepthGuard() { --depth; }
    int& depth;
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::int64_t clamp_to_int64(double d) {
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::int64_t>::max());
  constexpr double kMin =
      static_cast<double>(std::numeric_limits<std::int64_t>::min());
  if (std::isnan(d)) return 0;
  if (d >= kMax) return std::numeric_limits<std::int64_t>::max();
  if (d <= kMin) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(d);
}

std::int64_t Json::as_int() const {
  if (const auto* d = std::get_if<double>(&value_)) {
    return clamp_to_int64(*d);
  }
  return std::get<std::int64_t>(value_);
}

const Json& Json::operator[](const std::string& key) const {
  if (!is_object()) return null_json();
  auto it = as_object().find(key);
  return it == as_object().end() ? null_json() : it->second;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.15g", *d);
      out += buf;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (is_string()) {
    escape_into(out, as_string());
  } else if (is_array()) {
    const auto& array = as_array();
    out.push_back('[');
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(depth + 1);
      array[i].dump_to(out, indent, depth + 1);
    }
    if (!array.empty()) newline(depth);
    out.push_back(']');
  } else {
    const auto& object = as_object();
    out.push_back('{');
    std::size_t i = 0;
    for (const auto& [key, value] : object) {
      if (i++ > 0) out.push_back(',');
      newline(depth + 1);
      escape_into(out, key);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      value.dump_to(out, indent, depth + 1);
    }
    if (!object.empty()) newline(depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace origin::util
