// Append-only, thread-safe string interner: string_view -> uint32 SymbolId.
//
// This is the symbol table behind the interned-ID hot path (DESIGN.md §10).
// The pipeline compares coalescing-group keys and hostnames millions of
// times per corpus replay; interning turns each comparison from a heap
// string compare into an integer compare, the same move HPACK's
// static/dynamic table indexing makes on the wire (RFC 7541).
//
// Concurrency contract:
//   * intern() is serialized by a mutex and may be called from any thread;
//   * lookup(), name(), and size() are lock-free and safe concurrently
//     with intern(): the probe table and the id->view directory are
//     published with release stores and read with acquire loads, and
//     superseded tables are retired (not freed) until destruction, so a
//     reader holding a stale snapshot only ever sees a subset;
//   * IDs are assigned sequentially in intern() call order. Deterministic
//     outputs at any thread count therefore require the PR 2 discipline:
//     intern everything in a serial prepass (construction, batch-API entry)
//     and keep the parallel region to lookups of already-present symbols
//     (which intern() also satisfies without taking the insert path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace origin::util {

using SymbolId = std::uint32_t;
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

class Interner {
 public:
  Interner();
  ~Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  // Returns the id for `name`, inserting it on first sight. The returned
  // string_view from name() stays valid for the interner's lifetime.
  SymbolId intern(std::string_view name) ORIGIN_EXCLUDES(mu_);

  // Lock-free; kInvalidSymbol if the string has never been interned.
  SymbolId lookup(std::string_view name) const;

  // Lock-free; `id` must come from this interner.
  std::string_view name(SymbolId id) const;

  std::size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  // Probe table slot word: (hash's upper 32 bits) << 32 | (id + 1).
  // 0 means empty; id + 1 keeps the word nonzero even for fingerprint 0.
  struct Table {
    std::size_t mask = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  // id -> string_view directory: fixed-size chunks behind a growable
  // pointer array, so already-published views never move.
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  struct Chunk {
    std::string_view views[kChunkSize];
  };
  struct Directory {
    std::size_t capacity = 0;
    std::unique_ptr<std::atomic<Chunk*>[]> chunks;
  };

  SymbolId probe(const Table& table, std::string_view name,
                 std::uint64_t hash) const;
  void grow_table() ORIGIN_REQUIRES(mu_);
  void publish_view(SymbolId id, std::string_view view) ORIGIN_REQUIRES(mu_);

  mutable Mutex mu_;
  std::atomic<Table*> table_;
  std::atomic<Directory*> directory_;
  std::atomic<std::size_t> size_{0};

  // Owning storage. Append-only, pruned only at destruction; readers may
  // hold pointers into any generation.
  std::deque<std::string> storage_ ORIGIN_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Table>> tables_ ORIGIN_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Directory>> directories_ ORIGIN_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Chunk>> chunks_ ORIGIN_GUARDED_BY(mu_);
};

}  // namespace origin::util
