// Minimal JSON value model, writer, and parser — enough for HAR files.
//
// Supports the JSON subset HAR 1.2 uses: objects, arrays, strings (with
// escape handling), doubles/integers, booleans, null. No streaming; HAR
// files in this repo are bounded by one page load.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"

namespace origin::util {

// Saturating double → int64 conversion; the raw static_cast is UB when the
// value is out of range (fuzzed documents carry 1e308 and NaN).
std::int64_t clamp_to_int64(double d);

class Json {
 public:
  using Array = std::vector<Json>;
  // std::map keeps key order deterministic (alphabetical) for stable
  // golden-file comparisons.
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  Json(std::int64_t i) : value_(i) {}                // NOLINT
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(Array a) : value_(std::move(a)) {}            // NOLINT
  Json(Object o) : value_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_double() const {
    if (const auto* i = std::get_if<std::int64_t>(&value_)) {
      return static_cast<double>(*i);
    }
    return std::get<double>(value_);
  }
  std::int64_t as_int() const;
  const std::string& as_string() const { return std::get<std::string>(value_); }

  // Total accessors: wrong-typed or missing values yield the fallback
  // instead of throwing, so readers of externally-produced documents
  // (HAR imports) stay crash-free on arbitrary shapes.
  bool bool_or(bool fallback) const {
    return is_bool() ? as_bool() : fallback;
  }
  double double_or(double fallback) const {
    return is_number() ? as_double() : fallback;
  }
  std::int64_t int_or(std::int64_t fallback) const {
    return is_number() ? as_int() : fallback;
  }
  std::string string_or(std::string fallback) const {
    return is_string() ? as_string() : std::move(fallback);
  }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  // Object member access; returns a shared null for missing keys.
  const Json& operator[](const std::string& key) const;
  Json& operator[](const std::string& key) {
    return std::get<Object>(value_)[key];
  }
  bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }

  // Serializes compactly; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  // Rejects documents nested deeper than this (stack-overflow guard; HAR
  // files are ~4 levels deep, so the bound is generous).
  static constexpr int kMaxParseDepth = 96;

  [[nodiscard]] static Result<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array,
               Object>
      value_;
};

}  // namespace origin::util
