// Clang Thread Safety Analysis capability annotations, plus the annotated
// mutex wrappers the rest of the tree must use.
//
// The analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) is a
// *compile-time* race detector: a member declared ORIGIN_GUARDED_BY(mu_)
// can only be touched while mu_ is held, a function declared
// ORIGIN_REQUIRES(mu_) can only be called with mu_ held, and violations are
// errors on clang builds (-Wthread-safety is promoted to an error by the
// top-level CMakeLists). gcc compiles the same annotations to nothing, so
// the tree stays portable; the origin_lint thread-discipline rules enforce
// the parts that do not need the analysis (no raw std::mutex outside
// src/util/, no detach(), no volatile-as-synchronization) on every
// compiler.
//
// Discipline:
//   * Synchronize with util::Mutex + util::MutexLock, never raw std::mutex.
//   * Every member written under a mutex is annotated ORIGIN_GUARDED_BY.
//   * Functions with locking side effects carry ORIGIN_ACQUIRE / RELEASE /
//     REQUIRES / EXCLUDES so callers inherit the contract.
#pragma once

#include <mutex>

#if defined(__clang__)
#define ORIGIN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ORIGIN_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

#define ORIGIN_CAPABILITY(x) ORIGIN_THREAD_ANNOTATION_(capability(x))
#define ORIGIN_SCOPED_CAPABILITY ORIGIN_THREAD_ANNOTATION_(scoped_lockable)
#define ORIGIN_GUARDED_BY(x) ORIGIN_THREAD_ANNOTATION_(guarded_by(x))
#define ORIGIN_PT_GUARDED_BY(x) ORIGIN_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ORIGIN_REQUIRES(...) \
  ORIGIN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ORIGIN_ACQUIRE(...) \
  ORIGIN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ORIGIN_RELEASE(...) \
  ORIGIN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ORIGIN_TRY_ACQUIRE(...) \
  ORIGIN_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define ORIGIN_EXCLUDES(...) \
  ORIGIN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ORIGIN_RETURN_CAPABILITY(x) \
  ORIGIN_THREAD_ANNOTATION_(lock_returned(x))
#define ORIGIN_NO_THREAD_SAFETY_ANALYSIS \
  ORIGIN_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace origin::util {

// Annotated exclusive mutex. Thin wrapper over std::mutex: the wrapper is
// what lets the analysis track acquisition, and what the lint rule
// no-raw-std-mutex pushes every caller onto.
class ORIGIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ORIGIN_ACQUIRE() { mu_.lock(); }
  void unlock() ORIGIN_RELEASE() { mu_.unlock(); }
  bool try_lock() ORIGIN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // lint:allow(no-raw-std-mutex)
};

// RAII lock; the ONLY way code outside util/ should hold a Mutex.
class ORIGIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ORIGIN_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() ORIGIN_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace origin::util
