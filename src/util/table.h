// ASCII table renderer for the bench binaries that regenerate the paper's
// tables. Column widths auto-fit; numeric columns right-align.
#pragma once

#include <string>
#include <vector>

namespace origin::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders with a header rule and column padding. `indent` prefixes every
  // line (benches nest tables under figure titles).
  std::string render(int indent = 0) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace origin::util
