// Descriptive statistics used by the measurement/report layer: percentiles,
// CDFs sampled at fixed quantiles, and integer histograms. The paper reports
// medians, interquartile ranges, and CDF plots; these helpers back all of
// those outputs.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace origin::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double iqr() const { return p75 - p25; }
};

// Nearest-rank percentile on a copy of the data (q in [0, 100]).
double percentile(std::vector<double> values, double q);
Summary summarize(std::span<const double> values);

// A CDF sampled at each distinct data value: (value, fraction <= value).
// Suitable for plotting and for "fraction at or below x" queries.
class Cdf {
 public:
  static Cdf from(std::span<const double> values);

  // Fraction of samples <= x.
  double at(double x) const;
  // Smallest sample value v with fraction(v) >= q (q in [0,1]).
  double quantile(double q) const;
  std::size_t sample_count() const { return total_; }
  const std::vector<std::pair<double, double>>& points() const { return points_; }

  // Renders an ASCII sparkline of the CDF across [lo, hi], for bench output.
  std::string ascii(double lo, double hi, int width = 60) const;

 private:
  std::vector<std::pair<double, double>> points_;  // sorted (value, cum frac)
  std::size_t total_ = 0;
};

// Integer-keyed frequency histogram with helpers used by the SAN-size and
// connection-count tables.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);
  std::uint64_t count(std::int64_t key) const;
  std::uint64_t total() const { return total_; }
  // Keys ordered by descending count (ties broken by ascending key).
  std::vector<std::pair<std::int64_t, std::uint64_t>> by_count_desc() const;
  const std::map<std::int64_t, std::uint64_t>& cells() const { return cells_; }

 private:
  std::map<std::int64_t, std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace origin::util
