// Replacement global operator new/delete family counting every allocation
// into thread-local counters (see alloc_guard.h for the linking contract).
//
// The wrappers stay deliberately dumb: malloc/posix_memalign underneath, a
// bad_alloc throw on exhaustion, no new_handler loop. Under ASan/TSan the
// underlying malloc is the sanitizer's interceptor, so leak and race
// checking keep working through the hook; the counters themselves are
// thread-local and race-free by construction.
#include "util/alloc_guard.h"

#include <cstdlib>
#include <new>

namespace origin::util {

namespace {

thread_local AllocCounts tl_counts;

inline void count(std::size_t size) {
  ++tl_counts.allocations;
  tl_counts.bytes += size;
}

inline void* counted_alloc(std::size_t size) {
  count(size);
  // malloc(0) may return nullptr legally; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  count(size);
  void* p = nullptr;
  if (align < alignof(void*)) align = alignof(void*);
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

AllocCounts thread_alloc_counts() { return tl_counts; }

bool alloc_hook_touch() { return true; }

}  // namespace origin::util

// --- replacement operators (global scope, one definition per program) ----

void* operator new(std::size_t size) {
  return origin::util::counted_alloc(size);
}

void* operator new[](std::size_t size) {
  return origin::util::counted_alloc(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return origin::util::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return origin::util::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return origin::util::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return origin::util::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
