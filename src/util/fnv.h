// FNV-1a 64-bit hashing. Used for deterministic identifiers (simulated
// certificate signatures, connection ids) — NOT cryptographic.
#pragma once

#include <cstdint>
#include <string_view>

namespace origin::util {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a64(std::string_view data,
                                std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t fnv1a64_mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = kFnvOffset;
  for (int i = 0; i < 8; ++i) {
    h ^= (a >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  for (int i = 0; i < 8; ++i) {
    h ^= (b >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace origin::util
