#include "util/bytes.h"

namespace origin::util {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u24(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::raw(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(const void* data, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::patch_u24(std::size_t offset, std::uint32_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 16);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 2) = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u8(std::size_t offset, std::uint8_t v) {
  buf_.at(offset) = v;
}

bool ByteReader::require(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!require(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!require(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u24() {
  if (!require(3)) return 0;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]);
  pos_ += 3;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!require(4)) return 0;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return hi << 32 | lo;
}

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  if (!require(n)) return {};
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  auto s = raw(n);
  return std::string(s.begin(), s.end());
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_string(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string_view as_string_view(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return {};
  // char may alias any object type, so this view is well-defined.
  return std::string_view(reinterpret_cast<const char*>(bytes.data()),  // lint:allow(no-reinterpret-cast)
                          bytes.size());
}

}  // namespace origin::util
