// Open-addressing hash containers for the interned-ID hot path (§4 model
// replay, passive-measurement merge, corpus bookkeeping).
//
// Design points, chosen for the pipeline's workload:
//   * power-of-two capacity, linear probing, max load factor 3/4;
//   * tombstone-free: there is no erase(). Every hot-path use is
//     append-only within a phase and clear()ed between phases, which keeps
//     probe chains short without deletion markers;
//   * clear() keeps capacity, so a scratch map reused across batch
//     iterations allocates nothing in steady state (the AnalysisScratch
//     contract, DESIGN.md §10);
//   * iteration order is the table order — a pure function of the
//     insertion sequence and the deterministic util::Hash functors, i.e.
//     identical across runs and platforms, unlike std::unordered_map whose
//     order is implementation-defined. But the insertion sequence itself
//     varies with thread count, so anything feeding report or
//     serialization output must go through sorted_items()/sorted_keys()
//     (or stay on std::map — see the no-string-keyed-tree lint rule's
//     allowlist). The det-unordered-iter analyze pass enforces this.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace origin::util {

template <typename Key, typename Value, typename HashFn = Hash<Key>>
class FlatMap {
  // hash == 0 marks an empty slot; normalize_hash never returns 0.
  struct Slot {
    std::uint64_t hash = 0;
    Key key{};
    Value value{};
  };

 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  // Keeps capacity: a cleared map re-fills without allocating.
  void clear() {
    for (Slot& slot : slots_) slot.hash = 0;
    size_ = 0;
  }

  void reserve(std::size_t count) {
    std::size_t cap = kMinCapacity;
    while (count * 4 > cap * 3) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  // Heterogeneous lookup: any K hashable by HashFn and ==-comparable to
  // Key works (e.g. string_view against a std::string key).
  template <typename K>
  Value* find(const K& key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  template <typename K>
  const Value* find(const K& key) const {
    if (slots_.empty()) return nullptr;
    const std::uint64_t hash = normalize_hash(key);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.hash == 0) return nullptr;
      if (slot.hash == hash && slot.key == key) return &slot.value;
    }
  }

  template <typename K>
  bool contains(const K& key) const {
    return find(key) != nullptr;
  }

  // Inserts {key, value} if the key is absent; returns the slot value and
  // whether the insert happened (existing values are never overwritten,
  // matching std::map::emplace).
  std::pair<Value*, bool> emplace(Key key, Value value) {
    grow_if_needed();
    const std::uint64_t hash = normalize_hash(key);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.hash == 0) {
        slot.hash = hash;
        slot.key = std::move(key);
        slot.value = std::move(value);
        ++size_;
        return {&slot.value, true};
      }
      if (slot.hash == hash && slot.key == key) return {&slot.value, false};
    }
  }

  Value& operator[](const Key& key) { return *emplace(key, Value{}).first; }

  class const_iterator {
   public:
    struct Item {
      const Key& first;
      const Value& second;
    };

    const_iterator(const Slot* slot, const Slot* end) : slot_(slot), end_(end) {
      skip_empty();
    }
    Item operator*() const { return {slot_->key, slot_->value}; }
    const_iterator& operator++() {
      ++slot_;
      skip_empty();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return slot_ == other.slot_;
    }
    bool operator!=(const const_iterator& other) const {
      return slot_ != other.slot_;
    }

   private:
    void skip_empty() {
      while (slot_ != end_ && slot_->hash == 0) ++slot_;
    }
    const Slot* slot_;
    const Slot* end_;
  };

  const_iterator begin() const {
    return {slots_.data(), slots_.data() + slots_.size()};
  }
  const_iterator end() const {
    return {slots_.data() + slots_.size(), slots_.data() + slots_.size()};
  }

  // The sanctioned emit path: copies the table out and sorts by key, so
  // the result is independent of insertion order (and therefore of thread
  // count). Emitters iterate this, never the raw table.
  std::vector<std::pair<Key, Value>> sorted_items() const {
    std::vector<std::pair<Key, Value>> items;
    items.reserve(size_);
    for (const auto& item : *this) items.emplace_back(item.first, item.second);
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return items;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  template <typename K>
  static std::uint64_t normalize_hash(const K& key) {
    const std::uint64_t hash = HashFn{}(key);
    return hash == 0 ? 1 : hash;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    const std::size_t mask = new_capacity - 1;
    // Stored hashes are reused, so rehashing never touches the keys; the
    // old table order drives the reinsertion order, keeping the final
    // iteration order a deterministic function of the insertion sequence.
    for (Slot& slot : old) {
      if (slot.hash == 0) continue;
      for (std::size_t i = slot.hash & mask;; i = (i + 1) & mask) {
        if (slots_[i].hash == 0) {
          slots_[i] = std::move(slot);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

namespace internal {
struct Unit {};
}  // namespace internal

template <typename Key, typename HashFn = Hash<Key>>
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t count) { map_.reserve(count); }

  // True if the key was newly inserted.
  bool insert(Key key) {
    return map_.emplace(std::move(key), internal::Unit{}).second;
  }

  template <typename K>
  bool contains(const K& key) const {
    return map_.contains(key);
  }

  // Visits keys in table order — fine for commutative folds, never for
  // output (use sorted_keys() there).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    // analyze:allow(det-unordered-iter): own storage; emit via sorted_keys
    for (const auto& item : map_) fn(item.first);
  }

  // The sanctioned emit path, mirroring FlatMap::sorted_items().
  std::vector<Key> sorted_keys() const {
    std::vector<Key> keys;
    keys.reserve(map_.size());
    for_each([&keys](const Key& key) { keys.push_back(key); });
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  FlatMap<Key, internal::Unit, HashFn> map_;
};

}  // namespace origin::util
