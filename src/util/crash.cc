#include "util/crash.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace origin::util::crash {

namespace {

// Armed configuration. The point name is written only while holding
// g_config_once-style exclusion (arm/disarm are test/supervisor entry
// points, never concurrent with pipeline hits in practice); the counters
// are atomics so hits from pooled workers stay well-defined.
struct Config {
  std::string point;
  std::atomic<std::uint64_t> remaining{0};
  std::atomic<bool> armed{false};
  bool soft = false;
};

Config& config() {
  static Config instance;
  return instance;
}

std::once_flag g_env_once;

// ORIGIN_CRASH_AT=<point>:<k> — hard crash at the k-th hit.
void arm_from_env() {
  const char* spec = std::getenv("ORIGIN_CRASH_AT");
  if (spec == nullptr || *spec == '\0') return;
  const std::string text(spec);
  const std::size_t colon = text.rfind(':');
  std::uint64_t count = 1;
  std::string point = text;
  if (colon != std::string::npos) {
    point = text.substr(0, colon);
    const char* digits = text.c_str() + colon + 1;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(digits, &end, 10);
    if (end != digits && *end == '\0' && parsed > 0) {
      count = parsed;
    }
  }
  if (point.empty()) return;
  arm(point, count, /*soft=*/false);
}

}  // namespace

void arm(std::string_view point, std::uint64_t count, bool soft) {
  Config& c = config();
  c.armed.store(false, std::memory_order_release);
  c.point.assign(point);
  c.soft = soft;
  c.remaining.store(count == 0 ? 1 : count, std::memory_order_relaxed);
  c.armed.store(true, std::memory_order_release);
}

void disarm() {
  Config& c = config();
  c.armed.store(false, std::memory_order_release);
  c.remaining.store(0, std::memory_order_relaxed);
  c.point.clear();
}

bool armed() {
  std::call_once(g_env_once, arm_from_env);
  return config().armed.load(std::memory_order_acquire);
}

bool crash_point(const char* point) {
  std::call_once(g_env_once, arm_from_env);
  Config& c = config();
  if (!c.armed.load(std::memory_order_acquire)) return false;
  if (c.point != point) return false;
  if (c.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return false;
  c.armed.store(false, std::memory_order_release);
  if (c.soft) return true;
  // Hard mode: die like a power cut — no unwinding, no flushes beyond this
  // diagnostic line (stderr is unbuffered).
  std::fprintf(stderr, "origin: injected crash at %s\n", point);
  _exit(kCrashExitCode);
}

}  // namespace origin::util::crash
