// Chunked bump arena and the arena-backed column it exists for.
//
// The columnar corpus store (dataset/corpus.h) keeps millions of int64
// timestamps and uint8 enums per shard. Growing them through std::vector
// doubles-and-copies whole columns; at a million rows that is both the
// dominant allocator traffic and a 2x transient RSS spike per grow. An
// ArenaColumn instead appends into fixed-size chunks carved from an Arena:
// append is O(1) with no element ever moving, a shard's worth of chunks is
// recycled across shards via clear() (capacity is retained, the
// steady-state-allocation-free property the ORIGIN_HOT append loops claim),
// and serialization walks the chunk list with bulk memcpy.
//
// Neither type is thread-safe; one TimelineColumns (and thus one arena)
// belongs to the serial shard-append loop of the streaming pipeline.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace origin::util {

// Bump allocator over large uniform chunks. Allocations are never freed
// individually; reset() makes every chunk's space reusable without
// returning memory to the system. Alignment is the chunk allocation's
// natural alignment (max_align_t) for the first block and the caller's
// element size thereafter, which suffices because columns only ever carve
// whole chunks.
class Arena {
 public:
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 18;  // 256 KiB

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns kChunkBytes of storage. Reuses a recycled chunk when one is
  // available; otherwise allocates a fresh one (the amortized-growth branch
  // the hot-path waivers below reference).
  std::uint8_t* allocate_chunk() {
    if (next_free_ < chunks_.size()) {
      return chunks_[next_free_++].get();
    }
    // analyze:allow(hot-transitive): arena chunk growth is the amortized (one
    // allocation per 256 KiB of column data) cold branch; chunks are
    // retained across reset() so warm shards never reach it.
    chunks_.push_back(std::make_unique<std::uint8_t[]>(kChunkBytes));
    ++next_free_;
    return chunks_.back().get();
  }

  // Makes all chunks reusable. No memory is released: a pipeline that
  // resets between shards reaches a fixed chunk population sized by its
  // largest shard and allocates nothing afterwards.
  void reset() { next_free_ = 0; }

  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t reserved_bytes() const { return chunks_.size() * kChunkBytes; }

 private:
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::size_t next_free_ = 0;
};

// Append-only typed column whose storage is arena chunks. Elements must be
// trivially copyable (the columnar store only holds ids, timestamps, enums
// and packed flags). Indexing is chunk-relative: shift + mask, no division.
template <typename T>
class ArenaColumn {
  static_assert(std::is_trivially_copyable_v<T>,
                "columns hold raw POD rows only");

 public:
  static constexpr std::size_t kPerChunk = Arena::kChunkBytes / sizeof(T);

  explicit ArenaColumn(Arena& arena) : arena_(&arena) {}

  void put(T value) {
    const std::size_t slot = size_ % kPerChunk;
    if (slot == 0) grow();
    chunks_[size_ / kPerChunk][slot] = value;
    ++size_;
  }

  T operator[](std::size_t i) const {
    ORIGIN_CHECK(i < size_, "ArenaColumn index out of range");
    return chunks_[i / kPerChunk][i % kPerChunk];
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Drops the rows but keeps the chunk directory; the arena owns the
  // storage, so the next fill cycle re-carves the same chunks.
  void clear() {
    size_ = 0;
    chunks_.clear();
  }

  // Filled chunk spans in order, for bulk serialization. The last span is
  // partial when size_ is not a chunk multiple.
  template <typename Fn>
  void for_each_span(Fn&& fn) const {
    for (std::size_t begin = 0; begin < size_; begin += kPerChunk) {
      const std::size_t count = std::min(kPerChunk, size_ - begin);
      fn(std::span<const T>(chunks_[begin / kPerChunk], count));
    }
  }

 private:
  void grow() {
    // analyze:allow(hot-transitive): the chunk directory grows by
    // one pointer per 256 KiB of column data — amortized to zero on warm
    // shards because clear() keeps the arena's chunk population.
    // lint:allow(no-reinterpret-cast): typed view over a whole fresh arena
    // chunk; size and alignment are guaranteed by Arena::allocate_chunk.
    chunks_.push_back(reinterpret_cast<T*>(arena_->allocate_chunk()));
  }

  Arena* arena_;
  std::vector<T*> chunks_;
  std::size_t size_ = 0;
};

}  // namespace origin::util
