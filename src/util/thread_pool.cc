#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace origin::util {

namespace {

// Nesting sentinel: set for the duration of any body() execution, on worker
// threads and on the caller in the serial path alike.
thread_local bool tl_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() { tl_in_parallel_region = true; }
  ~RegionGuard() { tl_in_parallel_region = false; }
};

}  // namespace

std::size_t configured_thread_count() {
  static const std::size_t count = [] {
    // Process configuration, read once before any pool exists (so the read
    // itself never races worker startup).
    if (const char* env = std::getenv("ORIGIN_THREADS")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && parsed >= 1 && parsed <= 1024) {
        return static_cast<std::size_t>(parsed);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return count;
}

std::size_t resolve_thread_count(std::size_t requested) {
  return requested == 0 ? configured_thread_count() : requested;
}

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(resolve_thread_count(threads)) {
  if (thread_count_ <= 1) {
    thread_count_ = 1;
    return;  // serial pool: no workers, bodies run inline on the caller
  }
  workers_.reserve(thread_count_);
  for (std::size_t i = 0; i < thread_count_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(thread_count_);
  for (std::size_t i = 0; i < thread_count_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&job_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::parallel_for_index(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (tl_in_parallel_region) {
    throw std::logic_error(
        "nested parallel_for_index: bodies must not fan out again (a fixed "
        "pool would deadlock); restructure as one flat index space");
  }
  if (n == 0) return;
  if (thread_count_ == 1 || n == 1) {
    // Serial fallback (ORIGIN_THREADS=1): same index order a caller-side
    // merge sees from the parallel path, byte for byte.
    RegionGuard region;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  MutexLock callers(&caller_mu_);  // one job owns the queues at a time

  // ~4 chunks per worker: coarse enough that queue traffic is negligible,
  // fine enough that stealing can level skewed per-index costs.
  const std::size_t target_chunks = std::min(n, thread_count_ * 4);
  const std::size_t chunk_size = (n + target_chunks - 1) / target_chunks;
  const std::size_t chunk_count = (n + chunk_size - 1) / chunk_size;

  // Publish the job before any chunk is visible: a still-draining worker
  // may steal the first chunk the instant it is queued.
  {
    MutexLock lock(&job_mu_);
    body_ = &body;
    job_failed_ = false;
    first_error_ = nullptr;
    outstanding_chunks_ = chunk_count;
    queued_chunks_ = chunk_count;
  }
  std::size_t next_worker = 0;
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    Chunk chunk{begin, std::min(n, begin + chunk_size)};
    Worker& worker = *workers_[next_worker++ % workers_.size()];
    MutexLock lock(&worker.mu);
    worker.queue.push_back(chunk);
  }
  work_cv_.notify_all();

  std::exception_ptr error;
  {
    MutexLock lock(&job_mu_);
    // analyze:allow(lock-wait-while-holding): caller_mu_ only serializes
    // concurrent callers of run(); workers signal done_cv_ under job_mu_
    // alone and never take caller_mu_, so the wait cannot deadlock
    while (outstanding_chunks_ != 0) done_cv_.wait(job_mu_);
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    {
      MutexLock lock(&job_mu_);
      while (!shutdown_ && queued_chunks_ == 0) work_cv_.wait(job_mu_);
      if (shutdown_) return;
    }
    Chunk chunk;
    while (take_chunk(self, chunk)) run_chunk(chunk);
  }
}

bool ThreadPool::take_chunk(std::size_t self, Chunk& out) {
  bool got = false;
  {
    Worker& own = *workers_[self];
    MutexLock lock(&own.mu);
    if (!own.queue.empty()) {
      out = own.queue.front();
      own.queue.pop_front();
      got = true;
    }
  }
  // Steal from the BACK of a sibling queue: the owner works the front, so
  // thieves and owner only collide when one chunk is left.
  for (std::size_t k = 1; !got && k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    MutexLock lock(&victim.mu);
    if (!victim.queue.empty()) {
      out = victim.queue.back();
      victim.queue.pop_back();
      got = true;
    }
  }
  if (got) {
    MutexLock lock(&job_mu_);
    --queued_chunks_;
  }
  return got;
}

void ThreadPool::run_chunk(const Chunk& chunk) {
  const std::function<void(std::size_t)>* body = nullptr;
  bool failed = false;
  {
    MutexLock lock(&job_mu_);
    body = body_;
    failed = job_failed_;
  }
  if (!failed && body != nullptr) {
    RegionGuard region;
    try {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) (*body)(i);
    } catch (...) {
      MutexLock lock(&job_mu_);
      if (!job_failed_) {
        // First failure wins; later chunks drain without running user code.
        job_failed_ = true;
        first_error_ = std::current_exception();
      }
    }
  }
  MutexLock lock(&job_mu_);
  if (--outstanding_chunks_ == 0) done_cv_.notify_all();
}

}  // namespace origin::util
