// Always-on invariant checks.
//
// `assert` is compiled out of RelWithDebInfo (the default build type) by
// NDEBUG, which means the invariants it guards are only enforced in the
// builds nobody benchmarks or deploys. ORIGIN_CHECK stays active in every
// build type: a violated invariant prints the location and condition to
// stderr and aborts, so sanitizer runs, fuzz replays, and production-shaped
// builds all fail loudly instead of continuing on corrupted state.
//
// Use ORIGIN_CHECK for conditions that indicate a programming error inside
// this repository. Malformed *input* (wire bytes, HAR text) must never trip
// a check — parsers return util::Result errors for that.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace origin::util {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* condition,
                                      const char* message) {
  std::fprintf(stderr, "ORIGIN_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message[0] != '\0' ? " — " : "", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace origin::util

// ORIGIN_CHECK(cond) or ORIGIN_CHECK(cond, "context message").
#define ORIGIN_CHECK(...) \
  ORIGIN_CHECK_SELECT_(__VA_ARGS__, ORIGIN_CHECK_MSG_, ORIGIN_CHECK_BARE_)(__VA_ARGS__)
#define ORIGIN_CHECK_SELECT_(a, b, macro, ...) macro
#define ORIGIN_CHECK_BARE_(cond)                                            \
  do {                                                                      \
    if (!(cond)) ::origin::util::check_failed(__FILE__, __LINE__, #cond, ""); \
  } while (0)
#define ORIGIN_CHECK_MSG_(cond, msg)                                           \
  do {                                                                         \
    if (!(cond)) ::origin::util::check_failed(__FILE__, __LINE__, #cond, msg); \
  } while (0)
