// ORIGIN_HOT — the allocation-free hot-path contract marker.
//
// A function marked ORIGIN_HOT claims the steady-state discipline the
// corpus-replay numbers depend on (DESIGN.md §10–§11): once its arenas are
// warm it performs no heap allocation, no string construction, and no
// virtual dispatch through owning copies. The marker has two consumers:
//
//   * tools/analyze's hot-path allocation pass scans every ORIGIN_HOT
//     function body and rejects `new` / make_unique / std::string
//     construction / container growth outside a scratch-typed arena or a
//     reserve()d local (rules hot-new, hot-string-construct,
//     hot-unreserved-growth, hot-owning-copy). Violations fail the build
//     gate; deliberate exceptions carry an inline
//     `// analyze:allow(<rule>): <why>` waiver.
//   * util::AllocGuard (util/alloc_guard.h) is the runtime ground truth:
//     tests arm the counting-allocator hook around a warm batch call and
//     assert the per-page marginal allocation count is zero.
//
// Annotation rules (DESIGN.md §11): mark leaf and loop functions whose
// steady state is genuinely allocation-free — scratch-arena batch scans,
// wire-codec primitives writing through util::ByteWriter, pure state
// machines. Do not mark functions that retain output (their allocations
// are the product, not a leak) or cold setup paths; a marked function with
// a by-design allocating branch waives that line, visibly, at the line.
//
// The attribute also tells the optimizer these functions are hot, so the
// marker is load-bearing in Release builds, not just tooling metadata.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define ORIGIN_HOT __attribute__((hot))
#else
#define ORIGIN_HOT
#endif
