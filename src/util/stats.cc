#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace origin::util {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 100.0);
  // Nearest-rank (ceil) definition; median of an even-size set takes the
  // lower-middle element, matching how the paper reports integer medians.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  s.count = v.size();
  s.min = v.front();
  s.max = v.back();
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  auto at = [&](double q) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(v.size())));
    if (rank == 0) rank = 1;
    return v[rank - 1];
  };
  s.p25 = at(25);
  s.median = at(50);
  s.p75 = at(75);
  s.p90 = at(90);
  s.p95 = at(95);
  s.p99 = at(99);
  return s;
}

Cdf Cdf::from(std::span<const double> values) {
  Cdf cdf;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  cdf.total_ = v.size();
  if (v.empty()) return cdf;
  for (std::size_t i = 0; i < v.size(); ++i) {
    bool last_of_run = (i + 1 == v.size()) || (v[i + 1] != v[i]);
    if (last_of_run) {
      cdf.points_.emplace_back(v[i], static_cast<double>(i + 1) /
                                         static_cast<double>(v.size()));
    }
  }
  return cdf;
}

double Cdf::at(double x) const {
  if (points_.empty()) return 0.0;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double lhs, const auto& p) { return lhs < p.first; });
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->second;
}

double Cdf::quantile(double q) const {
  if (points_.empty()) return 0.0;
  for (const auto& [value, frac] : points_) {
    if (frac >= q) return value;
  }
  return points_.back().first;
}

std::string Cdf::ascii(double lo, double hi, int width) const {
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    double x = lo + (hi - lo) * (static_cast<double>(i) + 0.5) /
                        static_cast<double>(width);
    double f = at(x);
    static constexpr const char* kLevels[] = {" ", ".", ":", "-", "=", "+",
                                              "*", "#", "%", "@"};
    int level = std::clamp(static_cast<int>(f * 10.0), 0, 9);
    out += kLevels[level];
  }
  return out;
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  cells_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::int64_t key) const {
  auto it = cells_.find(key);
  return it == cells_.end() ? 0 : it->second;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> Histogram::by_count_desc()
    const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out(cells_.begin(),
                                                          cells_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace origin::util
