#include "util/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/crash.h"

namespace origin::util {

namespace {

Error io_error(const char* what, const std::string& path) {
  // analyze:allow(hot-transitive): error-path only; the reported hot chain
  // is a by-name match of DurableLog::open against the HTTP/2 server's
  // unrelated flush-path open — no hot root reaches durable file IO.
  return make_error(std::string("durable_file: ") + what + " " + path + ": " +
                    std::strerror(errno));
}

Status ensure_parent_dir(const std::string& path) {
  const std::filesystem::path fs_path(path);
  if (!fs_path.has_parent_path()) return Status::ok_status();
  std::error_code ec;
  std::filesystem::create_directories(fs_path.parent_path(), ec);
  if (ec) {
    return make_error("durable_file: cannot create directory " +
                      fs_path.parent_path().string() + ": " + ec.message());
  }
  return Status::ok_status();
}

// Loops write(2) until `bytes` is fully written or a real error shows up.
Status write_all(int fd, std::span<const std::uint8_t> bytes,
                 const std::string& path) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("write to", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

// fsyncs the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  const std::filesystem::path fs_path(path);
  const std::string dir =
      fs_path.has_parent_path() ? fs_path.parent_path().string() : ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Status durable_write_file(const std::string& path,
                          std::span<const std::uint8_t> bytes) {
  auto parent = ensure_parent_dir(path);
  if (!parent.ok()) return parent;

  const std::string temp = path + std::string(kDurableTempSuffix);
  const int fd =
      ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return io_error("cannot open temp", temp);

  // Torn-write crash point: half the payload on disk, no rename. The final
  // path is untouched; only the temp is garbage.
  const std::size_t half = bytes.size() / 2;
  auto first = write_all(fd, bytes.first(half), temp);
  if (!first.ok()) {
    ::close(fd);
    return first;
  }
  if (crash::crash_point("durable.mid_write")) {
    ::close(fd);
    return make_error("durable_file: crash injected at durable.mid_write (" +
                      temp + ")");
  }
  auto rest = write_all(fd, bytes.subspan(half), temp);
  if (!rest.ok()) {
    ::close(fd);
    return rest;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return io_error("fsync of", temp);
  }
  if (::close(fd) != 0) return io_error("close of", temp);

  // Temp is complete and durable; the commit (rename) has not happened.
  if (crash::crash_point("durable.pre_rename")) {
    return make_error("durable_file: crash injected at durable.pre_rename (" +
                      temp + ")");
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    return io_error("rename onto", path);
  }
  sync_parent_dir(path);
  // Committed; the caller's follow-up (e.g. the manifest append) has not
  // run yet.
  if (crash::crash_point("durable.post_rename")) {
    return make_error("durable_file: crash injected at durable.post_rename (" +
                      path + ")");
  }
  return Status::ok_status();
}

Status durable_write_file(const std::string& path, std::string_view text) {
  return durable_write_file(
      path, std::span<const std::uint8_t>(
                static_cast<const std::uint8_t*>(
                    static_cast<const void*>(text.data())),
                text.size()));
}

Result<Bytes> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return io_error("cannot open", path);
  Bytes out;
  std::uint8_t buffer[1u << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_error("read of", path);
    }
    if (n == 0) break;
    out.insert(out.end(), buffer, buffer + n);
  }
  ::close(fd);
  return out;
}

Status remove_file(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    return io_error("cannot remove", path);
  }
  return Status::ok_status();
}

Result<std::size_t> sweep_stale_temps(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return std::size_t{0};
  std::size_t swept = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < kDurableTempSuffix.size() ||
        name.compare(name.size() - kDurableTempSuffix.size(),
                     kDurableTempSuffix.size(), kDurableTempSuffix) != 0) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec)) ++swept;
  }
  if (ec) {
    return make_error("durable_file: cannot scan " + dir + ": " +
                      ec.message());
  }
  return swept;
}

DurableLog::DurableLog(DurableLog&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

DurableLog& DurableLog::operator=(DurableLog&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

DurableLog::~DurableLog() { close(); }

Result<DurableLog> DurableLog::open(const std::string& path) {
  auto parent = ensure_parent_dir(path);
  if (!parent.ok()) return parent.error();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return io_error("cannot open log", path);
  DurableLog log;
  log.fd_ = fd;
  log.path_ = path;
  return log;
}

Status DurableLog::append(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return make_error("durable_file: append on closed log");
  auto written = write_all(fd_, bytes, path_);
  if (!written.ok()) return written;
  if (::fsync(fd_) != 0) return io_error("fsync of log", path_);
  return Status::ok_status();
}

void DurableLog::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace origin::util
