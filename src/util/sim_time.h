// Simulated-time primitives. The discrete-event simulator and the HAR-style
// timelines use microsecond-resolution integer time so that reconstructed
// timelines subtract exactly and reproducibly.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace origin::util {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration(us); }
  static constexpr Duration millis(double ms) {
    return Duration(static_cast<std::int64_t>(ms * 1000.0));
  }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1'000'000.0));
  }

  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double as_millis() const { return static_cast<double>(us_) / 1000.0; }
  constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr Duration operator+(Duration other) const { return Duration(us_ + other.us_); }
  constexpr Duration operator-(Duration other) const { return Duration(us_ - other.us_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }
  Duration& operator+=(Duration other) {
    us_ += other.us_;
    return *this;
  }
  auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_micros(std::int64_t us) { return SimTime(us); }

  constexpr std::int64_t micros() const { return us_; }
  constexpr double as_millis() const { return static_cast<double>(us_) / 1000.0; }
  constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr SimTime operator+(Duration d) const { return SimTime(us_ + d.count_micros()); }
  constexpr Duration operator-(SimTime other) const {
    return Duration::micros(us_ - other.us_);
  }
  auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace origin::util
