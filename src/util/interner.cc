#include "util/interner.h"

#include "util/check.h"
#include "util/fnv.h"

namespace origin::util {

namespace {
constexpr std::size_t kInitialTableCapacity = 64;
constexpr std::size_t kInitialDirectoryCapacity = 8;
constexpr std::uint64_t kFingerprintMask = 0xFFFFFFFF00000000ULL;
}  // namespace

Interner::Interner() {
  auto table = std::make_unique<Table>();
  table->mask = kInitialTableCapacity - 1;
  table->slots =
      std::make_unique<std::atomic<std::uint64_t>[]>(kInitialTableCapacity);
  for (std::size_t i = 0; i < kInitialTableCapacity; ++i) {
    table->slots[i].store(0, std::memory_order_relaxed);
  }
  table_.store(table.get(), std::memory_order_release);
  tables_.push_back(std::move(table));

  auto directory = std::make_unique<Directory>();
  directory->capacity = kInitialDirectoryCapacity;
  directory->chunks =
      std::make_unique<std::atomic<Chunk*>[]>(kInitialDirectoryCapacity);
  for (std::size_t i = 0; i < kInitialDirectoryCapacity; ++i) {
    directory->chunks[i].store(nullptr, std::memory_order_relaxed);
  }
  directory_.store(directory.get(), std::memory_order_release);
  directories_.push_back(std::move(directory));
}

SymbolId Interner::probe(const Table& table, std::string_view name,
                         std::uint64_t hash) const {
  const std::uint64_t fingerprint = hash & kFingerprintMask;
  for (std::size_t i = hash & table.mask;; i = (i + 1) & table.mask) {
    const std::uint64_t word =
        table.slots[i].load(std::memory_order_acquire);
    if (word == 0) return kInvalidSymbol;
    if ((word & kFingerprintMask) == fingerprint) {
      const SymbolId id =
          static_cast<SymbolId>((word & 0xFFFFFFFFULL) - 1);
      // The fingerprint is only the hash's upper half; confirm against the
      // stored bytes (the view was published before the slot word, so the
      // acquire load above makes it visible).
      if (this->name(id) == name) return id;
    }
  }
}

SymbolId Interner::lookup(std::string_view name) const {
  const std::uint64_t hash = fnv1a64(name);
  const Table* table = table_.load(std::memory_order_acquire);
  return probe(*table, name, hash);
}

std::string_view Interner::name(SymbolId id) const {
  ORIGIN_CHECK(id < size_.load(std::memory_order_acquire),
               "Interner::name: id out of range");
  const Directory* directory = directory_.load(std::memory_order_acquire);
  const Chunk* chunk =
      directory->chunks[id >> kChunkShift].load(std::memory_order_acquire);
  return chunk->views[id & (kChunkSize - 1)];
}

SymbolId Interner::intern(std::string_view name) {
  const std::uint64_t hash = fnv1a64(name);

  // Fast path: already present, no lock. This is what keeps parallel
  // regions cheap after the serial intern prepass.
  {
    const Table* table = table_.load(std::memory_order_acquire);
    const SymbolId id = probe(*table, name, hash);
    if (id != kInvalidSymbol) return id;
  }

  MutexLock lock(&mu_);
  Table* table = table_.load(std::memory_order_relaxed);
  {
    // Re-probe under the lock: another thread may have inserted it between
    // the fast path and lock acquisition.
    const SymbolId id = probe(*table, name, hash);
    if (id != kInvalidSymbol) return id;
  }

  const std::size_t count = size_.load(std::memory_order_relaxed);
  ORIGIN_CHECK(count + 1 < kInvalidSymbol,
               "Interner: symbol space exhausted");
  const SymbolId id = static_cast<SymbolId>(count);

  storage_.push_back(std::string(name));
  publish_view(id, storage_.back());
  size_.store(count + 1, std::memory_order_release);

  // Keep load factor <= 3/4 before placing the new slot.
  if ((count + 1) * 4 > (table->mask + 1) * 3) {
    grow_table();
    table = table_.load(std::memory_order_relaxed);
  }

  const std::uint64_t word = (hash & kFingerprintMask) |
                             (static_cast<std::uint64_t>(id) + 1);
  for (std::size_t i = hash & table->mask;; i = (i + 1) & table->mask) {
    if (table->slots[i].load(std::memory_order_relaxed) == 0) {
      // Release: a reader that sees this word also sees the view published
      // above and the size_ update.
      table->slots[i].store(word, std::memory_order_release);
      break;
    }
  }
  return id;
}

void Interner::grow_table() {
  Table* old_table = table_.load(std::memory_order_relaxed);
  const std::size_t new_capacity = (old_table->mask + 1) * 2;
  auto bigger = std::make_unique<Table>();
  bigger->mask = new_capacity - 1;
  bigger->slots = std::make_unique<std::atomic<std::uint64_t>[]>(new_capacity);
  for (std::size_t i = 0; i < new_capacity; ++i) {
    bigger->slots[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i <= old_table->mask; ++i) {
    const std::uint64_t word =
        old_table->slots[i].load(std::memory_order_relaxed);
    if (word == 0) continue;
    const SymbolId id = static_cast<SymbolId>((word & 0xFFFFFFFFULL) - 1);
    const std::uint64_t hash = fnv1a64(this->name(id));
    for (std::size_t j = hash & bigger->mask;; j = (j + 1) & bigger->mask) {
      if (bigger->slots[j].load(std::memory_order_relaxed) == 0) {
        bigger->slots[j].store(word, std::memory_order_relaxed);
        break;
      }
    }
  }
  // Publish, then retire: concurrent readers may keep probing the old
  // table (they see a consistent subset); it stays allocated until ~this.
  table_.store(bigger.get(), std::memory_order_release);
  tables_.push_back(std::move(bigger));
}

void Interner::publish_view(SymbolId id, std::string_view view) {
  Directory* directory = directory_.load(std::memory_order_relaxed);
  const std::size_t chunk_index = id >> kChunkShift;
  if (chunk_index >= directory->capacity) {
    auto bigger = std::make_unique<Directory>();
    bigger->capacity = directory->capacity * 2;
    bigger->chunks =
        std::make_unique<std::atomic<Chunk*>[]>(bigger->capacity);
    for (std::size_t i = 0; i < bigger->capacity; ++i) {
      Chunk* chunk = i < directory->capacity
                         ? directory->chunks[i].load(std::memory_order_relaxed)
                         : nullptr;
      bigger->chunks[i].store(chunk, std::memory_order_relaxed);
    }
    directory_.store(bigger.get(), std::memory_order_release);
    directory = bigger.get();
    directories_.push_back(std::move(bigger));
  }
  Chunk* chunk = directory->chunks[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunks_.push_back(std::make_unique<Chunk>());
    chunk = chunks_.back().get();
    directory->chunks[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk->views[id & (kChunkSize - 1)] = view;
}

}  // namespace origin::util
