// Fixed-size worker pool with per-worker queues and work stealing.
//
// The corpus pipeline (generate -> load -> model -> aggregate) is
// embarrassingly parallel across sites, so the one primitive everything
// shards through is `parallel_for_index(n, body)`: run body(0..n-1) on the
// pool and return when all indices finished. Determinism rules:
//
//   * The MERGE IS THE CALLER'S INDEX SPACE. body(i) writes results[i];
//     nothing is ever keyed by completion order, so output is bit-identical
//     at any thread count (the pipeline_determinism_test gate).
//   * body(i) must not touch shared mutable state; everything it reads from
//     `this`-adjacent structures must be immutable for the duration of the
//     region (the clang thread-safety annotations and the TSan preset both
//     check the pool itself; discipline at call sites is enforced by
//     per-site RNG prepasses and atomic counters in the substrate).
//
// Scheduling: indices are pre-split into contiguous chunks dealt
// round-robin onto per-worker deques. A worker pops its own queue from the
// front and, when empty, steals from the back of a sibling's queue — the
// classic Blumofe/Leiserson shape, which keeps contention off the common
// path while still balancing skewed per-index costs (page loads vary by two
// orders of magnitude between a 3-resource tail site and a 600-resource
// shard farm).
//
// Error handling: the first exception thrown by any body() is captured and
// rethrown from parallel_for_index on the calling thread; remaining chunks
// are drained without running user code. Nested parallel_for_index calls
// (from inside a body) throw std::logic_error — nesting would deadlock a
// fixed pool, and no call site legitimately needs it.
//
// Thread count: ThreadPool(0) reads the ORIGIN_THREADS environment
// variable; unset or invalid falls back to std::thread::hardware_concurrency.
// A pool of 1 runs bodies inline on the caller with no worker threads — the
// serial fallback path (ORIGIN_THREADS=1) every determinism gate compares
// against.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace origin::util {

// Annotated condition variable companion to util::Mutex. Built on
// condition_variable_any so it waits directly on the annotated mutex; the
// REQUIRES contract makes the analysis verify callers hold the lock.
class CondVar {
 public:
  void wait(Mutex& mu) ORIGIN_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// Thread count that `0` resolves to: ORIGIN_THREADS if set and positive,
// else hardware concurrency (min 1). Read once; the env var is process
// configuration, not a runtime knob.
std::size_t configured_thread_count();

// 0 -> configured_thread_count(), anything else passes through.
std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  // threads == 0 resolves via ORIGIN_THREADS / hardware concurrency.
  // threads == 1 creates no workers; parallel_for_index runs inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return thread_count_; }

  // Runs body(0) .. body(n-1), returning once all completed. Rethrows the
  // first body exception. Throws std::logic_error when called from inside
  // another parallel_for_index body (on this or any pool).
  void parallel_for_index(std::size_t n,
                          const std::function<void(std::size_t)>& body);

 private:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  // Per-worker deque: owner pops the front, thieves pop the back.
  struct Worker {
    Mutex mu;
    std::deque<Chunk> queue ORIGIN_GUARDED_BY(mu);
  };

  void worker_loop(std::size_t self);
  // Dequeues one chunk (own queue first, then steal). Returns false when no
  // work is available anywhere.
  bool take_chunk(std::size_t self, Chunk& out) ORIGIN_EXCLUDES(job_mu_);
  void run_chunk(const Chunk& chunk) ORIGIN_EXCLUDES(job_mu_);

  std::size_t thread_count_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex job_mu_;
  CondVar work_cv_;  // workers: "a job was posted" / "shut down"
  CondVar done_cv_;  // caller: "the last chunk finished"
  bool shutdown_ ORIGIN_GUARDED_BY(job_mu_) = false;
  std::size_t outstanding_chunks_ ORIGIN_GUARDED_BY(job_mu_) = 0;
  std::size_t queued_chunks_ ORIGIN_GUARDED_BY(job_mu_) = 0;
  bool job_failed_ ORIGIN_GUARDED_BY(job_mu_) = false;
  std::exception_ptr first_error_ ORIGIN_GUARDED_BY(job_mu_);
  const std::function<void(std::size_t)>* body_ ORIGIN_GUARDED_BY(job_mu_) =
      nullptr;

  // Serializes concurrent parallel_for_index callers: one job at a time
  // owns the worker queues.
  Mutex caller_mu_ ORIGIN_THREAD_ANNOTATION_(acquired_before(job_mu_));
};

}  // namespace origin::util
