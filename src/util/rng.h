// Deterministic random number generation.
//
// Every experiment in this repository must reproduce bit-identically from a
// seed, so we implement our own generator (xoshiro256++) and our own
// distributions rather than relying on implementation-defined behaviour of
// <random> distributions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace origin::util {

// xoshiro256++ (Blackman & Vigna). Seeded through SplitMix64 so that any
// 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next();

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound);
  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);
  // Uniform in [0, 1).
  double uniform_double();
  bool bernoulli(double p);

  // Lognormal via Box-Muller: exp(mu + sigma * N(0,1)).
  double lognormal(double mu, double sigma);
  double normal(double mu, double sigma);
  double exponential(double mean);
  // Bounded Pareto on [lo, hi] with shape alpha. Heavy-tailed counts.
  double pareto(double lo, double hi, double alpha);

  // Zipf-like rank sampling over [0, n): rank r picked with probability
  // proportional to 1/(r+1)^s. Used for popularity-skewed choices.
  std::size_t zipf(std::size_t n, double s);

  // Picks an index with probability proportional to weights[i].
  std::size_t weighted(std::span<const double> weights);

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[uniform(items.size())];
  }

  // Derives an independent child generator; used to give each website its
  // own stream so corpus generation is order-independent.
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace origin::util
