// Small string helpers shared across modules (hostname handling, table
// formatting). Hostnames in this codebase are always lowercase ASCII.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace origin::util {

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);
// ASCII case-insensitive equality; allocation-free, for hot-path host
// comparisons where to_lower()'s temporary is not acceptable.
bool iequals_ascii(std::string_view a, std::string_view b);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// "images.example.com" -> "example.com"; best-effort eTLD+1 with a small
// built-in list of two-label public suffixes (co.uk, com.au, ...).
std::string registrable_domain(std::string_view hostname);

// Does `pattern` (possibly "*.example.com") cover `hostname` under RFC 6125
// wildcard rules (single left-most label only)?
bool wildcard_matches(std::string_view pattern, std::string_view hostname);

// Fixed-width number rendering for bench tables.
std::string format_double(double v, int decimals);
std::string format_count(std::uint64_t v);  // thousands separators
std::string format_pct(double fraction, int decimals = 2);

}  // namespace origin::util
