#include "util/strings.h"

#include <array>
#include <cctype>
#include <cstdio>

namespace origin::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals_ascii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string registrable_domain(std::string_view hostname) {
  static constexpr std::array<std::string_view, 8> kTwoLabelSuffixes = {
      "co.uk", "com.au", "co.jp", "com.br", "co.in", "org.uk", "net.au",
      "ac.uk"};
  auto labels = split(hostname, '.');
  if (labels.size() <= 2) return std::string(hostname);
  std::string last_two = labels[labels.size() - 2] + "." + labels.back();
  for (auto suffix : kTwoLabelSuffixes) {
    if (last_two == suffix) {
      return labels[labels.size() - 3] + "." + last_two;
    }
  }
  return last_two;
}

bool wildcard_matches(std::string_view pattern, std::string_view hostname) {
  if (pattern == hostname) return true;
  if (!starts_with(pattern, "*.")) return false;
  std::string_view base = pattern.substr(2);
  // The wildcard covers exactly one label: "*.example.com" matches
  // "a.example.com" but neither "example.com" nor "a.b.example.com".
  std::size_t dot = hostname.find('.');
  if (dot == std::string_view::npos) return false;
  return hostname.substr(dot + 1) == base;
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter > 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  return {out.rbegin(), out.rend()};
}

std::string format_pct(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

}  // namespace origin::util
