// Minimal expected-like result type used across the codec layers.
//
// The harness predates std::expected availability here; this covers the
// subset we need (value-or-error, monadic map) without exceptions on the
// hot path.
//
// Result and Status are [[nodiscard]]: a parse or decode entrypoint whose
// return value is ignored silently swallows the error path, which is
// exactly the failure mode the §6.7 middlebox incident punishes. The
// tools/lint binary additionally enforces that every parser entrypoint
// returns one of these types.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace origin::util {

struct Error {
  std::string message;
};

[[nodiscard]] inline Error make_error(std::string message) {
  return Error{std::move(message)};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    ORIGIN_CHECK(ok(), "Result::value() on error");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    ORIGIN_CHECK(ok(), "Result::value() on error");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    ORIGIN_CHECK(ok(), "Result::value() on error");
    return std::get<T>(std::move(storage_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  [[nodiscard]] const Error& error() const {
    ORIGIN_CHECK(!ok(), "Result::error() on success");
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  [[nodiscard]] static Status ok_status() { return Status{}; }
  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    ORIGIN_CHECK(failed_, "Status::error() on success");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace origin::util
