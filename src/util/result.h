// Minimal expected-like result type used across the codec layers.
//
// The harness predates std::expected availability here; this covers the
// subset we need (value-or-error, monadic map) without exceptions on the
// hot path.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace origin::util {

struct Error {
  std::string message;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status ok_status() { return Status{}; }
  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace origin::util
