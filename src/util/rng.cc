#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/fnv.h"

namespace origin::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) { return uniform_double() < p; }

double Rng::normal(double mu, double sigma) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mu + sigma * spare_normal_;
  }
  // Box-Muller. uniform_double() can return 0; nudge into (0, 1].
  double u1 = 1.0 - uniform_double();
  double u2 = uniform_double();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_normal_ = true;
  return mu + sigma * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  double u = 1.0 - uniform_double();
  return -mean * std::log(u);
}

double Rng::pareto(double lo, double hi, double alpha) {
  // Inverse-CDF sampling of the bounded Pareto distribution.
  double u = uniform_double();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) return 0;
  // Rejection-inversion would be faster for huge n; the corpus generator
  // caches weights instead, so a simple CDF walk over a harmonic-ish tail
  // approximation is adequate here.
  double u = uniform_double();
  // Normalizing constant approximated by the integral; exact for our use
  // because we re-normalize through the final clamp.
  double h = 0.0;
  for (std::size_t i = 0; i < n; ++i) h += 1.0 / std::pow(double(i + 1), s);
  double target = u * h;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(double(i + 1), s);
    if (acc >= target) return i;
  }
  return n - 1;
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double target = uniform_double() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= target) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t salt) {
  // Mix the parent's stream position with the salt so forks are independent
  // of each other and of subsequent parent draws.
  return Rng(fnv1a64_mix(next(), salt));
}

}  // namespace origin::util
