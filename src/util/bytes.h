// Byte-buffer primitives used by the HPACK and HTTP/2 codecs.
//
// All multi-byte integers on the wire are big-endian (network order), per
// RFC 9113 §4.1. ByteWriter grows an internal vector; ByteReader is a
// non-owning bounds-checked cursor over a span of bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace origin::util {

using Bytes = std::vector<std::uint8_t>;

// Appends big-endian integers and raw bytes to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u24(std::uint32_t v);  // low 24 bits
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> bytes);
  void raw(std::string_view s);
  // Appends n raw bytes from untyped memory — the bulk column-payload path
  // of the corpus snapshot writer, which serializes typed arena chunks
  // without a per-element cast.
  void raw(const void* data, std::size_t n);

  // Overwrites previously written bytes (e.g. to back-patch a length field).
  void patch_u24(std::size_t offset, std::uint32_t v);
  void patch_u8(std::size_t offset, std::uint8_t v);

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Bounds-checked big-endian reader. Reads never throw; failed reads set a
// sticky error flag and return zero values, so codecs can do one `ok()`
// check after a parse sequence.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u24();
  std::uint32_t u32();
  std::uint64_t u64();
  // Reads exactly n bytes; on underflow sets the error flag and returns an
  // empty span.
  std::span<const std::uint8_t> raw(std::size_t n);
  std::string str(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::uint8_t peek() const { return pos_ < data_.size() ? data_[pos_] : 0; }

 private:
  bool require(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string to_hex(std::span<const std::uint8_t> bytes);
Bytes from_string(std::string_view s);

// Views a byte span as text without copying. This is the single audited
// uint8_t* → char* conversion in the repo; parser code must use it instead
// of a raw reinterpret_cast (enforced by tools/lint).
std::string_view as_string_view(std::span<const std::uint8_t> bytes);

}  // namespace origin::util
