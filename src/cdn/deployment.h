// CDN deployment experiments (paper §5).
//
// Reproduces the full experimental machinery the paper ran in production:
//   * sample selection — the 5000 domains most dependent on the third-party
//     domain, minus the ~22% that only reference it from subpages;
//   * byte-equalized certificate reissue (Figure 6): the experiment group
//     gets the third-party domain appended to its SAN, the control group
//     gets an unused domain of identical byte length, so handshake sizes
//     match across groups;
//   * the §5.2 IP-coalescing deployment (all sample domains and the third
//     party answer from one new shared address, and edge servers accept
//     Host != SNI for the third party);
//   * the §5.3 ORIGIN-frame deployment (DNS restored, ORIGIN frames
//     advertise the third party / the control pad to match each group's
//     certificate);
//   * active measurement (Figures 7a/7b) and longitudinal passive
//     measurement (Figure 8, §5.2/5.3 headline reductions).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "browser/page_loader.h"
#include "cdn/admission.h"
#include "cdn/kill_switch.h"
// The §5 deployment experiment orchestrates the corpus and the passive
// pipeline end to end; it is the one sanctioned consumer of the
// measurement layer from below.
// analyze:allow(layer-upward): deployment orchestrates the corpus (§5)
#include "dataset/generator.h"
// analyze:allow(layer-upward): deployment drives the passive pipeline (§5)
#include "measure/passive.h"
#include "util/stats.h"

namespace origin::server {
class Http2Server;
}  // namespace origin::server

namespace origin::cdn {

struct DeploymentOptions {
  std::string third_party = "cdnjs.cloudflare.com";
  std::size_t sample_size = 5000;
  // Per-visit probability that the site changed between sample selection
  // and measurement and no longer loads the third party from its main page
  // (the resource churn §5.3 blames for lower-than-expected coalescing).
  double visit_churn = 0.08;
  std::uint64_t seed = 0xDEB10;
  // Worker threads for the longitudinal passive run's page loads. 0
  // resolves via ORIGIN_THREADS / hardware concurrency; 1 is the serial
  // fallback. Results are bit-identical at any thread count: churn draws
  // happen in a serial per-day prepass, every visit gets its own loader
  // (seed and connection-id block derived from the global visit index), and
  // observation stays in visit order.
  std::size_t threads = 1;
  // §6.7 safety valve: parameters for the per-client-tag ORIGIN
  // kill-switch (see cdn/kill_switch.h).
  KillSwitchOptions kill_switch;
  // PoP overload protection: admission caps and the abuse greylist
  // (see cdn/admission.h).
  AdmissionOptions admission;
};

class Deployment {
 public:
  Deployment(dataset::Corpus& corpus, DeploymentOptions options);

  // §5.1: pick candidates, drop subpage-only domains, randomize groups,
  // and reissue byte-equalized certificates. Returns sites actually
  // enrolled (may be < sample_size at small corpus scales).
  std::size_t prepare();

  void deploy_ip_coalescing();   // §5.2
  void undo_ip_coalescing();
  void deploy_origin_frames();   // §5.3
  void undo_origin_frames();

  struct ActiveResult {
    // New TLS connections to the third party per page visit.
    std::vector<double> experiment_new_connections;
    std::vector<double> control_new_connections;
    // Page load times per visit (Figure 9 bottom).
    std::vector<double> experiment_plt_ms;
    std::vector<double> control_plt_ms;
  };
  // Active measurement with the given client policy (the paper used
  // Firefox — the only ORIGIN-capable browser).
  ActiveResult run_active(const std::string& policy, std::uint64_t seed);

  struct PassiveResult {
    measure::PassivePipeline pipeline{0.01, 0x5A11};
    std::uint64_t first_day = 0;
    std::uint64_t last_day = 0;
    std::uint64_t window_begin = 0;  // treatment active [begin, end)
    std::uint64_t window_end = 0;
  };
  // Longitudinal run: loads a rotating subset of the sample every day;
  // the ORIGIN deployment is switched on only inside the treatment window.
  PassiveResult run_passive_longitudinal(std::uint64_t days,
                                         std::uint64_t window_begin,
                                         std::uint64_t window_end,
                                         std::size_t loads_per_day,
                                         const std::string& policy);

  const std::vector<std::size_t>& experiment_sites() const {
    return experiment_sites_;
  }
  const std::vector<std::size_t>& control_sites() const {
    return control_sites_;
  }
  const std::string& control_pad_domain() const { return control_pad_; }
  std::size_t subpage_only_dropped() const { return subpage_only_dropped_; }
  const std::string& third_party() const { return options_.third_party; }

  // Wires this deployment's ORIGIN kill-switch into a wire-level server:
  // the gate decides per accepted connection whether to advertise ORIGIN,
  // and every close feeds the tag's teardown window. The deployment must
  // outlive the server's use of these callbacks.
  void attach_kill_switch(server::Http2Server& server);
  OriginKillSwitch& kill_switch() { return kill_switch_; }
  const OriginKillSwitch& kill_switch() const { return kill_switch_; }

  // Wires this deployment's admission controller into a wire-level server:
  // the gate sheds connection attempts at accept time (capacity caps and
  // the per-tag abuse greylist), and every admitted close releases the
  // slot and feeds the greylist window. The deployment must outlive the
  // server's use of these callbacks.
  void attach_admission(server::Http2Server& server);
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  void reissue_certificates();
  void set_origin_frames(bool enabled);

  dataset::Corpus& corpus_;
  DeploymentOptions options_;
  origin::util::Rng rng_;
  std::vector<std::size_t> experiment_sites_;
  std::vector<std::size_t> control_sites_;
  // Pre-deployment DNS state for undo.
  std::map<std::string, std::vector<dns::IpAddress>> saved_addresses_;
  std::string control_pad_;
  std::size_t subpage_only_dropped_ = 0;
  bool ip_deployed_ = false;
  bool origin_deployed_ = false;
  OriginKillSwitch kill_switch_;
  AdmissionController admission_;
};

}  // namespace origin::cdn
