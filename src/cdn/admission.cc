#include "cdn/admission.h"

// The shed-reason classifier lives with the abuse generators: cdn sits
// above server, which sits above h2, so this include follows the DAG.
#include "h2/abuse.h"

namespace origin::cdn {

std::optional<std::string> AdmissionController::admit(
    const std::string& client_tag) {
  if (draining_) {
    ++rejected_;
    return "admission: draining";
  }
  auto& state = tags_[client_tag];
  bool is_probe = false;
  if (state.greylisted) {
    if (!state.probe_outstanding) ++state.attempts_since_probe;
    if (!state.probe_outstanding &&
        state.attempts_since_probe >= options_.probe_after) {
      // Admit this attempt as a probe — subject to the capacity checks
      // below, so a full PoP still refuses it.
      is_probe = true;
    } else {
      ++rejected_;
      return "admission: greylisted";
    }
  }
  if (options_.max_sessions != 0 &&
      active_sessions_ >= options_.max_sessions) {
    ++rejected_;
    return "admission: at capacity";
  }
  if (options_.max_sessions_per_tag != 0 &&
      state.active >= options_.max_sessions_per_tag) {
    ++rejected_;
    return "admission: tag concurrency limit";
  }
  if (is_probe) {
    state.attempts_since_probe = 0;
    state.probe_outstanding = true;
    ++probes_;
  }
  ++admitted_;
  ++active_sessions_;
  ++state.active;
  return std::nullopt;
}

void AdmissionController::record_close(const std::string& client_tag,
                                       const std::string& reason) {
  auto it = tags_.find(client_tag);
  if (it == tags_.end()) return;
  TagState& state = it->second;
  // Only sessions we admitted hold a slot; a stray close (e.g. the gate was
  // attached after the session was accepted) must not underflow the caps.
  if (state.active == 0) return;
  --state.active;
  if (active_sessions_ > 0) --active_sessions_;
  const bool abusive = h2::abusive_close_reason(reason);
  if (state.greylisted) {
    if (!state.probe_outstanding) return;
    state.probe_outstanding = false;
    if (!abusive) {
      // Clean probe: the tag behaves again. Restart with an empty window.
      state.greylisted = false;
      state.window.clear();
      state.abusive = 0;
      state.attempts_since_probe = 0;
      ++ungreylists_;
    }
    return;
  }
  state.window.push_back(abusive);
  if (abusive) ++state.abusive;
  while (state.window.size() > options_.window) {
    if (state.window.front()) --state.abusive;
    state.window.pop_front();
  }
  if (state.window.size() >= options_.min_observations &&
      static_cast<double>(state.abusive) >=
          options_.abusive_threshold *
              static_cast<double>(state.window.size())) {
    state.greylisted = true;
    state.attempts_since_probe = 0;
    state.probe_outstanding = false;
    ++greylists_;
  }
}

bool AdmissionController::greylisted(const std::string& client_tag) const {
  auto it = tags_.find(client_tag);
  return it != tags_.end() && it->second.greylisted;
}

}  // namespace origin::cdn
