// PoP-level admission control and load shedding.
//
// The kill-switch (kill_switch.h) protects the ORIGIN feature; this class
// protects the serving capacity itself. It sits in front of a
// server::Http2Server via ServerConfig::admission_gate /
// admission_feedback and makes three deterministic decisions per
// connection attempt:
//
//   capacity   — a hard cap on concurrently admitted sessions at the PoP
//                (the accept-queue bound), plus a per-client-tag
//                concurrency cap so one client cannot take the whole PoP;
//   greylist   — the kill-switch's sliding-window idiom applied to
//                overload sheds: a tag whose admitted sessions keep ending
//                in "overload:/admission:/drain:" closes is refused
//                outright, with every `probe_after`-th attempt admitted as
//                a probe (a clean probe close clears the tag);
//   drain      — once begin_drain() is called, everything is refused.
//
// Decisions are pure functions of the observed close-reason stream, so a
// run is replayable bit for bit.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

namespace origin::cdn {

struct AdmissionOptions {
  // Concurrently admitted sessions across the whole PoP (0 = unlimited).
  std::size_t max_sessions = 0;
  // Concurrently admitted sessions per client tag (0 = unlimited).
  std::size_t max_sessions_per_tag = 0;
  // Sliding window of per-session outcomes feeding the greylist.
  std::size_t window = 16;
  // Greylist when abusive_closes/window_size >= threshold ...
  double abusive_threshold = 0.5;
  // ... but only after at least this many observations.
  std::size_t min_observations = 4;
  // While greylisted, every Nth attempt is admitted as a probe; a clean
  // probe close clears the tag.
  std::size_t probe_after = 8;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {})
      : options_(options) {}

  // Gate consulted at accept time (wire into ServerConfig::admission_gate).
  // nullopt admits the connection and counts it against the caps; a string
  // is the verbatim shed reason the server will close with.
  std::optional<std::string> admit(const std::string& client_tag);

  // Outcome feed (wire into ServerConfig::admission_feedback): releases the
  // session's capacity slot and feeds the tag's greylist window with
  // whether the close was a server-side shed (h2::abusive_close_reason).
  void record_close(const std::string& client_tag, const std::string& reason);

  // Refuse everything from now on (pair with Http2Server::begin_drain).
  void begin_drain() { draining_ = true; }
  bool draining() const { return draining_; }

  bool greylisted(const std::string& client_tag) const;
  std::size_t active_sessions() const { return active_sessions_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t greylists() const { return greylists_; }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t ungreylists() const { return ungreylists_; }

 private:
  struct TagState {
    std::size_t active = 0;
    std::deque<bool> window;  // true = abusive close
    std::size_t abusive = 0;
    bool greylisted = false;
    // Attempts refused since the last probe while greylisted.
    std::size_t attempts_since_probe = 0;
    // A probe session is in flight; its close decides clear vs stay dark.
    bool probe_outstanding = false;
  };

  AdmissionOptions options_;
  std::map<std::string, TagState> tags_;
  std::size_t active_sessions_ = 0;
  bool draining_ = false;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t greylists_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t ungreylists_ = 0;
};

}  // namespace origin::cdn
