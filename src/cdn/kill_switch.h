// ORIGIN kill-switch: the operational control the §6.7 incident demanded.
//
// When an antivirus agent tore down every connection carrying an ORIGIN
// frame, the CDN's only remedy was a manual rollback for everyone. This
// class automates the targeted version: per client tag, it watches the
// teardown rate of ORIGIN-bearing connections over a sliding window and
// stops advertising ORIGIN for that tag once the rate crosses a threshold —
// clients behind the hostile middlebox degrade to uncoalesced (but working)
// loads while everyone else keeps coalescing. Periodic probe connections
// re-test the path and re-enable ORIGIN once the middlebox is fixed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace origin::cdn {

struct KillSwitchOptions {
  // Sliding window of per-connection outcomes (ORIGIN-bearing only).
  std::size_t window = 16;
  // Disable when torn_down/window_size >= threshold ...
  double teardown_threshold = 0.5;
  // ... but only after at least this many observations.
  std::size_t min_observations = 4;
  // While disabled, every Nth gate query sends a probe ORIGIN frame; a
  // clean probe re-enables the tag.
  std::size_t probe_after = 8;
};

class OriginKillSwitch {
 public:
  explicit OriginKillSwitch(KillSwitchOptions options = {})
      : options_(options) {}

  // Gate consulted at accept time (wire into ServerConfig::origin_gate).
  // Returns whether this connection should carry an ORIGIN frame; while a
  // tag is disabled, every `probe_after`-th query answers true as a probe.
  bool should_send_origin(const std::string& client_tag);

  // Outcome feed (wire into ServerConfig::close_feedback via
  // `abnormal_close(reason)`). Only ORIGIN-bearing connections enter the
  // window: teardowns of plain connections say nothing about ORIGIN.
  void record_outcome(const std::string& client_tag, bool origin_sent,
                      bool torn_down);

  bool disabled(const std::string& client_tag) const;

  std::uint64_t disables() const { return disables_; }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t reenables() const { return reenables_; }

 private:
  struct TagState {
    std::deque<bool> window;  // true = torn down
    std::size_t torn_down = 0;
    bool disabled = false;
    // Gate queries since the last probe while disabled.
    std::size_t queries_since_probe = 0;
    // A probe is in flight; its outcome decides re-enable vs stay dark.
    bool probe_outstanding = false;
  };

  KillSwitchOptions options_;
  std::map<std::string, TagState> tags_;
  std::uint64_t disables_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t reenables_ = 0;
};

// Heuristic over netsim close reasons: teardowns, injected faults, and
// protocol errors are abnormal; "load complete" and friends are not.
bool abnormal_close(const std::string& reason);

}  // namespace origin::cdn
