#include "cdn/kill_switch.h"

namespace origin::cdn {

bool OriginKillSwitch::should_send_origin(const std::string& client_tag) {
  auto& state = tags_[client_tag];
  if (!state.disabled) return true;
  ++state.queries_since_probe;
  if (!state.probe_outstanding &&
      state.queries_since_probe >= options_.probe_after) {
    state.queries_since_probe = 0;
    state.probe_outstanding = true;
    ++probes_;
    return true;
  }
  return false;
}

void OriginKillSwitch::record_outcome(const std::string& client_tag,
                                      bool origin_sent, bool torn_down) {
  // A connection without ORIGIN says nothing about ORIGIN tolerance.
  if (!origin_sent) return;
  auto& state = tags_[client_tag];
  if (state.disabled) {
    if (!state.probe_outstanding) return;
    state.probe_outstanding = false;
    if (!torn_down) {
      // Clean probe: the path tolerates ORIGIN again (vendor shipped the
      // fixed agent). Restart with an empty window.
      state.disabled = false;
      state.window.clear();
      state.torn_down = 0;
      ++reenables_;
    }
    return;
  }
  state.window.push_back(torn_down);
  if (torn_down) ++state.torn_down;
  while (state.window.size() > options_.window) {
    if (state.window.front()) --state.torn_down;
    state.window.pop_front();
  }
  if (state.window.size() >= options_.min_observations &&
      static_cast<double>(state.torn_down) >=
          options_.teardown_threshold *
              static_cast<double>(state.window.size())) {
    state.disabled = true;
    state.queries_since_probe = 0;
    state.probe_outstanding = false;
    ++disables_;
  }
}

bool OriginKillSwitch::disabled(const std::string& client_tag) const {
  auto it = tags_.find(client_tag);
  return it != tags_.end() && it->second.disabled;
}

bool abnormal_close(const std::string& reason) {
  for (const char* marker : {"teardown", "injected", "protocol error", "rst"}) {
    if (reason.find(marker) != std::string::npos) return true;
  }
  return false;
}

}  // namespace origin::cdn
