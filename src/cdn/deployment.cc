#include "cdn/deployment.h"

#include <algorithm>

#include "server/http2_server.h"
#include "util/check.h"
#include "util/fnv.h"
#include "util/thread_pool.h"

namespace origin::cdn {

using browser::Service;
using dns::IpAddress;
using origin::util::SimTime;

namespace {

// The isolated address the §5.2 deployment used (a new, unallocated one).
const IpAddress kSharedAddress = IpAddress::v4(0x0AFE0001);
// The isolated anycast prefix the §5.3 deployment moved the sample onto.
const IpAddress kAnycastAddress = IpAddress::v4(0x0AFE0100);

}  // namespace

Deployment::Deployment(dataset::Corpus& corpus, DeploymentOptions options)
    : corpus_(corpus),
      options_(std::move(options)),
      rng_(options_.seed),
      kill_switch_(options_.kill_switch),
      admission_(options_.admission) {
  // A valid, unused domain with the same byte length as the third party
  // (Figure 6: both groups' certificates grow by identical byte counts).
  control_pad_ = "unusedpad.control.io";
  while (control_pad_.size() < options_.third_party.size()) {
    control_pad_ += "x";
  }
  control_pad_ = control_pad_.substr(0, options_.third_party.size());
  ORIGIN_CHECK(control_pad_.size() == options_.third_party.size(),
               "control pad must match third-party length (Figure 6)");
}

std::size_t Deployment::prepare() {
  // §5.1: domains with the most requests to the third party. Rank order is
  // the request-volume proxy in the corpus.
  auto candidates =
      corpus_.sites_using(options_.third_party, options_.sample_size);
  experiment_sites_.clear();
  control_sites_.clear();
  std::size_t subpage_only = 0;
  for (std::size_t site : candidates) {
    // Drop domains where only subpages trigger the third-party request:
    // the active measurement visits the root page, so a site whose root
    // page never requests the third party cannot show the effect (§5.1's
    // 22%).
    web::Webpage page = corpus_.page_for_site(site);
    const bool root_page_uses_third_party = std::any_of(
        page.resources.begin(), page.resources.end(),
        [&](const web::Resource& r) {
          return r.hostname == options_.third_party;
        });
    if (!root_page_uses_third_party) {
      ++subpage_only;
      continue;
    }
    if (rng_.bernoulli(0.5)) {
      experiment_sites_.push_back(site);
    } else {
      control_sites_.push_back(site);
    }
  }
  subpage_only_dropped_ = subpage_only;
  reissue_certificates();
  return experiment_sites_.size() + control_sites_.size();
}

void Deployment::reissue_certificates() {
  auto reissue = [&](std::size_t site_index, const std::string& extra_san) {
    Service* service = corpus_.service_for_site(site_index);
    if (service == nullptr || service->certificate == nullptr) return;
    const tls::Certificate& old_cert = *service->certificate;
    auto* ca = corpus_.env().find_ca(old_cert.issuer);
    if (ca == nullptr) return;
    if (old_cert.san_dns.size() + 1 > ca->max_san_entries()) {
      // Renewal migrates to a CA whose limit accommodates the addition.
      ca = corpus_.env().find_ca("Sectigo RSA DV Secure Server CA");
    }
    auto reissued =
        ca->reissue_with_sans(old_cert, {extra_san}, SimTime::from_micros(0));
    if (reissued.ok()) {
      service->certificate =
          std::make_shared<tls::Certificate>(std::move(reissued).value());
    }
  };
  for (std::size_t site : experiment_sites_) {
    reissue(site, options_.third_party);
  }
  for (std::size_t site : control_sites_) {
    reissue(site, control_pad_);
  }
}

void Deployment::deploy_ip_coalescing() {
  // All sample domains (both groups — the only difference between groups
  // must be the certificate contents) and the third party move to one
  // shared address.
  auto move_site = [&](std::size_t site_index) {
    const auto& site = corpus_.sites()[site_index];
    Service* service = corpus_.service_for_site(site_index);
    if (service == nullptr) return;
    std::vector<std::string> hostnames = {site.domain};
    for (const auto& shard : site.shard_hostnames) hostnames.push_back(shard);
    // Snapshot the service's addresses before the first repoint mutates
    // them; all of the site's hostnames share that one service.
    const std::vector<dns::IpAddress> original = service->addresses;
    for (const auto& hostname : hostnames) {
      if (!saved_addresses_.contains(hostname)) {
        saved_addresses_[hostname] = original;
      }
      corpus_.env().repoint_dns(hostname, {kSharedAddress});
    }
    // Edge servers accept requests whose Host (third party) differs from
    // the SNI, passing domain-fronting checks (§5.2).
    service->served_hostnames.insert(options_.third_party);
  };
  for (std::size_t site : experiment_sites_) move_site(site);
  for (std::size_t site : control_sites_) move_site(site);

  if (Service* tp = corpus_.env().find_service(options_.third_party)) {
    if (!saved_addresses_.contains(options_.third_party)) {
      saved_addresses_[options_.third_party] = tp->addresses;
    }
    corpus_.env().repoint_dns(options_.third_party, {kSharedAddress});
  }
  ip_deployed_ = true;
}

void Deployment::undo_ip_coalescing() {
  for (const auto& [hostname, addresses] : saved_addresses_) {
    corpus_.env().repoint_dns(hostname, addresses);
  }
  saved_addresses_.clear();
  auto unshare = [&](std::size_t site_index) {
    Service* service = corpus_.service_for_site(site_index);
    if (service != nullptr) {
      service->served_hostnames.erase(options_.third_party);
    }
  };
  for (std::size_t site : experiment_sites_) unshare(site);
  for (std::size_t site : control_sites_) unshare(site);
  ip_deployed_ = false;
}

void Deployment::set_origin_frames(bool enabled) {
  auto configure = [&](std::size_t site_index, const std::string& advertised) {
    const auto& site = corpus_.sites()[site_index];
    Service* service = corpus_.service_for_site(site_index);
    if (service == nullptr) return;
    service->origin_frame_enabled = enabled;
    service->origin_advertisement.clear();
    if (enabled) {
      service->origin_advertisement = {"https://" + site.domain,
                                       "https://" + advertised};
      for (const auto& shard : site.shard_hostnames) {
        service->origin_advertisement.push_back("https://" + shard);
      }
      // The custom connection-terminating process can serve the third
      // party for the experiment group.
      if (advertised == options_.third_party) {
        service->served_hostnames.insert(options_.third_party);
      }
    } else {
      service->served_hostnames.erase(options_.third_party);
    }
  };
  for (std::size_t site : experiment_sites_) {
    configure(site, options_.third_party);
  }
  for (std::size_t site : control_sites_) {
    configure(site, control_pad_);
  }
}

void Deployment::deploy_origin_frames() {
  // §5.3: DNS changes from the IP experiment are undone (the operator's
  // traffic engineering is restored); the sample moves to an isolated
  // anycast address for observability.
  if (ip_deployed_) undo_ip_coalescing();
  auto move_site = [&](std::size_t site_index) {
    const auto& site = corpus_.sites()[site_index];
    Service* service = corpus_.service_for_site(site_index);
    if (service == nullptr) return;
    std::vector<std::string> hostnames = {site.domain};
    for (const auto& shard : site.shard_hostnames) hostnames.push_back(shard);
    const std::vector<dns::IpAddress> original = service->addresses;
    for (const auto& hostname : hostnames) {
      if (!saved_addresses_.contains(hostname)) {
        saved_addresses_[hostname] = original;
      }
      corpus_.env().repoint_dns(hostname, {kAnycastAddress});
    }
  };
  for (std::size_t site : experiment_sites_) move_site(site);
  for (std::size_t site : control_sites_) move_site(site);
  set_origin_frames(true);
  origin_deployed_ = true;
}

void Deployment::undo_origin_frames() {
  set_origin_frames(false);
  for (const auto& [hostname, addresses] : saved_addresses_) {
    corpus_.env().repoint_dns(hostname, addresses);
  }
  saved_addresses_.clear();
  origin_deployed_ = false;
}

Deployment::ActiveResult Deployment::run_active(const std::string& policy,
                                                std::uint64_t seed) {
  browser::LoaderOptions loader_options;
  loader_options.policy = policy;
  loader_options.seed = seed;
  browser::PageLoader loader(corpus_.env(), loader_options);

  ActiveResult result;
  origin::util::Rng churn_rng(seed ^ 0xC1124);
  auto visit = [&](std::size_t site_index, std::vector<double>& connections,
                   std::vector<double>& plts) {
    web::Webpage page = corpus_.page_for_site(site_index);
    // Sites evolve between selection and measurement: some dropped the
    // third party (switched to self-hosting the library) by visit time.
    if (churn_rng.bernoulli(options_.visit_churn)) {
      for (auto& resource : page.resources) {
        if (resource.hostname == options_.third_party) {
          resource.hostname = page.base_hostname;
        }
      }
    }
    web::PageLoad load = loader.load(page);
    double new_connections = 0;
    for (const auto& entry : load.entries) {
      if (entry.hostname != options_.third_party) continue;
      if (entry.new_tls_connection) new_connections += 1;
      if (entry.speculative_duplicate) new_connections += 1;
    }
    connections.push_back(new_connections);
    plts.push_back(load.page_load_time().as_millis());
  };
  for (std::size_t site : experiment_sites_) {
    visit(site, result.experiment_new_connections, result.experiment_plt_ms);
  }
  for (std::size_t site : control_sites_) {
    visit(site, result.control_new_connections, result.control_plt_ms);
  }
  return result;
}

Deployment::PassiveResult Deployment::run_passive_longitudinal(
    std::uint64_t days, std::uint64_t window_begin, std::uint64_t window_end,
    std::size_t loads_per_day, const std::string& policy) {
  PassiveResult result;
  result.first_day = 0;
  result.last_day = days;
  result.window_begin = window_begin;
  result.window_end = window_end;

  browser::LoaderOptions loader_options;
  loader_options.policy = policy;
  loader_options.seed = rng_.next();
  origin::util::Rng churn_rng(rng_.next());

  // Each visit's loader hands out connection ids from its own disjoint
  // block: the pipeline dedups on connection id across the whole run, so
  // ids must be globally unique and independent of worker scheduling.
  constexpr std::uint64_t kConnectionIdStride = 1ull << 20;
  std::uint64_t global_visit = 0;

  origin::util::ThreadPool pool(options_.threads);

  bool deployed = false;
  for (std::uint64_t day = 0; day < days; ++day) {
    const bool in_window = day >= window_begin && day < window_end;
    if (in_window && !deployed) {
      deploy_origin_frames();
      deployed = true;
    } else if (!in_window && deployed) {
      undo_origin_frames();
      deployed = false;
    }
    // Serial prepass: decide the day's visit plan — site rotation and churn
    // draws — in the exact order the serial loop makes them. The
    // environment is then read-only for the parallel loads (DNS toggles
    // only happen between days, above).
    struct Visit {
      std::size_t site = 0;
      measure::Treatment treatment = measure::Treatment::kControl;
      bool churned = false;
      std::uint64_t visit_index = 0;
    };
    std::vector<Visit> plan;
    auto plan_group = [&](const std::vector<std::size_t>& sites,
                          measure::Treatment treatment) {
      if (sites.empty()) return;
      for (std::size_t v = 0; v < loads_per_day; ++v) {
        Visit visit;
        visit.site = sites[(day * loads_per_day + v) % sites.size()];
        visit.treatment = treatment;
        visit.churned = churn_rng.bernoulli(options_.visit_churn);
        visit.visit_index = global_visit++;
        plan.push_back(visit);
      }
    };
    plan_group(experiment_sites_, measure::Treatment::kExperiment);
    plan_group(control_sites_, measure::Treatment::kControl);

    // Parallel page loads, one loader per visit.
    std::vector<web::PageLoad> loads(plan.size());
    pool.parallel_for_index(plan.size(), [&](std::size_t k) {
      const Visit& visit = plan[k];
      web::Webpage page = corpus_.page_for_site(visit.site);
      // Same resource-churn model as the active measurement.
      if (visit.churned) {
        for (auto& resource : page.resources) {
          if (resource.hostname == options_.third_party) {
            resource.hostname = page.base_hostname;
          }
        }
      }
      browser::LoaderOptions visit_options = loader_options;
      visit_options.seed = origin::util::fnv1a64_mix(loader_options.seed,
                                                     visit.visit_index);
      visit_options.first_connection_id =
          1 + visit.visit_index * kConnectionIdStride;
      browser::PageLoader loader(corpus_.env(), visit_options);
      loads[k] = loader.load(page);
    });

    // Serial aggregation in visit order.
    std::vector<measure::PassivePipeline::Observation> observations;
    observations.reserve(plan.size());
    for (std::size_t k = 0; k < plan.size(); ++k) {
      observations.push_back({&loads[k], plan[k].treatment, day});
    }
    result.pipeline.observe_batch(observations, options_.third_party,
                                  options_.threads);
  }
  if (deployed) undo_origin_frames();
  return result;
}

void Deployment::attach_kill_switch(server::Http2Server& server) {
  server.set_origin_gate([this](const std::string& client_tag) {
    return kill_switch_.should_send_origin(client_tag);
  });
  server.set_close_feedback([this](const std::string& client_tag,
                                   bool origin_sent,
                                   const std::string& reason) {
    kill_switch_.record_outcome(client_tag, origin_sent,
                                abnormal_close(reason));
  });
}

void Deployment::attach_admission(server::Http2Server& server) {
  server.set_admission_gate([this](const std::string& client_tag) {
    return admission_.admit(client_tag);
  });
  server.set_admission_feedback(
      [this](const std::string& client_tag, const std::string& reason) {
        admission_.record_close(client_tag, reason);
      });
}

}  // namespace origin::cdn
