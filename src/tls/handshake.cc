#include "tls/handshake.h"

namespace origin::tls {

HandshakeResult simulate_handshake(const CertificateChain& chain,
                                   const HandshakeParams& params) {
  HandshakeResult result;
  result.chain_bytes = chain.total_size_bytes();
  if (result.chain_bytes >= params.browser_chain_limit) {
    // SSL protocol error surfaced to the user; no connection.
    result.ok = false;
    result.duration = params.rtt;  // time wasted before the failure
    result.round_trips = 1;
    return result;
  }
  result.tls_records = static_cast<int>(
      (result.chain_bytes + params.tls_record_limit - 1) /
      params.tls_record_limit);
  // 1 RTT baseline; every additional cwnd of certificate bytes costs one
  // more RTT while the client waits for the rest of the flight.
  int extra_rtts = 0;
  if (result.chain_bytes > params.init_cwnd_bytes) {
    extra_rtts = static_cast<int>((result.chain_bytes - 1) /
                                  params.init_cwnd_bytes);
  }
  result.round_trips = 1 + extra_rtts;
  result.duration =
      params.rtt * static_cast<double>(result.round_trips) + params.crypto_cost;
  result.ok = true;
  return result;
}

HandshakeResult simulate_resumption(const HandshakeParams& params) {
  HandshakeResult result;
  result.ok = true;
  result.round_trips = 0;
  result.tls_records = 0;
  result.duration = params.crypto_cost * 0.25;
  return result;
}

}  // namespace origin::tls
