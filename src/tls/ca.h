// Certificate authority: issuance, re-issuance with SAN additions (the
// operation §5.1 of the paper performs on 5000 production certificates),
// and per-CA SAN-count limits (§6.5: Let's Encrypt/DigiCert/GoDaddy cap at
// 100 names, Comodo at 2000).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tls/certificate.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace origin::tls {

class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, std::uint64_t key_seed,
                       std::size_t max_san_entries = 100);

  const std::string& name() const { return name_; }
  std::uint64_t key_id() const { return key_id_; }
  std::size_t max_san_entries() const { return max_san_entries_; }
  std::uint64_t certificates_issued() const { return issued_; }

  // Issues a certificate valid for 90 days from `now`. Fails when the SAN
  // list exceeds this CA's limit.
  [[nodiscard]] origin::util::Result<Certificate> issue(
      const std::string& subject_common_name,
      std::vector<std::string> san_dns, origin::util::SimTime now);

  // Re-issues `existing` with extra SAN entries appended (deduplicated),
  // fresh serial and validity — the §5.1 certificate-renewal operation.
  [[nodiscard]] origin::util::Result<Certificate> reissue_with_sans(
      const Certificate& existing, const std::vector<std::string>& extra_sans,
      origin::util::SimTime now);

  // Did this CA sign `cert` (MAC check)?
  bool verify(const Certificate& cert) const;

 private:
  std::uint64_t sign(const Certificate& cert) const;

  std::string name_;
  std::uint64_t key_id_;
  std::size_t max_san_entries_;
  std::uint64_t next_serial_ = 1;
  std::uint64_t issued_ = 0;
};

// A trust store over a set of CAs plus full-chain validation: expiry,
// signature, hostname coverage. Validation outcomes and counts feed the
// paper's "certificate validations" metric (§4.2).
class TrustStore {
 public:
  void add_ca(const CertificateAuthority* ca) { cas_.push_back(ca); }

  enum class Outcome {
    kOk,
    kExpired,
    kNotYetValid,
    kUnknownIssuer,
    kBadSignature,
    kHostnameMismatch,
  };
  static const char* outcome_name(Outcome outcome);

  Outcome validate(const Certificate& cert, std::string_view hostname,
                   origin::util::SimTime now) const;

  // Total validations performed (each is one client-side crypto check).
  std::uint64_t validation_count() const {
    return validations_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<const CertificateAuthority*> cas_;
  // Atomic: every concurrent page load validates through the one shared
  // store; the count is an order-independent sum.
  mutable std::atomic<std::uint64_t> validations_ = 0;
};

}  // namespace origin::tls
