// Server-side certificate selection by TLS SNI.
//
// A server (or CDN edge) holds many certificates; on ClientHello it picks
// the one that covers the SNI hostname, preferring an exact SAN match over
// a wildcard match, then the certificate with fewer SAN entries (the most
// specific deployment artifact).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tls/certificate.h"

namespace origin::tls {

class CertStore {
 public:
  // Adds a certificate; returns its slot id for later replacement.
  std::size_t add(Certificate cert);

  // Replaces the certificate in `slot` (certificate rotation/reissue).
  void replace(std::size_t slot, Certificate cert);

  // Picks the best certificate for `sni`, or nullptr when none covers it.
  const Certificate* select(std::string_view sni) const;

  std::size_t size() const { return certs_.size(); }
  const std::vector<Certificate>& all() const { return certs_; }

 private:
  std::vector<Certificate> certs_;
};

}  // namespace origin::tls
