#include "tls/sni.h"

#include "util/strings.h"

namespace origin::tls {

std::size_t CertStore::add(Certificate cert) {
  certs_.push_back(std::move(cert));
  return certs_.size() - 1;
}

void CertStore::replace(std::size_t slot, Certificate cert) {
  certs_.at(slot) = std::move(cert);
}

const Certificate* CertStore::select(std::string_view sni) const {
  const Certificate* best = nullptr;
  bool best_exact = false;
  for (const auto& cert : certs_) {
    bool exact = false;
    bool covered = false;
    for (const auto& san : cert.san_dns) {
      if (san == sni) {
        exact = true;
        covered = true;
        break;
      }
      if (origin::util::wildcard_matches(san, sni)) covered = true;
    }
    if (!covered && cert.san_dns.empty() &&
        origin::util::wildcard_matches(cert.subject_common_name, sni)) {
      covered = true;
      exact = cert.subject_common_name == sni;
    }
    if (!covered) continue;
    if (best == nullptr || (exact && !best_exact) ||
        (exact == best_exact &&
         cert.san_dns.size() < best->san_dns.size())) {
      best = &cert;
      best_exact = exact;
    }
  }
  return best;
}

}  // namespace origin::tls
