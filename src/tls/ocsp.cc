#include "tls/ocsp.h"

namespace origin::tls {

const char* ocsp_status_name(OcspStatus status) {
  switch (status) {
    case OcspStatus::kGood: return "good";
    case OcspStatus::kRevoked: return "revoked";
    case OcspStatus::kUnknown: return "unknown";
  }
  return "?";
}

void OcspResponder::revoke(std::uint64_t serial, origin::util::SimTime when) {
  revoked_.emplace(serial, when);
}

OcspResponse OcspResponder::query(const Certificate& cert,
                                  origin::util::SimTime now) const {
  ++queries_;
  OcspResponse response;
  response.produced_at = now;
  response.next_update = now + validity_;
  response.responder_key = ca_.key_id();
  if (cert.issuer_key_id != ca_.key_id()) {
    response.status = OcspStatus::kUnknown;  // not our certificate
    return response;
  }
  auto it = revoked_.find(cert.serial);
  response.status = (it != revoked_.end() && now >= it->second)
                        ? OcspStatus::kRevoked
                        : OcspStatus::kGood;
  return response;
}

bool OcspChecker::check(const Certificate& cert, origin::util::SimTime now) {
  auto cached = cache_.find(cert.serial);
  if (cached != cache_.end() && now < cached->second.response.next_update) {
    ++cache_hits_;
    return cached->second.response.status != OcspStatus::kRevoked;
  }
  for (const auto* responder : responders_) {
    ++network_queries_;
    OcspResponse response = responder->query(cert, now);
    if (response.status == OcspStatus::kUnknown) continue;
    cache_[cert.serial] = CacheEntry{response};
    return response.status != OcspStatus::kRevoked;
  }
  // No responder knew the certificate: soft-fail accepts, hard-fail
  // rejects.
  return !hard_fail_;
}

}  // namespace origin::tls
