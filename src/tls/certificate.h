// Structural certificate model.
//
// Coalescing decisions depend only on (a) which hostnames a certificate
// covers via its Subject Alternative Names, (b) whether the chain verifies
// back to a trusted CA, and (c) the certificate's wire size (large SAN
// lists overflow TLS records — paper §6.5). Signatures are therefore
// simulated: a deterministic 64-bit MAC over the certificate fields keyed
// by the CA's key id. This preserves every behaviour the paper measures
// without real cryptography.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace origin::tls {

struct Certificate {
  std::uint64_t serial = 0;
  std::string subject_common_name;
  std::string issuer;                  // CA display name
  std::uint64_t issuer_key_id = 0;
  std::vector<std::string> san_dns;    // may contain "*." wildcards
  origin::util::SimTime not_before;
  origin::util::SimTime not_after;
  std::uint64_t public_key_id = 0;
  std::uint64_t signature = 0;         // MAC over fields, keyed by CA

  // Does this certificate authorize `hostname` (exact SAN or single-label
  // wildcard)? Per RFC 6125 the SAN list is authoritative; the CN is only a
  // fallback when no SAN extension is present.
  bool covers(std::string_view hostname) const;

  bool has_san_extension() const { return !san_dns.empty(); }

  // Deterministic serialized size in bytes: DER-ish overhead + subject +
  // issuer + per-SAN entries + key + signature. Drives the §6.5 handshake
  // fragmentation model.
  std::size_t size_bytes() const;

  // The byte string the signature covers.
  std::string to_be_signed() const;
};

// An end-entity certificate plus its (single) intermediate chain entry, as
// presented during the handshake.
struct CertificateChain {
  Certificate leaf;
  std::vector<Certificate> intermediates;

  std::size_t total_size_bytes() const;
};

}  // namespace origin::tls
