#include "tls/ca.h"

#include <algorithm>

#include "util/fnv.h"

namespace origin::tls {

namespace {
constexpr auto kValidity = origin::util::Duration::seconds(90.0 * 86400.0);
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           std::uint64_t key_seed,
                                           std::size_t max_san_entries)
    : name_(std::move(name)),
      key_id_(origin::util::fnv1a64(name_, key_seed)),
      max_san_entries_(max_san_entries) {}

std::uint64_t CertificateAuthority::sign(const Certificate& cert) const {
  return origin::util::fnv1a64(cert.to_be_signed(), key_id_);
}

origin::util::Result<Certificate> CertificateAuthority::issue(
    const std::string& subject_common_name, std::vector<std::string> san_dns,
    origin::util::SimTime now) {
  // Deduplicate while preserving order (first occurrence wins).
  std::vector<std::string> unique;
  for (auto& san : san_dns) {
    if (std::find(unique.begin(), unique.end(), san) == unique.end()) {
      unique.push_back(std::move(san));
    }
  }
  if (unique.size() > max_san_entries_) {
    return origin::util::make_error(name_ + ": SAN limit " +
                                    std::to_string(max_san_entries_) +
                                    " exceeded");
  }
  Certificate cert;
  cert.serial = next_serial_++;
  cert.subject_common_name = subject_common_name;
  cert.issuer = name_;
  cert.issuer_key_id = key_id_;
  cert.san_dns = std::move(unique);
  cert.not_before = now;
  cert.not_after = now + kValidity;
  cert.public_key_id =
      origin::util::fnv1a64(subject_common_name, cert.serial);
  cert.signature = sign(cert);
  ++issued_;
  return cert;
}

origin::util::Result<Certificate> CertificateAuthority::reissue_with_sans(
    const Certificate& existing, const std::vector<std::string>& extra_sans,
    origin::util::SimTime now) {
  std::vector<std::string> sans = existing.san_dns;
  for (const auto& san : extra_sans) sans.push_back(san);
  return issue(existing.subject_common_name, std::move(sans), now);
}

bool CertificateAuthority::verify(const Certificate& cert) const {
  return cert.issuer_key_id == key_id_ && cert.signature == sign(cert);
}

const char* TrustStore::outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kExpired: return "expired";
    case Outcome::kNotYetValid: return "not-yet-valid";
    case Outcome::kUnknownIssuer: return "unknown-issuer";
    case Outcome::kBadSignature: return "bad-signature";
    case Outcome::kHostnameMismatch: return "hostname-mismatch";
  }
  return "?";
}

TrustStore::Outcome TrustStore::validate(const Certificate& cert,
                                         std::string_view hostname,
                                         origin::util::SimTime now) const {
  validations_.fetch_add(1, std::memory_order_relaxed);
  if (now < cert.not_before) return Outcome::kNotYetValid;
  if (now > cert.not_after) return Outcome::kExpired;
  const CertificateAuthority* issuer = nullptr;
  for (const auto* ca : cas_) {
    if (ca->key_id() == cert.issuer_key_id) {
      issuer = ca;
      break;
    }
  }
  if (issuer == nullptr) return Outcome::kUnknownIssuer;
  if (!issuer->verify(cert)) return Outcome::kBadSignature;
  if (!cert.covers(hostname)) return Outcome::kHostnameMismatch;
  return Outcome::kOk;
}

}  // namespace origin::tls
