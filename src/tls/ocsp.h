// Online Certificate Status Protocol (RFC 6960; paper §6.2).
//
// The paper notes OCSP as the revocation channel that keeps confidence in
// a certificate's validity *without DNS* — relevant because ORIGIN-based
// coalescing removes the per-subresource DNS touchpoint. Each CA runs a
// responder; clients check leaf status (with response caching and the
// industry-standard soft-fail default) as part of validation.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "tls/ca.h"
#include "tls/certificate.h"
#include "util/sim_time.h"

namespace origin::tls {

enum class OcspStatus { kGood, kRevoked, kUnknown };

const char* ocsp_status_name(OcspStatus status);

struct OcspResponse {
  OcspStatus status = OcspStatus::kUnknown;
  origin::util::SimTime produced_at;
  origin::util::SimTime next_update;  // validity horizon of this response
  std::uint64_t responder_key = 0;    // "signed by" the CA's key
};

// One CA's OCSP responder.
class OcspResponder {
 public:
  OcspResponder(const CertificateAuthority& ca,
                origin::util::Duration validity =
                    origin::util::Duration::seconds(7 * 86400.0))
      : ca_(ca), validity_(validity) {}

  // Marks a serial revoked from `when` onward.
  void revoke(std::uint64_t serial, origin::util::SimTime when);

  OcspResponse query(const Certificate& cert, origin::util::SimTime now) const;
  std::uint64_t queries_served() const { return queries_; }

 private:
  const CertificateAuthority& ca_;
  origin::util::Duration validity_;
  std::map<std::uint64_t, origin::util::SimTime> revoked_;
  mutable std::uint64_t queries_ = 0;
};

// Client-side checker: caches responses until next_update; unreachable or
// unknown responders soft-fail (browsers' long-standing behaviour) unless
// hard-fail is requested.
class OcspChecker {
 public:
  void add_responder(const OcspResponder* responder) {
    responders_.push_back(responder);
  }
  void set_hard_fail(bool hard_fail) { hard_fail_ = hard_fail; }

  // True when the certificate is acceptable revocation-wise.
  bool check(const Certificate& cert, origin::util::SimTime now);

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t network_queries() const { return network_queries_; }

 private:
  std::vector<const OcspResponder*> responders_;
  bool hard_fail_ = false;
  struct CacheEntry {
    OcspResponse response;
  };
  std::map<std::uint64_t, CacheEntry> cache_;  // by serial
  std::uint64_t cache_hits_ = 0;
  std::uint64_t network_queries_ = 0;
};

}  // namespace origin::tls
