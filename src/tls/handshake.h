// TLS handshake cost model.
//
// TLS 1.3 completes in one round trip, but the server's certificate chain
// rides in the first flight: when the chain exceeds what the server's
// initial congestion window can carry, the client needs additional round
// trips before it can finish the handshake (paper §6.5, citing [16]).
// TLS records also cap at 16 KiB, so oversized certificates fragment.
// Browsers reject absurdly large certificates outright (the paper cites
// 10000-SAN badssl failing to load).
#pragma once

#include <cstdint>

#include "tls/certificate.h"
#include "util/sim_time.h"

namespace origin::tls {

struct HandshakeParams {
  origin::util::Duration rtt = origin::util::Duration::millis(30);
  // Server initial congestion window in bytes (10 segments of ~1460B).
  std::size_t init_cwnd_bytes = 14600;
  std::size_t tls_record_limit = 16384;
  // Chains at/above this size abort with an SSL protocol error in browsers.
  std::size_t browser_chain_limit = 262144;
  // Fixed crypto compute per handshake (key exchange + signature verify).
  origin::util::Duration crypto_cost = origin::util::Duration::millis(1.0);
};

struct HandshakeResult {
  bool ok = false;
  origin::util::Duration duration;
  int round_trips = 0;        // network RTTs consumed
  int tls_records = 0;        // records carrying the certificate chain
  std::size_t chain_bytes = 0;
};

// Cost of a full TLS 1.3 handshake presenting `chain`.
HandshakeResult simulate_handshake(const CertificateChain& chain,
                                   const HandshakeParams& params);

// Cost of a TLS 1.3 0-RTT resumption (no certificate transfer).
HandshakeResult simulate_resumption(const HandshakeParams& params);

}  // namespace origin::tls
