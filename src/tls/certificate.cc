#include "tls/certificate.h"

#include "util/fnv.h"
#include "util/strings.h"

namespace origin::tls {

bool Certificate::covers(std::string_view hostname) const {
  if (!has_san_extension()) {
    // Legacy CN-only certificate.
    return origin::util::wildcard_matches(subject_common_name, hostname);
  }
  for (const auto& san : san_dns) {
    if (origin::util::wildcard_matches(san, hostname)) return true;
  }
  return false;
}

std::size_t Certificate::size_bytes() const {
  // Calibrated against typical DER sizes: ~500B fixed structure, ~300B
  // ECDSA P-256 key + signature, plus SAN encoding overhead.
  std::size_t size = 800;
  size += subject_common_name.size() + issuer.size();
  for (const auto& san : san_dns) size += san.size() + 4;  // type+len headers
  return size;
}

std::string Certificate::to_be_signed() const {
  std::string out;
  out += std::to_string(serial);
  out += '|';
  out += subject_common_name;
  out += '|';
  out += issuer;
  out += '|';
  for (const auto& san : san_dns) {
    out += san;
    out += ',';
  }
  out += '|';
  out += std::to_string(not_before.micros());
  out += '|';
  out += std::to_string(not_after.micros());
  out += '|';
  out += std::to_string(public_key_id);
  return out;
}

std::size_t CertificateChain::total_size_bytes() const {
  std::size_t total = leaf.size_bytes();
  for (const auto& c : intermediates) total += c.size_bytes();
  return total;
}

}  // namespace origin::tls
