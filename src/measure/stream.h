// Passive-pipeline adapter for the streamed corpus replay (paper §5.2 over
// DESIGN.md §14's out-of-core pipeline).
//
// dataset::StreamingCorpus knows nothing about measurement; it exposes a
// ShardObserver hook called serially in site order. This adapter feeds
// each decoded shard into a PassivePipeline with the paper's Referer-based
// treatment split, attributing treatment and observation day as pure
// functions of the page's eligible-site ordinal — so the streamed and
// materialized paths (and every thread count and shard size) observe
// byte-identical record streams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/corpus.h"
#include "measure/passive.h"
#include "web/har.h"

namespace origin::measure {

// §5.2 attribution: pure functions of the eligible-site ordinal.
inline Treatment treatment_for_ordinal(std::size_t ordinal) {
  return ordinal % 2 == 0 ? Treatment::kControl : Treatment::kExperiment;
}
inline std::uint64_t day_for_ordinal(std::size_t ordinal) {
  return ordinal % 7;
}

// Headline aggregates of one streamed passive replay.
struct PassiveStreamStats {
  std::uint64_t sampled = 0;
  std::uint64_t control_connections = 0;
  std::uint64_t experiment_connections = 0;
  double reduction_vs_control = 0.0;
};

// Plugs the passive pipeline into dataset::StreamingOptions::observer (or
// run_materialized, which reports the whole corpus as one shard — the
// record stream is identical either way).
class PassiveShardObserver : public dataset::ShardObserver {
 public:
  PassiveShardObserver(std::string domain, double sample_rate = 0.01,
                       std::uint64_t seed = 0xCD4, std::size_t threads = 1)
      : domain_(std::move(domain)),
        threads_(threads),
        pipeline_(sample_rate, seed) {}

  void on_shard(const std::vector<web::PageLoad>& pages,
                std::size_t first_ordinal) override;
  // Resets the pipeline so a restarted (crash-resumed) sweep observes one
  // clean stream instead of double-counting replayed shards.
  void on_stream_restart() override { pipeline_.reset(); }

  const PassivePipeline& pipeline() const { return pipeline_; }
  PassiveStreamStats stats() const;

 private:
  std::string domain_;
  std::size_t threads_;
  PassivePipeline pipeline_;
  std::vector<PassivePipeline::Observation> observations_;  // reused
};

}  // namespace origin::measure
