// Server-side passive measurement pipeline (paper §5.2).
//
// The production pipeline sampled 1% of HTTP requests and, because nothing
// in TLS or HTTP marks a request as "coalesced", was extended with exactly
// three signals: (i) a flag bit set when the HTTP Host differs from the
// TLS SNI, (ii) the treatment label, and (iii) the request's arrival order
// on its connection. Coalescing is then counted from flagged requests with
// arrival order >= 2, deduplicated per connection. This class reimplements
// that method over simulated request logs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/flat_map.h"
#include "web/har.h"

namespace origin::measure {

enum class Treatment { kControl, kExperiment };

struct LogRecord {
  std::uint64_t connection_id = 0;
  std::string sni;        // hostname the connection was opened for
  std::string host;       // HTTP Host of this request
  bool host_differs_sni = false;  // the §5.2 flag bit
  Treatment treatment = Treatment::kControl;
  std::uint32_t arrival_order = 0;  // 1-based within the connection
  std::uint64_t day = 0;            // observation day (longitudinal axis)
};

class PassivePipeline {
 public:
  explicit PassivePipeline(double sample_rate = 0.01,
                           std::uint64_t seed = 0xCD4)
      : sample_rate_(sample_rate), seed_(seed) {}

  // Feeds one page load's requests to the third-party `domain`. The
  // referrer (base hostname) determines the treatment group, as in the
  // paper's Referer-based attribution.
  //
  // Sampling is a pure hash of (seed, connection id, arrival order, day,
  // treatment) rather than a stateful RNG draw, so whether a request is
  // sampled never depends on how many requests other workers observed
  // first — the property that lets sharded aggregation stay bit-identical
  // to the serial pipeline.
  void observe(const web::PageLoad& load, const std::string& domain,
               Treatment treatment, std::uint64_t day);

  // One page load awaiting aggregation (observe_batch input).
  struct Observation {
    const web::PageLoad* load = nullptr;
    Treatment treatment = Treatment::kControl;
    std::uint64_t day = 0;
  };
  // Aggregates a batch on a thread pool (threads: 0 = ORIGIN_THREADS
  // default, 1 = serial fallback). Per-load deltas are computed in parallel
  // and applied serially in input order, so records land in exactly the
  // order the serial observe() loop would produce.
  void observe_batch(const std::vector<Observation>& observations,
                     const std::string& domain, std::size_t threads = 1);

  // Folds another pipeline's aggregates into this one (record order:
  // ours first, then theirs). Both must share sample_rate and seed so the
  // merged result equals a single pipeline having observed both streams.
  void merge(const PassivePipeline& other);

  // Drops every record and counter, keeping sample_rate and seed. A
  // crashed-and-resumed streamed replay restarts its sweep from shard 0;
  // resetting here makes the re-observation indistinguishable from a
  // single uninterrupted stream (dataset::ShardObserver::on_stream_restart).
  void reset();

  // New TLS connections to the third party per treatment (per day).
  std::uint64_t new_connections(Treatment treatment) const;
  std::uint64_t new_connections_on_day(Treatment treatment,
                                       std::uint64_t day) const;
  // Per-(treatment, day) connection counts sorted by key — the emit path
  // for report tables, independent of observation order and thread count.
  struct DayRow {
    int treatment = 0;  // 0 control, 1 experiment
    std::uint64_t day = 0;
    std::uint64_t connections = 0;
  };
  std::vector<DayRow> day_connection_rows() const;
  // Coalesced connections counted by the flag-bit method: flagged requests
  // with arrival order >= 2, each connection counted once.
  std::uint64_t coalesced_connections(Treatment treatment) const;
  std::uint64_t sampled_records() const { return records_.size(); }
  const std::vector<LogRecord>& records() const { return records_; }

  // §5.2 headline: reduction in the rate of new TLS connections to the
  // third party, experiment relative to control.
  double reduction_vs_control() const;

 private:
  // Everything one observe() call adds to the pipeline. Deltas are pure
  // functions of (load, domain, treatment, day), which is what makes the
  // parallel batch path exact.
  // Accumulation is keyed and commutative (+= per key), so the flat map's
  // insertion-dependent iteration order never leaks into results.
  using DayConnections =
      util::FlatMap<std::pair<int, std::uint64_t>, std::uint64_t>;

  struct Delta {
    std::vector<LogRecord> records;
    DayConnections day_connections;
    std::uint64_t control_connections = 0;
    std::uint64_t experiment_connections = 0;
  };
  Delta observe_one(const web::PageLoad& load, const std::string& domain,
                    Treatment treatment, std::uint64_t day) const;
  void apply(Delta&& delta);
  bool sampled(std::uint64_t connection_id, std::uint32_t arrival_order,
               Treatment treatment, std::uint64_t day) const;

  double sample_rate_;
  std::uint64_t seed_;
  std::vector<LogRecord> records_;
  // Full (unsampled) connection counts, as the CDN's connection logs see
  // every handshake even when request logs are sampled.
  DayConnections day_connections_;
  std::uint64_t control_connections_ = 0;
  std::uint64_t experiment_connections_ = 0;
};

}  // namespace origin::measure
