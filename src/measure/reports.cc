#include "measure/reports.h"

#include <algorithm>
#include <set>

#include "dataset/catalog.h"
#include "util/strings.h"

namespace origin::measure {

using origin::util::format_count;
using origin::util::format_double;
using origin::util::format_pct;
using origin::util::Table;

void DatasetReport::add(const dataset::SiteInfo& site,
                        const web::PageLoad& load) {
  ++pages_;
  // Bucket by rank (Table 1 structure).
  const auto& buckets = dataset::rank_buckets();
  std::size_t bucket_index = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (site.rank >= buckets[b].rank_begin && site.rank < buckets[b].rank_end) {
      bucket_index = b;
      break;
    }
  }
  BucketStats& bucket = buckets_[bucket_index];
  ++bucket.successes;
  bucket.requests.push_back(static_cast<double>(load.request_count()));
  bucket.plt_ms.push_back(load.page_load_time().as_millis());
  bucket.dns.push_back(static_cast<double>(load.dns_query_count()));
  bucket.tls.push_back(static_cast<double>(load.tls_connection_count()));

  requests_per_page_.push_back(static_cast<double>(load.request_count()));
  plt_ms_.push_back(load.page_load_time().as_millis());
  dns_per_page_.push_back(static_cast<double>(load.dns_query_count()));
  tls_per_page_.push_back(static_cast<double>(load.tls_connection_count()));

  std::set<std::uint32_t> page_asns;
  for (const auto& entry : load.entries) {
    ++total_requests_;
    if (entry.asn != 0) {
      ++asn_requests_[entry.asn];
      page_asns.insert(entry.asn);
    }
    ++protocol_requests_[entry.version];
    if (entry.secure) ++secure_requests_;
    ++content_requests_[entry.content_type];
    ++asn_content_[entry.asn][entry.content_type];
    ++hostname_requests_[entry.hostname];
    if (entry.cert_san_count >= 0) {
      ++issuer_validations_[entry.cert_issuer];
      ++total_validations_;
    }
  }
  if (!page_asns.empty()) {
    unique_as_histogram_.add(static_cast<std::int64_t>(page_asns.size()));
  }
  // Attribute AS organization names lazily from the catalog.
  for (const auto& provider : dataset::providers()) {
    if (provider.asn != 0) asn_org_[provider.asn] = provider.organization;
  }
  (void)site;
}

Table DatasetReport::table1_summary() const {
  Table table({"Rank", "Success", "#Reqs", "PLT (ms)", "#DNS", "#TLS"});
  static const char* kLabels[] = {"1-100K", "100K-200K", "200K-300K",
                                  "300K-400K", "400K-500K"};
  std::vector<double> all_reqs, all_plt, all_dns, all_tls;
  std::uint64_t total_success = 0;
  for (const auto& [index, bucket] : buckets_) {
    table.add_row({kLabels[index], format_count(bucket.successes),
                   format_double(origin::util::percentile(bucket.requests, 50), 0),
                   format_double(origin::util::percentile(bucket.plt_ms, 50), 1),
                   format_double(origin::util::percentile(bucket.dns, 50), 0),
                   format_double(origin::util::percentile(bucket.tls, 50), 0)});
    total_success += bucket.successes;
    all_reqs.insert(all_reqs.end(), bucket.requests.begin(), bucket.requests.end());
    all_plt.insert(all_plt.end(), bucket.plt_ms.begin(), bucket.plt_ms.end());
    all_dns.insert(all_dns.end(), bucket.dns.begin(), bucket.dns.end());
    all_tls.insert(all_tls.end(), bucket.tls.begin(), bucket.tls.end());
  }
  table.add_row({"Total", format_count(total_success),
                 format_double(origin::util::percentile(all_reqs, 50), 0),
                 format_double(origin::util::percentile(all_plt, 50), 1),
                 format_double(origin::util::percentile(all_dns, 50), 0),
                 format_double(origin::util::percentile(all_tls, 50), 0)});
  auto mean = [](const std::vector<double>& v) {
    double sum = 0;
    for (double x : v) sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
  };
  table.add_row({"mean", "",
                 format_double(mean(all_reqs), 1), format_double(mean(all_plt), 1),
                 format_double(mean(all_dns), 2), format_double(mean(all_tls), 2)});
  return table;
}

Table DatasetReport::table2_ases(std::size_t top_n) const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(
      asn_requests_.begin(), asn_requests_.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"Rank", "AS Number", "Org. Name", "#Req", "%"});
  double cumulative = 0.0;
  for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
    const auto& [asn, count] = ranked[i];
    auto org = asn_org_.find(asn);
    const double share =
        static_cast<double>(count) / static_cast<double>(total_requests_);
    cumulative += share;
    table.add_row({std::to_string(i + 1), "AS " + std::to_string(asn),
                   org != asn_org_.end() ? org->second : "(long tail)",
                   format_count(count), format_double(share * 100.0, 2)});
  }
  table.add_row({"", "", "Total", "", format_double(cumulative * 100.0, 2)});
  return table;
}

Table DatasetReport::table3_protocols() const {
  std::vector<std::pair<web::HttpVersion, std::uint64_t>> ranked(
      protocol_requests_.begin(), protocol_requests_.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"Protocol", "# Requests", "%"});
  for (const auto& [version, count] : ranked) {
    table.add_row({web::http_version_name(version), format_count(count),
                   format_double(100.0 * static_cast<double>(count) /
                                     static_cast<double>(total_requests_),
                                 2)});
  }
  table.add_row({"Total", format_count(total_requests_), "100.00"});
  table.add_row({"Secure", format_count(secure_requests_),
                 format_double(100.0 * static_cast<double>(secure_requests_) /
                                   static_cast<double>(total_requests_),
                               2)});
  table.add_row(
      {"Insecure", format_count(total_requests_ - secure_requests_),
       format_double(100.0 *
                         static_cast<double>(total_requests_ - secure_requests_) /
                         static_cast<double>(total_requests_),
                     2)});
  return table;
}

Table DatasetReport::table4_issuers(std::size_t top_n) const {
  std::vector<std::pair<std::string, std::uint64_t>> ranked(
      issuer_validations_.begin(), issuer_validations_.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"Certificate Issuer", "# Validations", "%"});
  for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
    table.add_row({ranked[i].first, format_count(ranked[i].second),
                   format_double(100.0 * static_cast<double>(ranked[i].second) /
                                     static_cast<double>(total_validations_),
                                 2)});
  }
  table.add_row({"Total validations (" +
                     format_pct(static_cast<double>(total_validations_) /
                                static_cast<double>(total_requests_)) +
                     " of requests)",
                 format_count(total_validations_), "100.00"});
  return table;
}

Table DatasetReport::table5_content_types(std::size_t top_n) const {
  std::vector<std::pair<web::ContentType, std::uint64_t>> ranked(
      content_requests_.begin(), content_requests_.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"Content Type", "# Req", "%"});
  std::size_t shown = 0;
  for (const auto& [type, count] : ranked) {
    if (type == web::ContentType::kOther) continue;  // paper lists named types
    if (shown++ >= top_n) break;
    table.add_row({web::content_type_name(type), format_count(count),
                   format_double(100.0 * static_cast<double>(count) /
                                     static_cast<double>(total_requests_),
                                 2)});
  }
  return table;
}

Table DatasetReport::table6_as_content(std::size_t top_ases,
                                       std::size_t top_types) const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked_as(
      asn_requests_.begin(), asn_requests_.end());
  std::sort(ranked_as.begin(), ranked_as.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"ASN", "Content Type", "#Req", "%"});
  for (std::size_t i = 0; i < std::min(top_ases, ranked_as.size()); ++i) {
    const std::uint32_t asn = ranked_as[i].first;
    const auto as_total = static_cast<double>(ranked_as[i].second);
    auto org = asn_org_.find(asn);
    auto content = asn_content_.find(asn);
    if (content == asn_content_.end()) continue;
    std::vector<std::pair<web::ContentType, std::uint64_t>> ranked_types(
        content->second.begin(), content->second.end());
    std::sort(ranked_types.begin(), ranked_types.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::size_t shown = 0;
    for (const auto& [type, count] : ranked_types) {
      if (type == web::ContentType::kOther) continue;
      if (shown++ >= top_types) break;
      table.add_row(
          {(org != asn_org_.end() ? org->second : std::to_string(asn)) +
               " (AS " + std::to_string(asn) + ")",
           web::content_type_name(type), format_count(count),
           format_double(100.0 * static_cast<double>(count) / as_total, 2)});
    }
  }
  return table;
}

Table DatasetReport::table7_hostnames(std::size_t top_n) const {
  std::vector<std::pair<std::string, std::uint64_t>> ranked;
  for (const auto& [hostname, count] : hostname_requests_) {
    // Subresource hostnames only: skip per-site first-party names, which
    // can never rank globally.
    ranked.emplace_back(hostname, count);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"Hostname", "#Req", "%"});
  for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
    table.add_row({ranked[i].first, format_count(ranked[i].second),
                   format_double(100.0 * static_cast<double>(ranked[i].second) /
                                     static_cast<double>(total_requests_),
                                 2)});
  }
  return table;
}

Table DatasetReport::fig1_unique_ases(std::size_t max_bin) const {
  Table table({"# Unique ASes", "% of pages", "CDF"});
  const double total = static_cast<double>(unique_as_histogram_.total());
  double cumulative = 0.0;
  for (std::size_t bin = 1; bin <= max_bin; ++bin) {
    const double frac =
        static_cast<double>(
            unique_as_histogram_.count(static_cast<std::int64_t>(bin))) /
        total;
    cumulative += frac;
    table.add_row({std::to_string(bin), format_double(frac * 100.0, 2),
                   format_double(cumulative, 3)});
  }
  // Remaining tail mass.
  table.add_row({"> " + std::to_string(max_bin),
                 format_double((1.0 - cumulative) * 100.0, 2), "1.000"});
  return table;
}

void RobustnessReport::add(const netsim::RobustnessStats& stats, bool complete,
                           double plt_ms) {
  totals_.merge(stats);
  ++loads_;
  if (complete) ++completed_;
  plt_ms_.push_back(plt_ms);
}

Table RobustnessReport::table() const {
  Table table({"metric", "value"});
  table.add_row({"loads", format_count(loads_)});
  table.add_row({"completion rate", format_pct(completion_rate())});
  table.add_row({"retries", format_count(totals_.retries)});
  table.add_row({"backoff ms total",
                 format_double(static_cast<double>(totals_.backoff_micros) /
                                   1000.0,
                               1)});
  table.add_row({"connect timeouts", format_count(totals_.connect_timeouts)});
  table.add_row({"connect failures", format_count(totals_.connect_failures)});
  table.add_row({"request timeouts", format_count(totals_.request_timeouts)});
  table.add_row({"dns failures", format_count(totals_.dns_failures)});
  table.add_row({"tls failures", format_count(totals_.tls_failures)});
  table.add_row(
      {"h2 protocol errors", format_count(totals_.h2_protocol_errors)});
  table.add_row(
      {"connections torn down", format_count(totals_.connections_torn_down)});
  table.add_row(
      {"avoid-list entries", format_count(totals_.avoid_list_entries)});
  table.add_row(
      {"avoided coalescings", format_count(totals_.avoided_coalescings)});
  table.add_row(
      {"redispatched streams", format_count(totals_.redispatched_streams)});
  table.add_row({"goaways received", format_count(totals_.goaways_received)});
  table.add_row({"retry budget exhausted",
                 format_count(totals_.retry_budget_exhausted)});
  table.add_row(
      {"deadline expirations", format_count(totals_.deadline_expirations)});
  for (const auto& [reason, count] : totals_.teardown_reasons) {
    table.add_row({"teardown: " + reason, format_count(count)});
  }
  return table;
}

}  // namespace origin::measure
