#include "measure/stream.h"

namespace origin::measure {

void PassiveShardObserver::on_shard(const std::vector<web::PageLoad>& pages,
                                    std::size_t first_ordinal) {
  observations_.assign(pages.size(), PassivePipeline::Observation{});
  for (std::size_t i = 0; i < pages.size(); ++i) {
    observations_[i].load = &pages[i];
    observations_[i].treatment = treatment_for_ordinal(first_ordinal + i);
    observations_[i].day = day_for_ordinal(first_ordinal + i);
  }
  pipeline_.observe_batch(observations_, domain_, threads_);
}

PassiveStreamStats PassiveShardObserver::stats() const {
  PassiveStreamStats stats;
  stats.sampled = pipeline_.sampled_records();
  stats.control_connections = pipeline_.new_connections(Treatment::kControl);
  stats.experiment_connections =
      pipeline_.new_connections(Treatment::kExperiment);
  stats.reduction_vs_control = pipeline_.reduction_vs_control();
  return stats;
}

}  // namespace origin::measure
