#include "measure/passive.h"

#include <algorithm>

namespace origin::measure {

void PassivePipeline::observe(const web::PageLoad& load,
                              const std::string& domain, Treatment treatment,
                              std::uint64_t day) {
  // Reconstruct per-connection request streams for this page load.
  std::map<std::uint64_t, std::uint32_t> arrival_counters;
  std::map<std::uint64_t, std::string> connection_sni;
  for (const auto& entry : load.entries) {
    if (entry.connection_id == 0) continue;
    // First request on a connection names its SNI.
    auto [it, inserted] =
        connection_sni.emplace(entry.connection_id, entry.hostname);
    const std::uint32_t order = ++arrival_counters[entry.connection_id];
    (void)inserted;
    if (entry.hostname != domain) continue;

    // Connection accounting is complete (handshake logs are unsampled).
    if (entry.new_tls_connection) {
      ++(treatment == Treatment::kControl ? control_connections_
                                          : experiment_connections_);
      ++day_connections_[{treatment == Treatment::kControl ? 0 : 1, day}];
    }
    // Request logs are sampled at `sample_rate_`.
    if (!rng_.bernoulli(sample_rate_)) continue;
    LogRecord record;
    record.connection_id = entry.connection_id;
    record.sni = it->second;
    record.host = entry.hostname;
    record.host_differs_sni = it->second != entry.hostname;
    record.treatment = treatment;
    record.arrival_order = order;
    record.day = day;
    records_.push_back(std::move(record));
  }
}

std::uint64_t PassivePipeline::new_connections(Treatment treatment) const {
  return treatment == Treatment::kControl ? control_connections_
                                          : experiment_connections_;
}

std::uint64_t PassivePipeline::new_connections_on_day(Treatment treatment,
                                                      std::uint64_t day) const {
  auto it = day_connections_.find(
      {treatment == Treatment::kControl ? 0 : 1, day});
  return it == day_connections_.end() ? 0 : it->second;
}

std::uint64_t PassivePipeline::coalesced_connections(
    Treatment treatment) const {
  std::set<std::uint64_t> connections;
  for (const auto& record : records_) {
    if (record.treatment != treatment) continue;
    // The paper's signal: flag bit set and arrival order >= 2, counting
    // each connection id once.
    if (record.host_differs_sni && record.arrival_order >= 2) {
      connections.insert(record.connection_id);
    }
  }
  return connections.size();
}

double PassivePipeline::reduction_vs_control() const {
  if (control_connections_ == 0) return 0.0;
  return 1.0 - static_cast<double>(experiment_connections_) /
                   static_cast<double>(control_connections_);
}

}  // namespace origin::measure
