#include "measure/passive.h"

#include <algorithm>

#include "util/fnv.h"
#include "util/hot_path.h"
#include "util/thread_pool.h"

namespace origin::measure {

namespace {

// Per-thread scratch for observe_one's per-connection stream rebuild:
// cleared (capacity kept) per call, so batch observation over a corpus
// does zero steady-state allocation for the bookkeeping maps.
struct ObserveScratch {
  origin::util::FlatMap<std::uint64_t, std::uint32_t> arrival_counters;
  // Pointers into the observed load's entry hostnames; the load outlives
  // the call and the map is cleared on entry.
  origin::util::FlatMap<std::uint64_t, const std::string*> connection_sni;
};

ObserveScratch& local_scratch() {
  static thread_local ObserveScratch scratch;
  return scratch;
}

}  // namespace

ORIGIN_HOT bool PassivePipeline::sampled(std::uint64_t connection_id,
                              std::uint32_t arrival_order,
                              Treatment treatment, std::uint64_t day) const {
  // Keyed hash -> uniform [0, 1) from the top 53 bits. At rate 1.0 every
  // record passes (the value is strictly below 1.0).
  std::uint64_t h = origin::util::fnv1a64_mix(seed_, 0x5A3B1EULL);
  h = origin::util::fnv1a64_mix(h, connection_id);
  h = origin::util::fnv1a64_mix(
      h, (static_cast<std::uint64_t>(arrival_order) << 1) |
             (treatment == Treatment::kControl ? 0u : 1u));
  h = origin::util::fnv1a64_mix(h, day);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < sample_rate_;
}

ORIGIN_HOT PassivePipeline::Delta PassivePipeline::observe_one(const web::PageLoad& load,
                                                    const std::string& domain,
                                                    Treatment treatment,
                                                    std::uint64_t day) const {
  Delta delta;
  // Reconstruct per-connection request streams for this page load.
  ObserveScratch& scratch = local_scratch();
  scratch.arrival_counters.clear();
  scratch.connection_sni.clear();
  for (const auto& entry : load.entries) {
    if (entry.connection_id == 0) continue;
    // First request on a connection names its SNI.
    const std::string* sni =
        *scratch.connection_sni.emplace(entry.connection_id, &entry.hostname)
             .first;
    const std::uint32_t order =
        ++scratch.arrival_counters[entry.connection_id];
    if (entry.hostname != domain) continue;

    // Connection accounting is complete (handshake logs are unsampled).
    if (entry.new_tls_connection) {
      ++(treatment == Treatment::kControl ? delta.control_connections
                                          : delta.experiment_connections);
      ++delta
            .day_connections[{treatment == Treatment::kControl ? 0 : 1, day}];
    }
    // Request logs are sampled at `sample_rate_`.
    if (!sampled(entry.connection_id, order, treatment, day)) continue;
    LogRecord record;
    record.connection_id = entry.connection_id;
    record.sni = *sni;
    record.host = entry.hostname;
    record.host_differs_sni = *sni != entry.hostname;
    record.treatment = treatment;
    record.arrival_order = order;
    record.day = day;
    // analyze:allow(hot-unreserved-growth): sampled-record sink; at rates
    // << 1 reserving entries.size() would allocate more, not less
    delta.records.push_back(std::move(record));
  }
  return delta;
}

void PassivePipeline::apply(Delta&& delta) {
  // analyze:allow(hot-transitive): false call-graph edge — the analyzer's
  // name-based member resolution unions `stream->apply(event)` with every
  // `apply` method; this batch sink runs on the measurement side only
  records_.insert(records_.end(),
                  std::make_move_iterator(delta.records.begin()),
                  std::make_move_iterator(delta.records.end()));
  // analyze:allow(det-unordered-iter): keyed commutative fold; per-key addition is order-independent
  for (const auto& [key, count] : delta.day_connections) {
    day_connections_[key] += count;
  }
  control_connections_ += delta.control_connections;
  experiment_connections_ += delta.experiment_connections;
}

void PassivePipeline::observe(const web::PageLoad& load,
                              const std::string& domain, Treatment treatment,
                              std::uint64_t day) {
  apply(observe_one(load, domain, treatment, day));
}

void PassivePipeline::observe_batch(
    const std::vector<Observation>& observations, const std::string& domain,
    std::size_t threads) {
  std::vector<Delta> deltas(observations.size());
  origin::util::ThreadPool pool(threads);
  pool.parallel_for_index(observations.size(), [&](std::size_t i) {
    const Observation& obs = observations[i];
    deltas[i] = observe_one(*obs.load, domain, obs.treatment, obs.day);
  });
  // Serial apply in input order: record order matches the serial loop.
  for (auto& delta : deltas) apply(std::move(delta));
}

void PassivePipeline::merge(const PassivePipeline& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  // analyze:allow(det-unordered-iter): keyed commutative fold; per-key addition is order-independent
  for (const auto& [key, count] : other.day_connections_) {
    day_connections_[key] += count;
  }
  control_connections_ += other.control_connections_;
  experiment_connections_ += other.experiment_connections_;
}

void PassivePipeline::reset() {
  records_.clear();
  day_connections_.clear();
  control_connections_ = 0;
  experiment_connections_ = 0;
}

std::uint64_t PassivePipeline::new_connections(Treatment treatment) const {
  return treatment == Treatment::kControl ? control_connections_
                                          : experiment_connections_;
}

std::uint64_t PassivePipeline::new_connections_on_day(Treatment treatment,
                                                      std::uint64_t day) const {
  const std::uint64_t* count = day_connections_.find(
      std::pair<int, std::uint64_t>{treatment == Treatment::kControl ? 0 : 1,
                                    day});
  return count == nullptr ? 0 : *count;
}

std::vector<PassivePipeline::DayRow> PassivePipeline::day_connection_rows()
    const {
  std::vector<DayRow> rows;
  for (const auto& [key, count] : day_connections_.sorted_items()) {
    rows.push_back(DayRow{key.first, key.second, count});
  }
  return rows;
}

std::uint64_t PassivePipeline::coalesced_connections(
    Treatment treatment) const {
  origin::util::FlatSet<std::uint64_t> connections;
  for (const auto& record : records_) {
    if (record.treatment != treatment) continue;
    // The paper's signal: flag bit set and arrival order >= 2, counting
    // each connection id once.
    if (record.host_differs_sni && record.arrival_order >= 2) {
      connections.insert(record.connection_id);
    }
  }
  return connections.size();
}

double PassivePipeline::reduction_vs_control() const {
  if (control_connections_ == 0) return 0.0;
  return 1.0 - static_cast<double>(experiment_connections_) /
                   static_cast<double>(control_connections_);
}

}  // namespace origin::measure
