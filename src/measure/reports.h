// Streaming report accumulators that regenerate the paper's dataset tables
// (Tables 1–7) and Figure 1 from page loads. Each bench binary owns one
// DatasetReport, feeds it through dataset::collect(), and renders the rows.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataset/generator.h"
#include "netsim/faults.h"
#include "util/stats.h"
#include "util/table.h"
#include "web/har.h"

namespace origin::measure {

class DatasetReport {
 public:
  void add(const dataset::SiteInfo& site, const web::PageLoad& load);

  // Table 1: per-rank-bucket medians.
  origin::util::Table table1_summary() const;
  // Table 2: top destination ASes by requests.
  origin::util::Table table2_ases(std::size_t top_n = 10) const;
  // Table 3: protocol mix and secure share.
  origin::util::Table table3_protocols() const;
  // Table 4: certificate issuers by validations.
  origin::util::Table table4_issuers(std::size_t top_n = 10) const;
  // Table 5: content types.
  origin::util::Table table5_content_types(std::size_t top_n = 12) const;
  // Table 6: top content types within top ASes.
  origin::util::Table table6_as_content(std::size_t top_ases = 3,
                                        std::size_t top_types = 4) const;
  // Table 7: top subresource hostnames.
  origin::util::Table table7_hostnames(std::size_t top_n = 10) const;
  // Figure 1: histogram + CDF of unique ASes per page.
  origin::util::Table fig1_unique_ases(std::size_t max_bin = 12) const;

  std::uint64_t total_requests() const { return total_requests_; }
  std::uint64_t total_pages() const { return pages_; }
  const std::vector<double>& plt_ms() const { return plt_ms_; }
  const std::vector<double>& dns_per_page() const { return dns_per_page_; }
  const std::vector<double>& tls_per_page() const { return tls_per_page_; }
  const std::vector<double>& requests_per_page() const {
    return requests_per_page_;
  }

 private:
  struct BucketStats {
    std::uint64_t successes = 0;
    std::vector<double> requests;
    std::vector<double> plt_ms;
    std::vector<double> dns;
    std::vector<double> tls;
  };

  std::map<std::size_t, BucketStats> buckets_;  // index into rank_buckets()
  std::uint64_t pages_ = 0;
  std::uint64_t total_requests_ = 0;

  // Report accumulators render sorted tables; deterministic sorted
  // iteration is the point here, so these stay on std::map rather than
  // the interned flat containers (see the no-string-keyed-tree rule).
  std::map<std::uint32_t, std::uint64_t> asn_requests_;
  std::map<std::uint32_t, std::string> asn_org_;
  std::map<web::HttpVersion, std::uint64_t> protocol_requests_;
  std::uint64_t secure_requests_ = 0;
  std::map<std::string, std::uint64_t> issuer_validations_;  // lint:allow(no-string-keyed-tree)
  std::uint64_t total_validations_ = 0;
  std::map<web::ContentType, std::uint64_t> content_requests_;
  std::map<std::uint32_t, std::map<web::ContentType, std::uint64_t>>
      asn_content_;
  std::map<std::string, std::uint64_t> hostname_requests_;  // lint:allow(no-string-keyed-tree)
  origin::util::Histogram unique_as_histogram_;

  std::vector<double> plt_ms_;
  std::vector<double> dns_per_page_;
  std::vector<double> tls_per_page_;
  std::vector<double> requests_per_page_;
};

// Aggregates per-load RobustnessStats into the degradation summary the
// fault-ablation bench prints: completion rate, retry/backoff volume, and
// the teardown-reason breakdown.
class RobustnessReport {
 public:
  void add(const netsim::RobustnessStats& stats, bool complete, double plt_ms);

  origin::util::Table table() const;

  double completion_rate() const {
    return loads_ == 0
               ? 1.0
               : static_cast<double>(completed_) / static_cast<double>(loads_);
  }
  const netsim::RobustnessStats& totals() const { return totals_; }
  std::uint64_t loads() const { return loads_; }
  const std::vector<double>& plt_ms() const { return plt_ms_; }

 private:
  netsim::RobustnessStats totals_;
  std::uint64_t loads_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<double> plt_ms_;
};

}  // namespace origin::measure
