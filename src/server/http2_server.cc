#include "server/http2_server.h"

#include <charconv>
#include <cstdlib>
#include <string>

#include "util/hot_path.h"

namespace origin::server {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::uint64_t value = 0;
  const std::string_view text(raw);
  const auto parsed =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (parsed.ec != std::errc{} || parsed.ptr != text.data() + text.size()) {
    return fallback;
  }
  return value;
}

}  // namespace

OverloadConfig OverloadConfig::from_env() { return from_env(OverloadConfig{}); }

OverloadConfig OverloadConfig::from_env(OverloadConfig defaults) {
  OverloadConfig config = defaults;
  config.enabled = env_u64("ORIGIN_OVERLOAD", config.enabled ? 1 : 0) != 0;
  config.max_session_rsts =
      env_u64("ORIGIN_MAX_SESSION_RSTS", config.max_session_rsts);
  config.max_session_pings =
      env_u64("ORIGIN_MAX_SESSION_PINGS", config.max_session_pings);
  config.max_session_settings =
      env_u64("ORIGIN_MAX_SESSION_SETTINGS", config.max_session_settings);
  config.max_session_header_bytes = env_u64("ORIGIN_MAX_SESSION_HEADER_BYTES",
                                            config.max_session_header_bytes);
  config.max_session_response_bytes = env_u64(
      "ORIGIN_MAX_SESSION_RESPONSE_BYTES", config.max_session_response_bytes);
  config.stall_timeout = origin::util::Duration::millis(static_cast<double>(
      env_u64("ORIGIN_STALL_TIMEOUT_MS",
              static_cast<std::uint64_t>(config.stall_timeout.count_micros()) /
                  1000)));
  config.drain_grace = origin::util::Duration::millis(static_cast<double>(
      env_u64("ORIGIN_DRAIN_GRACE_MS",
              static_cast<std::uint64_t>(config.drain_grace.count_micros()) /
                  1000)));
  return config;
}

void Http2Server::Stats::merge(const Stats& other) {
  connections += other.connections;
  requests += other.requests;
  responses_200 += other.responses_200;
  responses_404 += other.responses_404;
  responses_421 += other.responses_421;
  origin_frames_sent += other.origin_frames_sent;
  origin_frames_suppressed += other.origin_frames_suppressed;
  h2_protocol_errors += other.h2_protocol_errors;
  submit_failures += other.submit_failures;
  sessions_shed += other.sessions_shed;
  sessions_reaped_stalled += other.sessions_reaped_stalled;
  admission_rejections += other.admission_rejections;
  streams_refused += other.streams_refused;
  drains_started += other.drains_started;
  drained_clean += other.drained_clean;
  for (const auto& [reason, count] : other.close_reasons) {
    close_reasons[reason] += count;
  }
}

std::string Http2Server::Stats::serialize() const {
  std::string out;
  auto field = [&out](const char* name, std::uint64_t value) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  };
  field("connections", connections);
  field("requests", requests);
  field("responses_200", responses_200);
  field("responses_404", responses_404);
  field("responses_421", responses_421);
  field("origin_frames_sent", origin_frames_sent);
  field("origin_frames_suppressed", origin_frames_suppressed);
  field("h2_protocol_errors", h2_protocol_errors);
  field("submit_failures", submit_failures);
  field("sessions_shed", sessions_shed);
  field("sessions_reaped_stalled", sessions_reaped_stalled);
  field("admission_rejections", admission_rejections);
  field("streams_refused", streams_refused);
  field("drains_started", drains_started);
  field("drained_clean", drained_clean);
  // std::map iterates keys sorted, so this block is canonical.
  for (const auto& [reason, count] : close_reasons) {
    out += "close_reason[";
    out += reason;
    out += "]=";
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Http2Server::Http2Server(ServerConfig config) : config_(std::move(config)) {}

void Http2Server::add_vhost(std::string hostname, Handler handler) {
  vhosts_[std::move(hostname)] = std::move(handler);
}

void Http2Server::set_certificate(tls::Certificate cert) {
  certs_.add(std::move(cert));
}

void Http2Server::set_origin_set(std::vector<std::string> origins) {
  config_.origin_set = std::move(origins);
}

void Http2Server::listen(netsim::Network& network, dns::IpAddress address) {
  network_ = &network;
  network.listen(address,
                 [this](netsim::TcpEndpoint endpoint) { accept(endpoint); });
}

ORIGIN_HOT void Http2Server::flush(Session& session) {
  if (session.connection->has_output() && session.endpoint.open()) {
    session.endpoint.send(session.connection->take_output());
  }
}

void Http2Server::close_endpoint(netsim::TcpEndpoint& endpoint,
                                 const std::string& reason) {
  ++stats_.close_reasons[reason];
  if (endpoint.open()) {
    endpoint.close(reason);  // lint:allow(server-close-recorded): this is the audited close path; the reason was recorded just above
  }
}

void Http2Server::close_session(Session& session, const std::string& reason) {
  if (session.closing) return;
  session.closing = true;
  close_endpoint(session.endpoint, reason);
}

void Http2Server::accept(netsim::TcpEndpoint endpoint) {
  if (config_.admission_gate) {
    if (auto reason = config_.admission_gate(endpoint.client_tag())) {
      ++stats_.admission_rejections;
      close_endpoint(endpoint, *reason);
      return;
    }
  }
  ++stats_.connections;
  auto session = std::make_shared<Session>();
  session->endpoint = endpoint;
  session->client_tag = endpoint.client_tag();
  if (network_ != nullptr) {
    session->accepted_at = network_->simulator().now();
    session->last_activity = session->accepted_at;
  }
  h2::Origin server_origin;  // servers do not consume the origin set
  session->connection = std::make_shared<h2::Connection>(
      h2::Connection::Role::kServer, server_origin, config_.settings);

  h2::ConnectionCallbacks callbacks;
  Session* raw = session.get();
  callbacks.on_headers = [this, raw](std::uint32_t stream_id,
                                     const hpack::HeaderList& headers, bool) {
    // RFC 9113 §10.5.1 accounting, charged to the session's lifetime budget.
    for (const auto& header : headers) {
      raw->header_bytes += header.name.size() + header.value.size() + 32;
    }
    if (raw->draining && stream_id > raw->drain_last_stream_id) {
      // The client raced a request past our GOAWAY; refuse it so the
      // client's re-dispatch (which the GOAWAY already triggered) is the
      // only copy that runs.
      ++stats_.streams_refused;
      if (!raw->connection
               ->submit_rst_stream(stream_id, h2::ErrorCode::kRefusedStream)
               .ok()) {
        ++stats_.submit_failures;
      }
      return;
    }
    handle_request(*raw, stream_id, headers);
  };
  session->connection->set_callbacks(std::move(callbacks));

  // First flight: SETTINGS (already queued) plus the ORIGIN frame, which
  // RFC 8336 encourages sending as early as possible on stream 0 — unless
  // the deployment's kill-switch has disabled ORIGIN for this client tag.
  if (!config_.origin_set.empty()) {
    if (!config_.origin_gate || config_.origin_gate(session->client_tag)) {
      if (session->connection->submit_origin(config_.origin_set).ok()) {
        ++stats_.origin_frames_sent;
        session->origin_sent = true;
      } else {
        ++stats_.submit_failures;
      }
    } else {
      ++stats_.origin_frames_suppressed;
    }
  }

  session->endpoint.set_on_receive(
      [this, raw](std::span<const std::uint8_t> bytes) {
        if (raw->closing) return;
        if (network_ != nullptr) {
          raw->last_activity = network_->simulator().now();
        }
        auto status = raw->connection->receive(bytes);
        // Flush regardless: a failed receive queues a GOAWAY for the peer.
        flush(*raw);
        if (!status.ok()) {
          ++stats_.h2_protocol_errors;
          close_session(*raw, "h2 protocol error: " + status.error().message);
          return;
        }
        bool shed = false;
        if (config_.overload.enabled) shed = enforce_budgets(*raw);
        if (!shed) maybe_finish_drain(*raw);
      });
  session->endpoint.set_on_close([this, raw](const std::string& reason) {
    if (config_.close_feedback) {
      config_.close_feedback(raw->client_tag, raw->origin_sent, reason);
    }
    if (config_.admission_feedback) {
      config_.admission_feedback(raw->client_tag, reason);
    }
    // Reap the session; the server otherwise accumulates dead connections
    // for its whole lifetime.
    std::erase_if(sessions_,
                  [raw](const auto& session) { return session.get() == raw; });
  });
  flush(*session);
  sessions_.push_back(std::move(session));
  schedule_sweep();
}

bool Http2Server::enforce_budgets(Session& session) {
  const OverloadConfig& cfg = config_.overload;
  const h2::Connection& conn = *session.connection;
  const char* violation = nullptr;
  if (cfg.max_session_rsts != 0 &&
      conn.frames_received(h2::FrameType::kRstStream) > cfg.max_session_rsts) {
    violation = "overload: rapid-reset flood";
  } else if (cfg.max_session_pings != 0 &&
             conn.frames_received(h2::FrameType::kPing) >
                 cfg.max_session_pings) {
    violation = "overload: ping flood";
  } else if (cfg.max_session_settings != 0 &&
             conn.frames_received(h2::FrameType::kSettings) >
                 cfg.max_session_settings) {
    violation = "overload: settings flood";
  } else if (cfg.max_session_header_bytes != 0 &&
             session.header_bytes > cfg.max_session_header_bytes) {
    violation = "overload: header budget";
  } else if (cfg.max_session_response_bytes != 0 &&
             session.response_bytes > cfg.max_session_response_bytes) {
    violation = "overload: response budget";
  } else if (cfg.max_session_streams != 0 &&
             conn.active_stream_count() > cfg.max_session_streams) {
    violation = "overload: stream budget";
  } else if (cfg.frame_budget_grace != 0 &&
             conn.total_frames_received() > cfg.frame_budget_grace &&
             network_ != nullptr) {
    // Connection-lifetime rate: deterministic because lifetime is simulated
    // time, not wall-clock.
    const double elapsed =
        (network_->simulator().now() - session.accepted_at).as_seconds();
    const double allowed = static_cast<double>(cfg.frame_budget_grace) +
                           cfg.max_frames_per_second * elapsed;
    if (static_cast<double>(conn.total_frames_received()) > allowed) {
      violation = "overload: frame rate";
    }
  }
  if (violation == nullptr) return false;
  ++stats_.sessions_shed;
  session.connection->submit_goaway(h2::ErrorCode::kEnhanceYourCalm,
                                    violation);
  flush(session);
  close_session(session, violation);
  return true;
}

void Http2Server::maybe_finish_drain(Session& session) {
  if (!session.draining || session.closing || session.drain_close_pending) {
    return;
  }
  if (session.connection->active_stream_count() != 0) return;
  if (network_ == nullptr ||
      config_.overload.drain_linger.count_micros() <= 0) {
    ++stats_.drained_clean;
    close_session(session, "drain: complete");
    return;
  }
  // Close after a linger, not now: the final flush (last response bytes and
  // the GOAWAY itself) is still in flight, and netsim drops deliveries to a
  // torn-down connection.
  session.drain_close_pending = true;
  std::weak_ptr<Session> weak;
  for (const auto& owned : sessions_) {
    if (owned.get() == &session) {
      weak = owned;
      break;
    }
  }
  network_->simulator().schedule(
      config_.overload.drain_linger, [this, weak]() {
        auto session = weak.lock();
        if (!session || session->closing) return;
        if (session->connection->active_stream_count() != 0) {
          // A late stream (at or below drain_last_stream_id) slipped in
          // during the linger; wait for it to finish.
          session->drain_close_pending = false;
          return;
        }
        ++stats_.drained_clean;
        close_session(*session, "drain: complete");
      });
}

void Http2Server::schedule_sweep() {
  if (sweep_scheduled_ || network_ == nullptr || !config_.overload.enabled) {
    return;
  }
  sweep_scheduled_ = true;
  network_->simulator().schedule(config_.overload.sweep_interval,
                                 [this]() { sweep(); });
}

void Http2Server::sweep() {
  sweep_scheduled_ = false;
  if (network_ == nullptr) return;
  const origin::util::SimTime now = network_->simulator().now();
  // Collect first: close_session's teardown is async, but keep the loop
  // independent of any future reaping changes.
  std::vector<Session*> stalled;
  for (const auto& session : sessions_) {
    if (session->closing) continue;
    if (now - session->last_activity >= config_.overload.stall_timeout) {
      stalled.push_back(session.get());
    }
  }
  for (Session* session : stalled) {
    ++stats_.sessions_shed;
    ++stats_.sessions_reaped_stalled;
    session->connection->submit_goaway(h2::ErrorCode::kEnhanceYourCalm,
                                       "stall timeout");
    flush(*session);
    close_session(*session, "overload: stall timeout");
  }
  // Reschedule only while sessions remain: an unconditional reschedule
  // would keep the simulator's run_until_idle from ever terminating.
  if (!sessions_.empty()) schedule_sweep();
}

void Http2Server::begin_drain(const std::string& reason) {
  if (draining_) return;
  draining_ = true;
  ++stats_.drains_started;
  for (const auto& session : sessions_) {
    if (session->closing || session->draining) continue;
    session->draining = true;
    session->drain_last_stream_id = session->connection->highest_peer_stream();
    session->connection->submit_goaway(h2::ErrorCode::kNoError, reason);
    flush(*session);
    maybe_finish_drain(*session);
  }
  if (network_ != nullptr && config_.overload.drain_grace.count_micros() > 0) {
    network_->simulator().schedule(config_.overload.drain_grace, [this]() {
      // Only sessions that actually got the GOAWAY are on the clock;
      // connections accepted after the drain began serve normally.
      std::vector<Session*> expired;
      for (const auto& session : sessions_) {
        if (session->draining && !session->closing) {
          expired.push_back(session.get());
        }
      }
      for (Session* session : expired) {
        close_session(*session, "drain: grace expired");
      }
    });
  }
}

namespace {

// Digits for :status / content-length without std::to_string: the common
// statuses come from a table, anything else lands in the caller's buffer.
std::string_view status_text(int status, char (&buf)[8]) {
  switch (status) {
    case 200:
      return "200";
    case 404:
      return "404";
    case 421:
      return "421";
  }
  const auto result = std::to_chars(buf, buf + sizeof(buf), status);
  return {buf, static_cast<std::size_t>(result.ptr - buf)};
}

std::string_view size_text(std::size_t n, char (&buf)[24]) {
  const auto result = std::to_chars(buf, buf + sizeof(buf), n);
  return {buf, static_cast<std::size_t>(result.ptr - buf)};
}

}  // namespace

ORIGIN_HOT void Http2Server::handle_request(
    Session& session, std::uint32_t stream_id,
    const hpack::HeaderList& headers) {
  ++stats_.requests;
  const std::string_view authority = header_value(headers, ":authority");
  const std::string_view path = header_value(headers, ":path");

  auto vhost = vhosts_.find(authority);
  if (vhost == vhosts_.end()) {
    // The certificate may cover this name, but this deployment has no
    // content for it: 421 tells the client to retry on a fresh connection
    // (RFC 9113 §8.1.2; paper §2.2). The certificate stays valid.
    ++stats_.responses_421;
    auto st = session.connection->submit_response(
        stream_id,
        {{":status", "421"}, {"content-type", "text/plain"}}, false);
    if (st.ok()) {
      st = session.connection->submit_data(
          stream_id, origin::util::from_string("421 Misdirected Request"),
          true);
    }
    if (!st.ok()) ++stats_.submit_failures;
    flush(session);
    return;
  }

  Response response = vhost->second(path);
  if (response.status == 200) {
    ++stats_.responses_200;
  } else if (response.status == 404) {
    ++stats_.responses_404;
  }
  session.response_bytes += response.body.size();
  char status_buf[8];
  char length_buf[24];
  // The hpack HeaderList API takes owned strings; status and length
  // digits are SSO-small, so these constructions never allocate.
  auto st = session.connection->submit_response(
      stream_id,
      {{":status", std::string(status_text(response.status, status_buf))},  // analyze:allow(hot-string-construct): SSO-small status digits, never reaches the allocator
       {"content-type", response.content_type},
       {"content-length",
        std::string(size_text(response.body.size(), length_buf))}},  // analyze:allow(hot-string-construct): SSO-small length digits, never reaches the allocator
      response.body.empty());
  if (st.ok() && !response.body.empty()) {
    st = session.connection->submit_data(stream_id, response.body, true);
  }
  if (!st.ok()) ++stats_.submit_failures;
  flush(session);
}

hpack::HeaderList make_get_request(const std::string& authority,
                                   const std::string& path) {
  return {{":method", "GET"},
          {":scheme", "https"},
          {":authority", authority},
          {":path", path}};
}

std::string_view header_value(const hpack::HeaderList& headers,
                              std::string_view name) {
  for (const auto& header : headers) {
    if (header.name == name) return header.value;
  }
  return "";
}

}  // namespace origin::server
