#include "server/http2_server.h"

#include <charconv>

#include "util/hot_path.h"

namespace origin::server {

Http2Server::Http2Server(ServerConfig config) : config_(std::move(config)) {}

void Http2Server::add_vhost(std::string hostname, Handler handler) {
  vhosts_[std::move(hostname)] = std::move(handler);
}

void Http2Server::set_certificate(tls::Certificate cert) {
  certs_.add(std::move(cert));
}

void Http2Server::set_origin_set(std::vector<std::string> origins) {
  config_.origin_set = std::move(origins);
}

void Http2Server::listen(netsim::Network& network, dns::IpAddress address) {
  network.listen(address,
                 [this](netsim::TcpEndpoint endpoint) { accept(endpoint); });
}

ORIGIN_HOT void Http2Server::flush(Session& session) {
  if (session.connection->has_output() && session.endpoint.open()) {
    session.endpoint.send(session.connection->take_output());
  }
}

void Http2Server::accept(netsim::TcpEndpoint endpoint) {
  ++stats_.connections;
  auto session = std::make_shared<Session>();
  session->endpoint = endpoint;
  session->client_tag = endpoint.client_tag();
  h2::Origin server_origin;  // servers do not consume the origin set
  session->connection = std::make_shared<h2::Connection>(
      h2::Connection::Role::kServer, server_origin, config_.settings);

  h2::ConnectionCallbacks callbacks;
  Session* raw = session.get();
  callbacks.on_headers = [this, raw](std::uint32_t stream_id,
                                     const hpack::HeaderList& headers, bool) {
    handle_request(*raw, stream_id, headers);
  };
  session->connection->set_callbacks(std::move(callbacks));

  // First flight: SETTINGS (already queued) plus the ORIGIN frame, which
  // RFC 8336 encourages sending as early as possible on stream 0 — unless
  // the deployment's kill-switch has disabled ORIGIN for this client tag.
  if (!config_.origin_set.empty()) {
    if (!config_.origin_gate || config_.origin_gate(session->client_tag)) {
      if (session->connection->submit_origin(config_.origin_set).ok()) {
        ++stats_.origin_frames_sent;
        session->origin_sent = true;
      } else {
        ++stats_.submit_failures;
      }
    } else {
      ++stats_.origin_frames_suppressed;
    }
  }

  session->endpoint.set_on_receive(
      [this, raw](std::span<const std::uint8_t> bytes) {
        auto status = raw->connection->receive(bytes);
        // Flush regardless: a failed receive queues a GOAWAY for the peer.
        flush(*raw);
        if (!status.ok()) {
          ++stats_.h2_protocol_errors;
          if (raw->endpoint.open()) {
            raw->endpoint.close("h2 protocol error: " +
                                status.error().message);
          }
        }
      });
  session->endpoint.set_on_close([this, raw](const std::string& reason) {
    if (config_.close_feedback) {
      config_.close_feedback(raw->client_tag, raw->origin_sent, reason);
    }
    // Reap the session; the server otherwise accumulates dead connections
    // for its whole lifetime.
    std::erase_if(sessions_,
                  [raw](const auto& session) { return session.get() == raw; });
  });
  flush(*session);
  sessions_.push_back(std::move(session));
}

namespace {

// Digits for :status / content-length without std::to_string: the common
// statuses come from a table, anything else lands in the caller's buffer.
std::string_view status_text(int status, char (&buf)[8]) {
  switch (status) {
    case 200:
      return "200";
    case 404:
      return "404";
    case 421:
      return "421";
  }
  const auto result = std::to_chars(buf, buf + sizeof(buf), status);
  return {buf, static_cast<std::size_t>(result.ptr - buf)};
}

std::string_view size_text(std::size_t n, char (&buf)[24]) {
  const auto result = std::to_chars(buf, buf + sizeof(buf), n);
  return {buf, static_cast<std::size_t>(result.ptr - buf)};
}

}  // namespace

ORIGIN_HOT void Http2Server::handle_request(
    Session& session, std::uint32_t stream_id,
    const hpack::HeaderList& headers) {
  ++stats_.requests;
  const std::string_view authority = header_value(headers, ":authority");
  const std::string_view path = header_value(headers, ":path");

  auto vhost = vhosts_.find(authority);
  if (vhost == vhosts_.end()) {
    // The certificate may cover this name, but this deployment has no
    // content for it: 421 tells the client to retry on a fresh connection
    // (RFC 9113 §8.1.2; paper §2.2). The certificate stays valid.
    ++stats_.responses_421;
    auto st = session.connection->submit_response(
        stream_id,
        {{":status", "421"}, {"content-type", "text/plain"}}, false);
    if (st.ok()) {
      st = session.connection->submit_data(
          stream_id, origin::util::from_string("421 Misdirected Request"),
          true);
    }
    if (!st.ok()) ++stats_.submit_failures;
    flush(session);
    return;
  }

  Response response = vhost->second(path);
  if (response.status == 200) {
    ++stats_.responses_200;
  } else if (response.status == 404) {
    ++stats_.responses_404;
  }
  char status_buf[8];
  char length_buf[24];
  // The hpack HeaderList API takes owned strings; status and length
  // digits are SSO-small, so these constructions never allocate.
  auto st = session.connection->submit_response(
      stream_id,
      {{":status", std::string(status_text(response.status, status_buf))},  // analyze:allow(hot-string-construct): SSO-small status digits, never reaches the allocator
       {"content-type", response.content_type},
       {"content-length",
        std::string(size_text(response.body.size(), length_buf))}},  // analyze:allow(hot-string-construct): SSO-small length digits, never reaches the allocator
      response.body.empty());
  if (st.ok() && !response.body.empty()) {
    st = session.connection->submit_data(stream_id, response.body, true);
  }
  if (!st.ok()) ++stats_.submit_failures;
  flush(session);
}

hpack::HeaderList make_get_request(const std::string& authority,
                                   const std::string& path) {
  return {{":method", "GET"},
          {":scheme", "https"},
          {":authority", authority},
          {":path", path}};
}

std::string_view header_value(const hpack::HeaderList& headers,
                              std::string_view name) {
  for (const auto& header : headers) {
    if (header.name == name) return header.value;
  }
  return "";
}

}  // namespace origin::server
