#include "server/http2_server.h"

#include "util/hot_path.h"

namespace origin::server {

Http2Server::Http2Server(ServerConfig config) : config_(std::move(config)) {}

void Http2Server::add_vhost(std::string hostname, Handler handler) {
  vhosts_[std::move(hostname)] = std::move(handler);
}

void Http2Server::set_certificate(tls::Certificate cert) {
  certs_.add(std::move(cert));
}

void Http2Server::set_origin_set(std::vector<std::string> origins) {
  config_.origin_set = std::move(origins);
}

void Http2Server::listen(netsim::Network& network, dns::IpAddress address) {
  network.listen(address,
                 [this](netsim::TcpEndpoint endpoint) { accept(endpoint); });
}

ORIGIN_HOT void Http2Server::flush(Session& session) {
  if (session.connection->has_output() && session.endpoint.open()) {
    session.endpoint.send(session.connection->take_output());
  }
}

void Http2Server::accept(netsim::TcpEndpoint endpoint) {
  ++stats_.connections;
  auto session = std::make_shared<Session>();
  session->endpoint = endpoint;
  session->client_tag = endpoint.client_tag();
  h2::Origin server_origin;  // servers do not consume the origin set
  session->connection = std::make_shared<h2::Connection>(
      h2::Connection::Role::kServer, server_origin, config_.settings);

  h2::ConnectionCallbacks callbacks;
  Session* raw = session.get();
  callbacks.on_headers = [this, raw](std::uint32_t stream_id,
                                     const hpack::HeaderList& headers, bool) {
    handle_request(*raw, stream_id, headers);
  };
  session->connection->set_callbacks(std::move(callbacks));

  // First flight: SETTINGS (already queued) plus the ORIGIN frame, which
  // RFC 8336 encourages sending as early as possible on stream 0 — unless
  // the deployment's kill-switch has disabled ORIGIN for this client tag.
  if (!config_.origin_set.empty()) {
    if (!config_.origin_gate || config_.origin_gate(session->client_tag)) {
      (void)session->connection->submit_origin(config_.origin_set);
      ++stats_.origin_frames_sent;
      session->origin_sent = true;
    } else {
      ++stats_.origin_frames_suppressed;
    }
  }

  session->endpoint.set_on_receive(
      [this, raw](std::span<const std::uint8_t> bytes) {
        auto status = raw->connection->receive(bytes);
        // Flush regardless: a failed receive queues a GOAWAY for the peer.
        flush(*raw);
        if (!status.ok()) {
          ++stats_.h2_protocol_errors;
          if (raw->endpoint.open()) {
            raw->endpoint.close("h2 protocol error: " +
                                status.error().message);
          }
        }
      });
  session->endpoint.set_on_close([this, raw](const std::string& reason) {
    if (config_.close_feedback) {
      config_.close_feedback(raw->client_tag, raw->origin_sent, reason);
    }
    // Reap the session; the server otherwise accumulates dead connections
    // for its whole lifetime.
    std::erase_if(sessions_,
                  [raw](const auto& session) { return session.get() == raw; });
  });
  flush(*session);
  sessions_.push_back(std::move(session));
}

void Http2Server::handle_request(Session& session, std::uint32_t stream_id,
                                 const hpack::HeaderList& headers) {
  ++stats_.requests;
  const std::string authority = header_value(headers, ":authority");
  const std::string path = header_value(headers, ":path");

  auto vhost = vhosts_.find(authority);
  if (vhost == vhosts_.end()) {
    // The certificate may cover this name, but this deployment has no
    // content for it: 421 tells the client to retry on a fresh connection
    // (RFC 9113 §8.1.2; paper §2.2). The certificate stays valid.
    ++stats_.responses_421;
    (void)session.connection->submit_response(
        stream_id,
        {{":status", "421"}, {"content-type", "text/plain"}}, false);
    (void)session.connection->submit_data(
        stream_id, origin::util::from_string("421 Misdirected Request"),
        true);
    flush(session);
    return;
  }

  Response response = vhost->second(path);
  if (response.status == 200) {
    ++stats_.responses_200;
  } else if (response.status == 404) {
    ++stats_.responses_404;
  }
  (void)session.connection->submit_response(
      stream_id,
      {{":status", std::to_string(response.status)},
       {"content-type", response.content_type},
       {"content-length", std::to_string(response.body.size())}},
      response.body.empty());
  if (!response.body.empty()) {
    (void)session.connection->submit_data(stream_id, response.body, true);
  }
  flush(session);
}

hpack::HeaderList make_get_request(const std::string& authority,
                                   const std::string& path) {
  return {{":method", "GET"},
          {":scheme", "https"},
          {":authority", authority},
          {":path", path}};
}

std::string header_value(const hpack::HeaderList& headers,
                         const std::string& name) {
  for (const auto& header : headers) {
    if (header.name == name) return header.value;
  }
  return "";
}

}  // namespace origin::server
