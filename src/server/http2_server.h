// HTTP/2 origin server.
//
// This is the server-side ORIGIN frame implementation the paper notes did
// not exist in any production web server (§1, §5.3): a connection-
// terminating process that (a) selects a certificate by SNI, (b) advertises
// a configured origin set on stream 0 of every new connection, (c) serves
// configured virtual hosts, and (d) answers 421 Misdirected Request for
// authority the certificate covers but this deployment cannot serve —
// exactly the fail-open contract §2.2 describes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "h2/connection.h"
#include "netsim/network.h"
#include "tls/sni.h"
#include "web/resource.h"

namespace origin::server {

struct Response {
  int status = 200;
  std::string content_type = "text/html";
  origin::util::Bytes body;
};

using Handler = std::function<Response(std::string_view path)>;

struct VirtualHost {
  std::string hostname;
  Handler handler;
};

struct ServerConfig {
  // Origins advertised in the ORIGIN frame on every new connection. Empty
  // disables the extension (a pre-RFC-8336 server).
  std::vector<std::string> origin_set;
  h2::Settings settings;
  // Per-connection gate consulted before emitting the ORIGIN frame; lets a
  // deployment suppress the advertisement for client tags whose path keeps
  // tearing connections down (the §6.7 kill-switch). Null = always send.
  std::function<bool(const std::string& client_tag)> origin_gate;
  // Fired when a connection closes, with the verbatim close reason and
  // whether ORIGIN was sent on it — the kill-switch's observation stream.
  std::function<void(const std::string& client_tag, bool origin_sent,
                     const std::string& reason)>
      close_feedback;
};

class Http2Server {
 public:
  explicit Http2Server(ServerConfig config = {});

  void add_vhost(std::string hostname, Handler handler);
  void set_certificate(tls::Certificate cert);
  const tls::CertStore& cert_store() const { return certs_; }

  // Replaces the advertised origin set (reconfiguration at runtime, as the
  // CDN deployment did between experiments).
  void set_origin_set(std::vector<std::string> origins);

  // Runtime wiring for the ORIGIN kill-switch (cdn::OriginKillSwitch).
  void set_origin_gate(std::function<bool(const std::string&)> gate) {
    config_.origin_gate = std::move(gate);
  }
  void set_close_feedback(
      std::function<void(const std::string&, bool, const std::string&)>
          feedback) {
    config_.close_feedback = std::move(feedback);
  }

  // Binds the server to an address on the simulated network.
  void listen(netsim::Network& network, dns::IpAddress address);

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses_200 = 0;
    std::uint64_t responses_404 = 0;
    std::uint64_t responses_421 = 0;
    std::uint64_t origin_frames_sent = 0;
    // Connections where the origin_gate vetoed the advertisement.
    std::uint64_t origin_frames_suppressed = 0;
    std::uint64_t h2_protocol_errors = 0;
    // submit_* rejected a frame (closed stream, exhausted window): the
    // response was dropped rather than silently half-sent.
    std::uint64_t submit_failures = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Session {
    std::shared_ptr<h2::Connection> connection;
    netsim::TcpEndpoint endpoint;
    // Captured at accept time: the endpoint loses its tag once the
    // connection is reaped, but close_feedback still needs it.
    std::string client_tag;
    bool origin_sent = false;
  };

  void accept(netsim::TcpEndpoint endpoint);
  void handle_request(Session& session, std::uint32_t stream_id,
                      const hpack::HeaderList& headers);
  void flush(Session& session);

  ServerConfig config_;
  // less<> enables lookup by the string_view :authority without an
  // allocated key copy.
  std::map<std::string, Handler, std::less<>> vhosts_;
  tls::CertStore certs_;
  std::vector<std::shared_ptr<Session>> sessions_;
  Stats stats_;
};

// Convenience: header list for a GET request (client side).
hpack::HeaderList make_get_request(const std::string& authority,
                                   const std::string& path);

// Extracts a pseudo-header value ("" when absent). The view borrows from
// `headers` and is valid only while the list is alive.
std::string_view header_value(const hpack::HeaderList& headers,
                              std::string_view name);

}  // namespace origin::server
