// HTTP/2 origin server.
//
// This is the server-side ORIGIN frame implementation the paper notes did
// not exist in any production web server (§1, §5.3): a connection-
// terminating process that (a) selects a certificate by SNI, (b) advertises
// a configured origin set on stream 0 of every new connection, (c) serves
// configured virtual hosts, and (d) answers 421 Misdirected Request for
// authority the certificate covers but this deployment cannot serve —
// exactly the fail-open contract §2.2 describes.
//
// Overload protection (DESIGN.md §13): with OverloadConfig.enabled the
// server enforces per-session resource budgets (RST/PING/SETTINGS counts,
// header bytes, queued response bytes, active streams, connection-lifetime
// frame rate), reaps stalled sessions on a deadline-driven sweep, consults
// an optional admission gate at accept time, and sheds each violator with a distinct
// "overload: ..." close reason recorded in Stats::close_reasons. Every
// server-initiated close funnels through one audited helper so the
// accounting is deterministic and complete.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "h2/connection.h"
#include "netsim/network.h"
#include "tls/sni.h"
#include "util/sim_time.h"
#include "web/resource.h"

namespace origin::server {

struct Response {
  int status = 200;
  std::string content_type = "text/html";
  origin::util::Bytes body;
};

using Handler = std::function<Response(std::string_view path)>;

struct VirtualHost {
  std::string hostname;
  Handler handler;
};

// Per-session and per-server resource budgets. Defaults keep every defense
// off (`enabled = false`) so a plain protocol-validator server behaves
// exactly as before; a budget of 0 means "unlimited" even when enabled.
struct OverloadConfig {
  bool enabled = false;
  // Frame-count budgets over a session's lifetime (rapid-reset, PING and
  // SETTINGS floods are cheap for the peer, expensive for us).
  std::uint64_t max_session_rsts = 200;
  std::uint64_t max_session_pings = 256;
  std::uint64_t max_session_settings = 32;
  // Decoded request-header bytes (RFC 9113 §10.5.1 accounting) a session
  // may spend across all of its streams.
  std::uint64_t max_session_header_bytes = 256 * 1024;
  // Response-body bytes a session may queue; bounds the send-buffer memory
  // one client can pin.
  std::uint64_t max_session_response_bytes = 16 * 1024 * 1024;
  // Concurrently active (non-closed) streams per session.
  std::uint64_t max_session_streams = 256;
  // Connection-lifetime frame-rate budget: a session may always spend
  // `frame_budget_grace` frames; past that its total must stay under
  // max_frames_per_second * lifetime. Deterministic because lifetime is
  // simulated time.
  std::uint64_t frame_budget_grace = 512;
  double max_frames_per_second = 2000.0;
  // Deadline-driven session reaping: a session with no received bytes for
  // `stall_timeout` is shed at the next sweep (slowloris defense — without
  // this, reaping is only incidental on close and a stalled session pins
  // memory forever).
  origin::util::Duration stall_timeout = origin::util::Duration::seconds(30);
  origin::util::Duration sweep_interval = origin::util::Duration::seconds(5);
  // begin_drain(): sessions that have not finished their in-flight streams
  // by then are closed anyway.
  origin::util::Duration drain_grace = origin::util::Duration::seconds(10);
  // Delay between a draining session finishing its last stream and the
  // server hanging up. netsim drops deliveries to a torn-down connection,
  // so closing in the same event as the final flush would un-send the
  // GOAWAY and trailing response bytes; the linger must exceed the link's
  // one-way latency plus transfer time.
  origin::util::Duration drain_linger = origin::util::Duration::millis(100);

  // Applies the ORIGIN_* environment knobs on top of `defaults`:
  // ORIGIN_OVERLOAD (0/1), ORIGIN_MAX_SESSION_RSTS, ORIGIN_MAX_SESSION_PINGS,
  // ORIGIN_MAX_SESSION_SETTINGS, ORIGIN_MAX_SESSION_HEADER_BYTES,
  // ORIGIN_MAX_SESSION_RESPONSE_BYTES, ORIGIN_STALL_TIMEOUT_MS,
  // ORIGIN_DRAIN_GRACE_MS.
  static OverloadConfig from_env(OverloadConfig defaults);
  static OverloadConfig from_env();
};

struct ServerConfig {
  // Origins advertised in the ORIGIN frame on every new connection. Empty
  // disables the extension (a pre-RFC-8336 server).
  std::vector<std::string> origin_set;
  h2::Settings settings;
  OverloadConfig overload;
  // Per-connection gate consulted before emitting the ORIGIN frame; lets a
  // deployment suppress the advertisement for client tags whose path keeps
  // tearing connections down (the §6.7 kill-switch). Null = always send.
  std::function<bool(const std::string& client_tag)> origin_gate;
  // Fired when a connection closes, with the verbatim close reason and
  // whether ORIGIN was sent on it — the kill-switch's observation stream.
  std::function<void(const std::string& client_tag, bool origin_sent,
                     const std::string& reason)>
      close_feedback;
  // Admission control (cdn::AdmissionController): consulted at accept time;
  // a returned reason sheds the connection before any h2 state exists.
  // Null = admit everything.
  std::function<std::optional<std::string>(const std::string& client_tag)>
      admission_gate;
  // Fired when an admitted session closes, with the verbatim close reason —
  // the admission controller's concurrency and greylist feed.
  std::function<void(const std::string& client_tag, const std::string& reason)>
      admission_feedback;
};

class Http2Server {
 public:
  explicit Http2Server(ServerConfig config = {});

  void add_vhost(std::string hostname, Handler handler);
  void set_certificate(tls::Certificate cert);
  const tls::CertStore& cert_store() const { return certs_; }

  // Replaces the advertised origin set (reconfiguration at runtime, as the
  // CDN deployment did between experiments).
  void set_origin_set(std::vector<std::string> origins);

  // Runtime wiring for the ORIGIN kill-switch (cdn::OriginKillSwitch).
  void set_origin_gate(std::function<bool(const std::string&)> gate) {
    config_.origin_gate = std::move(gate);
  }
  void set_close_feedback(
      std::function<void(const std::string&, bool, const std::string&)>
          feedback) {
    config_.close_feedback = std::move(feedback);
  }

  // Runtime wiring for admission control (cdn::AdmissionController).
  void set_admission_gate(
      std::function<std::optional<std::string>(const std::string&)> gate) {
    config_.admission_gate = std::move(gate);
  }
  void set_admission_feedback(
      std::function<void(const std::string&, const std::string&)> feedback) {
    config_.admission_feedback = std::move(feedback);
  }

  // Binds the server to an address on the simulated network.
  void listen(netsim::Network& network, dns::IpAddress address);

  // Graceful drain (DESIGN.md §13): every current session gets
  // GOAWAY(NO_ERROR) with the highest stream id the server has seen;
  // in-flight streams at or below it finish normally, later streams are
  // refused with RST_STREAM(REFUSED_STREAM), and each session closes as
  // soon as its last stream completes (or the drain grace period
  // expires). New connections still serve — fail-open lame-duck mode;
  // refusing them is the admission controller's job
  // (cdn::AdmissionController::begin_drain → "admission: draining").
  // Idempotent.
  void begin_drain(const std::string& reason);
  bool draining() const { return draining_; }

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses_200 = 0;
    std::uint64_t responses_404 = 0;
    std::uint64_t responses_421 = 0;
    std::uint64_t origin_frames_sent = 0;
    // Connections where the origin_gate vetoed the advertisement.
    std::uint64_t origin_frames_suppressed = 0;
    std::uint64_t h2_protocol_errors = 0;
    // submit_* rejected a frame (closed stream, exhausted window): the
    // response was dropped rather than silently half-sent.
    std::uint64_t submit_failures = 0;
    // --- overload protection ---------------------------------------------
    // Sessions closed by a per-session budget (reason "overload: ...").
    std::uint64_t sessions_shed = 0;
    // Of those, sessions reaped by the stall sweep.
    std::uint64_t sessions_reaped_stalled = 0;
    // Connections refused at accept time by the admission gate.
    std::uint64_t admission_rejections = 0;
    // Streams refused with RST_STREAM(REFUSED_STREAM) during drain.
    std::uint64_t streams_refused = 0;
    std::uint64_t drains_started = 0;
    // Draining sessions that finished every in-flight stream.
    std::uint64_t drained_clean = 0;
    // Every server-initiated close, keyed by the verbatim reason; the
    // deterministic ledger the overload tests and benches byte-compare.
    std::map<std::string, std::uint64_t> close_reasons;

    void merge(const Stats& other);
    // Canonical byte form (sorted close_reasons last); the 1-vs-8-thread
    // determinism checks compare this string.
    std::string serialize() const;
  };
  const Stats& stats() const { return stats_; }
  std::size_t live_sessions() const { return sessions_.size(); }

 private:
  struct Session {
    std::shared_ptr<h2::Connection> connection;
    netsim::TcpEndpoint endpoint;
    // Captured at accept time: the endpoint loses its tag once the
    // connection is reaped, but close_feedback still needs it.
    std::string client_tag;
    bool origin_sent = false;
    // --- overload accounting ---------------------------------------------
    origin::util::SimTime accepted_at;
    // Last time bytes arrived from the peer; the stall sweep's input.
    origin::util::SimTime last_activity;
    // Decoded request-header bytes across all streams (§10.5.1 accounting).
    std::uint64_t header_bytes = 0;
    // Response-body bytes queued for this session.
    std::uint64_t response_bytes = 0;
    // GOAWAY(NO_ERROR) sent; streams above drain_last_stream_id refused.
    bool draining = false;
    std::uint32_t drain_last_stream_id = 0;
    // A "drain: complete" close is scheduled (drain_linger from now).
    bool drain_close_pending = false;
    // close_session already ran; the async netsim on_close will reap it.
    bool closing = false;
  };

  void accept(netsim::TcpEndpoint endpoint);
  void handle_request(Session& session, std::uint32_t stream_id,
                      const hpack::HeaderList& headers);
  void flush(Session& session);
  // The single audited close path: records the reason in
  // Stats::close_reasons, then tears the transport down with it. Every
  // server-initiated close MUST go through here (lint: server-close-recorded).
  void close_endpoint(netsim::TcpEndpoint& endpoint, const std::string& reason);
  void close_session(Session& session, const std::string& reason);
  // Checks every per-session budget; sheds and returns true on violation.
  bool enforce_budgets(Session& session);
  // Closes a draining session once its last in-flight stream finished.
  void maybe_finish_drain(Session& session);
  void schedule_sweep();
  void sweep();

  ServerConfig config_;
  // less<> enables lookup by the string_view :authority without an
  // allocated key copy.
  std::map<std::string, Handler, std::less<>> vhosts_;
  tls::CertStore certs_;
  std::vector<std::shared_ptr<Session>> sessions_;
  Stats stats_;
  // Set by listen(); the simulator behind it drives the stall sweep and
  // the drain grace deadline.
  netsim::Network* network_ = nullptr;
  bool sweep_scheduled_ = false;
  bool draining_ = false;
};

// Convenience: header list for a GET request (client side).
hpack::HeaderList make_get_request(const std::string& authority,
                                   const std::string& path);

// Extracts a pseudo-header value ("" when absent). The view borrows from
// `headers` and is valid only while the list is alive.
std::string_view header_value(const hpack::HeaderList& headers,
                              std::string_view name);

}  // namespace origin::server
