// Least-effort certificate modification planner (paper §4.3).
//
// For each website: which hostnames does the page need that are (a) served
// by the same provider/AS as the site itself, but (b) absent from the
// site's certificate SAN? Those names are exactly what both IP- and
// ORIGIN-based coalescing require in the certificate. The planner keeps
// the number of certificates unchanged (the paper's compromise position)
// and only appends names to the site's existing certificate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "browser/environment.h"
#include "model/coalescing_model.h"
#include "web/har.h"

namespace origin::model {

struct CertPlan {
  std::string site_domain;
  std::size_t existing_san_count = 0;
  std::vector<std::string> additions;  // hostnames to append to the SAN
  std::size_t ideal_san_count() const {
    return existing_san_count + additions.size();
  }
  bool needs_change() const { return !additions.empty(); }
};

class CertPlanner {
 public:
  CertPlanner(const browser::Environment& env, Grouping grouping)
      : env_(env), model_(env, grouping) {}

  // Plans changes for one site given its measured page load. The site's
  // certificate is looked up via its base hostname's service.
  CertPlan plan(const web::PageLoad& load) const;

 private:
  const browser::Environment& env_;
  CoalescingModel model_;
};

// Aggregation across the corpus for Tables 8–9 / Figures 4–5.
struct PlannerAggregate {
  // Figure 4: SAN-count distributions before/after.
  std::vector<double> existing_san_counts;
  std::vector<double> ideal_san_counts;
  std::vector<std::size_t> additions_per_site;  // Figure 5 (green)
  std::size_t sites = 0;
  std::size_t unchanged_sites = 0;
  std::size_t no_san_sites = 0;           // certificates without SAN
  std::size_t no_san_needing_change = 0;  // of those, how many need changes

  // Table 9: per provider, how often each addable hostname appears, plus
  // how many sites that provider hosts. Sorted order is the point (the
  // table prints providers/hostnames lexicographically), so these stay on
  // std::map rather than the interned flat containers.
  std::map<std::string, std::map<std::string, std::size_t>>  // lint:allow(no-string-keyed-tree)
      provider_addition_counts;
  std::map<std::string, std::size_t> provider_site_counts;  // lint:allow(no-string-keyed-tree)

  void add(const browser::Environment& env, const CertPlan& plan,
           const std::string& provider);
};

}  // namespace origin::model
