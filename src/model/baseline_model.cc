// Seed implementation, frozen as the golden reference for the interned
// hot path. See baseline_model.h. The string-keyed tree containers are the
// point of this file, hence the lint waivers.
#include "model/baseline_model.h"

#include <algorithm>
#include <map>
#include <set>

namespace origin::model::baseline {

using origin::util::Duration;
using origin::util::SimTime;

std::string BaselineCoalescingModel::group_of(const std::string& hostname,
                                              std::uint32_t asn) const {
  switch (grouping_) {
    case Grouping::kAsn:
      return "as" + std::to_string(asn);
    case Grouping::kProvider: {
      const auto* service = env_.find_service(hostname);
      return service != nullptr ? "org:" + service->provider
                                : "as" + std::to_string(asn);
    }
    case Grouping::kService: {
      const auto* service = env_.find_service(hostname);
      return service != nullptr ? "svc:" + service->name
                                : "host:" + hostname;
    }
  }
  return "?";
}

PageAnalysis BaselineCoalescingModel::analyze(const web::PageLoad& load) const {
  PageAnalysis analysis;
  analysis.entries.resize(load.entries.size());

  analysis.measured_dns = load.dns_query_count();
  analysis.measured_tls = load.tls_connection_count();
  analysis.measured_validations = load.certificate_validation_count();

  auto coalescable = [](const web::HarEntry& entry) { return entry.secure; };

  std::set<std::string> groups_seen;        // lint:allow(no-string-keyed-tree)
  std::set<std::string> solo_tls_hosts;     // lint:allow(no-string-keyed-tree)
  std::set<std::string> plaintext_hosts;    // lint:allow(no-string-keyed-tree)
  std::set<dns::IpAddress> addresses_seen;
  std::size_t ip_connections = 0;

  for (std::size_t i = 0; i < load.entries.size(); ++i) {
    const web::HarEntry& entry = load.entries[i];
    EntryAnalysis& ea = analysis.entries[i];
    ea.group_key = group_of(entry.hostname, entry.asn);

    if (entry.asn != 0 && coalescable(entry)) {
      if (groups_seen.contains(ea.group_key)) {
        ea.coalescable_origin = true;
      } else {
        groups_seen.insert(ea.group_key);
      }
    } else if (entry.secure) {
      solo_tls_hosts.insert(entry.hostname);
    } else {
      plaintext_hosts.insert(entry.hostname);
    }

    if (entry.new_tls_connection) {
      if (addresses_seen.contains(entry.server_address)) {
        ea.coalescable_ip = true;
      } else {
        addresses_seen.insert(entry.server_address);
        ++ip_connections;
      }
    }
  }

  analysis.ideal_origin_dns = groups_seen.size() + solo_tls_hosts.size() +
                              plaintext_hosts.size();
  analysis.ideal_origin_tls = groups_seen.size() + solo_tls_hosts.size();
  analysis.ideal_origin_validations =
      groups_seen.size() + solo_tls_hosts.size();

  analysis.ideal_ip_dns = analysis.measured_dns - load.extra_dns_queries;
  analysis.ideal_ip_tls = ip_connections;
  return analysis;
}

web::PageLoad BaselineCoalescingModel::reconstruct(
    const web::PageLoad& load, const PageAnalysis& analysis,
    const std::string& restrict_to_group) const {
  web::PageLoad out = load;
  out.extra_dns_queries = 0;
  out.extra_tls_connections = 0;

  auto applies = [&](std::size_t i) {
    if (!analysis.entries[i].coalescable_origin) return false;
    return restrict_to_group.empty() ||
           analysis.entries[i].group_key == restrict_to_group;
  };

  struct Batch {
    std::string group;
    SimTime window_end;
    Duration min_dns;
    std::vector<std::size_t> members;
  };
  std::vector<Batch> batches;
  for (std::size_t i = 0; i < load.entries.size(); ++i) {
    if (!applies(i)) continue;
    const auto& entry = load.entries[i];
    const std::string& group = analysis.entries[i].group_key;
    Batch* batch = nullptr;
    for (auto& candidate : batches) {
      if (candidate.group == group && entry.start <= candidate.window_end) {
        batch = &candidate;
        break;
      }
    }
    if (batch == nullptr) {
      batches.push_back(Batch{group, entry.start + entry.timings.dns,
                              entry.timings.dns, {}});
      batch = &batches.back();
    }
    batch->window_end =
        std::max(batch->window_end, entry.start + entry.timings.dns);
    batch->min_dns = std::min(batch->min_dns, entry.timings.dns);
    batch->members.push_back(i);
  }
  std::map<std::size_t, Duration> dns_reduction;
  for (const auto& batch : batches) {
    for (std::size_t member : batch.members) {
      dns_reduction[member] = batch.min_dns;
    }
  }

  for (std::size_t i = 0; i < out.entries.size(); ++i) {
    web::HarEntry& entry = out.entries[i];
    const web::HarEntry& orig = load.entries[i];

    if (applies(i)) {
      auto it = dns_reduction.find(i);
      const Duration reduction =
          it != dns_reduction.end() ? it->second : orig.timings.dns;
      entry.timings.dns = orig.timings.dns - reduction;
      entry.timings.connect = Duration();
      entry.timings.ssl = Duration();
      entry.timings.blocked = Duration();
      entry.new_dns_query = false;
      entry.new_tls_connection = false;
      entry.cert_san_count = -1;
      entry.cert_serial = 0;
    }

    // O(n²) anchor recovery — the complexity the interned path replaces
    // with the sorted-by-end prefix sweep; kept here as the semantic spec.
    SimTime orig_anchor_end;
    SimTime new_anchor_end;
    bool anchored = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (load.entries[j].end() <= orig.start &&
          (!anchored || load.entries[j].end() > orig_anchor_end)) {
        orig_anchor_end = load.entries[j].end();
        new_anchor_end = out.entries[j].end();
        anchored = true;
      }
    }
    if (anchored) {
      const Duration gap = orig.start - orig_anchor_end;
      entry.start = new_anchor_end + gap;
    }
  }
  return out;
}

}  // namespace origin::model::baseline
