// Best-case coalescing model (paper §4).
//
// Inputs are measured HAR timelines; outputs are the paper's three
// predictions:
//   1. which requests *could have been* coalesced (ideal ORIGIN and ideal
//      IP variants),
//   2. the predicted DNS / TLS / certificate-validation counts under each
//      ideal (§4.2, Figure 3),
//   3. a conservatively reconstructed timeline with the avoided DNS and
//      TCP+TLS setup removed (§4.1, Figure 2) — the basis of the PLT
//      predictions in Figure 9.
//
// The model's core assumption (§4.1) is that every server in an AS can
// authoritatively serve all content of that AS; grouping by AS is therefore
// the default, with provider/service granularities available for the
// ablation bench.
//
// Hot-path representation (DESIGN.md §10): group keys are interned
// SymbolIds, not strings. All group ids for the serving world are assigned
// in a serial pass at construction, and the batch APIs run a serial intern
// prepass over their inputs, so ids — and therefore all outputs — are
// bit-identical at any thread count. The string-keyed seed implementation
// is preserved in baseline_model.h as the golden reference.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "browser/environment.h"
#include "dns/record.h"
#include "util/flat_map.h"
#include "util/interner.h"
#include "util/sim_time.h"
#include "web/har.h"

namespace origin::model {

enum class Grouping {
  kAsn,       // the paper's assumption: AS == coalescing unit
  kProvider,  // organization (merges an operator's several ASes)
  kService,   // exact deployment unit (strictest sound grouping)
};

const char* grouping_name(Grouping grouping);

struct EntryAnalysis {
  bool coalescable_origin = false;  // rides an earlier connection, ideal ORIGIN
  bool coalescable_ip = false;      // same server IP as an earlier connection
  // Coalescing unit this entry belongs to; resolve the spelled-out key via
  // CoalescingModel::group_name().
  util::SymbolId group = util::kInvalidSymbol;
};

struct PageAnalysis {
  std::vector<EntryAnalysis> entries;

  // Measured counts (from the HAR, including race extras).
  std::size_t measured_dns = 0;
  std::size_t measured_tls = 0;
  std::size_t measured_validations = 0;

  // §4.2 ideals: one DNS query + TLS handshake + validation per *service*
  // (group) for coalescable traffic; non-coalescable requests (h1,
  // insecure, unknown hosts) keep their measured behaviour.
  std::size_t ideal_origin_dns = 0;
  std::size_t ideal_origin_tls = 0;
  std::size_t ideal_origin_validations = 0;

  // Ideal IP coalescing: any set of >= 2 connections to one address
  // becomes one connection; no certificate or DNS changes assumed.
  std::size_t ideal_ip_dns = 0;
  std::size_t ideal_ip_tls = 0;
};

// Per-thread workspace reused across analyze/reconstruct calls. All
// members clear() without releasing capacity, so batch replay over a
// corpus does zero steady-state allocation once warm. Not thread-safe;
// the batch APIs keep one instance per worker thread.
struct AnalysisScratch {
  // analyze()
  util::FlatSet<util::SymbolId> groups_seen;
  util::FlatSet<std::string_view> solo_tls_hosts;
  util::FlatSet<std::string_view> plaintext_hosts;
  util::FlatSet<dns::IpAddress> addresses_seen;

  // reconstruct(): §4.1 concurrency batches, recorded per entry index
  // (replaces the seed's std::map<size_t, Duration>). Batches of one group
  // form a creation-ordered chain via `next`, headed by open_batches, so
  // membership lookup probes one hash slot then a short chain instead of
  // scanning every batch on the page.
  struct Batch {
    util::SymbolId group = util::kInvalidSymbol;
    util::SimTime window_end;
    util::Duration min_dns;
    std::int32_t next = -1;  // next batch of the same group, creation order
  };
  std::vector<Batch> batches;
  std::vector<std::int32_t> batch_of;  // entry -> batch index, -1 none
  util::FlatMap<util::SymbolId, std::int32_t> open_batches;  // group -> head

  // reconstruct(): O(n log n) anchor recovery (prefix-max over the original
  // schedule; replaces the seed's O(n²) scan). The fast path packs
  // (end, index) into one word and runs a single sort plus a Fenwick tree
  // over end ranks; the generic path (arbitrary int64 timestamps) keeps a
  // two-sort sweep over entry indices.
  struct AnchorCandidate {
    util::SimTime end;
    std::int32_t index = -1;  // -1: no candidate
  };
  std::vector<std::int32_t> anchor_of;  // entry -> anchor index, -1 none
  std::vector<util::SimTime> ends;      // original entry ends, computed once
  std::vector<std::uint64_t> end_order;  // packed (end << 32 | index), sorted
  std::vector<std::uint32_t> rank_of;    // entry -> position in end_order
  std::vector<std::uint64_t> anchor_tree;  // Fenwick prefix-max over ranks
  std::vector<std::uint32_t> order_by_end;    // generic fallback
  std::vector<std::uint32_t> order_by_start;  // generic fallback
  std::vector<AnchorCandidate> prefix_max;  // Fenwick tree over entry index
};

class CoalescingModel {
 public:
  // Interns one group id per existing service (plus the "as0" unknown-AS
  // bucket) in service order — the serial id-assignment pass the
  // determinism contract requires. Services added to `env` later are still
  // handled, via runtime interning; batch callers stay deterministic
  // because of the serial prepass in the batch APIs.
  explicit CoalescingModel(const browser::Environment& env,
                           Grouping grouping = Grouping::kAsn);

  PageAnalysis analyze(const web::PageLoad& load) const;
  PageAnalysis analyze(const web::PageLoad& load,
                       AnalysisScratch& scratch) const;

  // §4.1 conservative timeline reconstruction. `restrict_to_group`
  // non-empty limits coalescing to that group only (the "deployment CDN
  // only" prediction in Figure 9's dotted line); a group key that was
  // never seen matches no entries, as in the seed implementation.
  web::PageLoad reconstruct(const web::PageLoad& load,
                            const PageAnalysis& analysis,
                            const std::string& restrict_to_group = "") const;
  web::PageLoad reconstruct(const web::PageLoad& load,
                            const PageAnalysis& analysis,
                            const std::string& restrict_to_group,
                            AnalysisScratch& scratch) const;

  // Sharded per-site replay: analyze/reconstruct every load on a thread
  // pool. Both are pure per page and results are merged by input index, so
  // output is bit-identical at any thread count (threads: 0 = ORIGIN_THREADS
  // default, 1 = serial fallback).
  std::vector<PageAnalysis> analyze_batch(
      const std::vector<web::PageLoad>& loads, std::size_t threads = 1) const;
  std::vector<web::PageLoad> reconstruct_batch(
      const std::vector<web::PageLoad>& loads,
      const std::vector<PageAnalysis>& analyses,
      const std::string& restrict_to_group = "",
      std::size_t threads = 1) const;

  // Fused analyze+reconstruct per page: no retained PageAnalysis vector,
  // one scratch pass per load. The corpus-replay fast path measured by
  // bench_perf_model.
  std::vector<web::PageLoad> replay_batch(
      const std::vector<web::PageLoad>& loads,
      const std::string& restrict_to_group = "",
      std::size_t threads = 1) const;

  // Consume overload: reconstructs the given pages in place and returns the
  // same vector. Skips the per-page deep copy (hostnames, DNS answer sets,
  // issuer strings) that dominates the copying overload's profile — use it
  // when the measured timeline is not needed afterwards.
  std::vector<web::PageLoad> replay_batch(
      std::vector<web::PageLoad>&& loads,
      const std::string& restrict_to_group = "",
      std::size_t threads = 1) const;

  // Group id for a hostname under the configured grouping. Thread-safe;
  // deterministic ids require the serial-prepass discipline (see class
  // comment).
  util::SymbolId group_of(const std::string& hostname,
                          std::uint32_t asn) const;

  // Spelled-out key ("as13335", "org:…", "svc:…", "host:…") for a group
  // id returned by group_of().
  std::string_view group_name(util::SymbolId group) const {
    return groups_.name(group);
  }

  // Id for a spelled-out key; kInvalidSymbol if never interned (which
  // matches no analyzed entry).
  util::SymbolId find_group(std::string_view key) const {
    return groups_.lookup(key);
  }

 private:
  void analyze_into(const web::PageLoad& load, PageAnalysis* out,
                    AnalysisScratch& scratch) const;
  web::PageLoad reconstruct_impl(const web::PageLoad& load,
                                 const PageAnalysis& analysis, bool restricted,
                                 util::SymbolId restrict_to,
                                 AnalysisScratch& scratch) const;
  // One-pass fused replay: the §4.2 counts and ideal-IP flags are not
  // needed to rebuild the waterfall, so the batch scan folds the reduced
  // analysis (group + repeat-of-group) directly into its entry loop and
  // mutates the page in place. Output is identical to
  // reconstruct(load, analyze(load), restrict) — enforced by the golden
  // test against the string-keyed baseline.
  void replay_page_in_place(web::PageLoad& page, bool restricted,
                            util::SymbolId restrict_to,
                            AnalysisScratch& scratch) const;
  // Serial intern prepass over a batch input: assigns any not-yet-seen
  // group id in input order before the parallel region runs.
  void intern_groups(const std::vector<web::PageLoad>& loads) const;
  util::SymbolId asn_group(std::uint32_t asn) const;
  util::SymbolId intern_key(std::string_view prefix,
                            std::string_view rest) const;

  const browser::Environment& env_;
  Grouping grouping_;
  // Interning in const analysis paths (unknown hosts/ASes at runtime).
  mutable util::Interner groups_;
  util::FlatMap<std::uint32_t, util::SymbolId> asn_groups_;
  std::vector<util::SymbolId> service_groups_;  // by service index
};

}  // namespace origin::model
