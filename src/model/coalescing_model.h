// Best-case coalescing model (paper §4).
//
// Inputs are measured HAR timelines; outputs are the paper's three
// predictions:
//   1. which requests *could have been* coalesced (ideal ORIGIN and ideal
//      IP variants),
//   2. the predicted DNS / TLS / certificate-validation counts under each
//      ideal (§4.2, Figure 3),
//   3. a conservatively reconstructed timeline with the avoided DNS and
//      TCP+TLS setup removed (§4.1, Figure 2) — the basis of the PLT
//      predictions in Figure 9.
//
// The model's core assumption (§4.1) is that every server in an AS can
// authoritatively serve all content of that AS; grouping by AS is therefore
// the default, with provider/service granularities available for the
// ablation bench.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "browser/environment.h"
#include "web/har.h"

namespace origin::model {

enum class Grouping {
  kAsn,       // the paper's assumption: AS == coalescing unit
  kProvider,  // organization (merges an operator's several ASes)
  kService,   // exact deployment unit (strictest sound grouping)
};

const char* grouping_name(Grouping grouping);

struct EntryAnalysis {
  bool coalescable_origin = false;  // rides an earlier connection, ideal ORIGIN
  bool coalescable_ip = false;      // same server IP as an earlier connection
  std::string group_key;            // coalescing unit this entry belongs to
};

struct PageAnalysis {
  std::vector<EntryAnalysis> entries;

  // Measured counts (from the HAR, including race extras).
  std::size_t measured_dns = 0;
  std::size_t measured_tls = 0;
  std::size_t measured_validations = 0;

  // §4.2 ideals: one DNS query + TLS handshake + validation per *service*
  // (group) for coalescable traffic; non-coalescable requests (h1,
  // insecure, unknown hosts) keep their measured behaviour.
  std::size_t ideal_origin_dns = 0;
  std::size_t ideal_origin_tls = 0;
  std::size_t ideal_origin_validations = 0;

  // Ideal IP coalescing: any set of >= 2 connections to one address
  // becomes one connection; no certificate or DNS changes assumed.
  std::size_t ideal_ip_dns = 0;
  std::size_t ideal_ip_tls = 0;
};

class CoalescingModel {
 public:
  explicit CoalescingModel(const browser::Environment& env,
                           Grouping grouping = Grouping::kAsn)
      : env_(env), grouping_(grouping) {}

  PageAnalysis analyze(const web::PageLoad& load) const;

  // §4.1 conservative timeline reconstruction. `restrict_to_group`
  // non-empty limits coalescing to that group only (the "deployment CDN
  // only" prediction in Figure 9's dotted line).
  web::PageLoad reconstruct(const web::PageLoad& load,
                            const PageAnalysis& analysis,
                            const std::string& restrict_to_group = "") const;

  // Sharded per-site replay: analyze/reconstruct every load on a thread
  // pool. Both are pure per page and results are merged by input index, so
  // output is bit-identical at any thread count (threads: 0 = ORIGIN_THREADS
  // default, 1 = serial fallback).
  std::vector<PageAnalysis> analyze_batch(
      const std::vector<web::PageLoad>& loads, std::size_t threads = 1) const;
  std::vector<web::PageLoad> reconstruct_batch(
      const std::vector<web::PageLoad>& loads,
      const std::vector<PageAnalysis>& analyses,
      const std::string& restrict_to_group = "",
      std::size_t threads = 1) const;

  // Group key for a hostname under the configured grouping.
  std::string group_of(const std::string& hostname, std::uint32_t asn) const;

 private:
  const browser::Environment& env_;
  Grouping grouping_;
};

}  // namespace origin::model
