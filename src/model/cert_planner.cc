#include "model/cert_planner.h"

#include <algorithm>
#include <set>

namespace origin::model {

CertPlan CertPlanner::plan(const web::PageLoad& load) const {
  CertPlan plan;
  plan.site_domain = load.base_hostname;

  const auto* site_service = env_.find_service(load.base_hostname);
  if (site_service == nullptr || site_service->certificate == nullptr) {
    return plan;
  }
  const tls::Certificate& cert = *site_service->certificate;
  plan.existing_san_count = cert.san_dns.size();

  // The site's own coalescing unit, per the model's grouping. Group
  // membership is an interned-id compare (DESIGN.md §10).
  std::uint32_t site_asn = site_service->asn;
  const util::SymbolId site_group =
      model_.group_of(load.base_hostname, site_asn);

  // Sorted order is the point here: additions feed the SAN list in
  // deterministic lexicographic order.
  std::set<std::string> needed;  // lint:allow(no-string-keyed-tree)
  for (const auto& entry : load.entries) {
    if (entry.hostname == load.base_hostname) continue;
    if (!entry.secure) continue;  // plaintext hosts cannot ride the cert
    if (entry.asn == 0) continue;
    // Same provider/AS as the site: the provider can serve it on the
    // site's connection, so the name belongs in the ORIGIN set — and
    // therefore in the SAN.
    if (model_.group_of(entry.hostname, entry.asn) != site_group) continue;
    if (cert.covers(entry.hostname)) continue;  // wildcard or existing SAN
    needed.insert(entry.hostname);
  }
  plan.additions.assign(needed.begin(), needed.end());
  return plan;
}

void PlannerAggregate::add(const browser::Environment& env,
                           const CertPlan& plan, const std::string& provider) {
  ++sites;
  existing_san_counts.push_back(static_cast<double>(plan.existing_san_count));
  ideal_san_counts.push_back(static_cast<double>(plan.ideal_san_count()));
  additions_per_site.push_back(plan.additions.size());
  if (!plan.needs_change()) ++unchanged_sites;
  if (plan.existing_san_count == 0) {
    ++no_san_sites;
    if (plan.needs_change()) ++no_san_needing_change;
  }
  ++provider_site_counts[provider];
  for (const auto& host : plan.additions) {
    // Only popular, provider-hosted third-party names are interesting for
    // Table 9; shard names of the site itself are site-specific.
    ++provider_addition_counts[provider][host];
  }
  (void)env;
}

}  // namespace origin::model
