#include "model/coalescing_model.h"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "util/check.h"
#include "util/hot_path.h"
#include "util/thread_pool.h"

namespace origin::model {

using origin::util::Duration;
using origin::util::SimTime;

const char* grouping_name(Grouping grouping) {
  switch (grouping) {
    case Grouping::kAsn: return "asn";
    case Grouping::kProvider: return "provider";
    case Grouping::kService: return "service";
  }
  return "?";
}

namespace {

// "as<asn>" formatted into a caller-provided stack buffer: building a
// group key never allocates on the hot path.
ORIGIN_HOT std::string_view format_asn_key(char (&buffer)[16], std::uint32_t asn) {
  buffer[0] = 'a';
  buffer[1] = 's';
  const auto result =
      std::to_chars(buffer + 2, buffer + sizeof(buffer), asn);
  return {buffer, static_cast<std::size_t>(result.ptr - buffer)};
}

// Per-thread workspace for the scratch-less convenience overloads and the
// batch APIs: each worker reuses one arena across every page it replays,
// which is what makes the batch steady state allocation-free.
AnalysisScratch& local_scratch() {
  static thread_local AnalysisScratch scratch;
  return scratch;
}

ORIGIN_HOT bool anchor_better(const AnalysisScratch::AnchorCandidate& a,
                   const AnalysisScratch::AnchorCandidate& b) {
  // Matches the seed's strict `>` scan: a strictly later end wins, and
  // among equal ends the smallest entry index (the one the scan saw
  // first) is kept.
  if (a.index < 0) return false;
  if (b.index < 0) return true;
  if (a.end != b.end) return b.end < a.end;
  return a.index < b.index;
}

// Fenwick (binary indexed tree) specialised to prefix-max of
// AnchorCandidate over entry indices.
ORIGIN_HOT void prefix_max_update(std::vector<AnalysisScratch::AnchorCandidate>& tree,
                       std::size_t position,
                       const AnalysisScratch::AnchorCandidate& candidate) {
  for (std::size_t k = position; k < tree.size(); k |= k + 1) {
    if (anchor_better(candidate, tree[k])) tree[k] = candidate;
  }
}

ORIGIN_HOT AnalysisScratch::AnchorCandidate prefix_max_query(
    const std::vector<AnalysisScratch::AnchorCandidate>& tree,
    std::size_t count) {
  AnalysisScratch::AnchorCandidate best;
  for (std::size_t k = count; k > 0; k &= k - 1) {
    if (anchor_better(tree[k - 1], best)) best = tree[k - 1];
  }
  return best;
}

// Anchor fast path: every start and end fits an unsigned 32-bit microsecond
// count (~71 minutes — every realistic waterfall), so (time, index) packs
// into one word and candidate comparison is a single integer compare.
//
// One ascending sort of packed (end << 32 | index) yields each entry's end
// rank; entries are then processed in index order, inserting entry i-1's
// candidate before querying entry i, which makes the seed's j < i
// constraint implicit. Eligibility (end_j <= start_i) becomes a prefix of
// the rank axis, found by binary search, and the Fenwick tree keeps a
// prefix-max of packed candidates (end << 32 | ~index): the maximum is the
// latest end, ties resolving to the smallest index — exactly the seed's
// strict `>` scan. Packed candidates are never 0 (index < 2^31 keeps the
// low word non-zero), so 0 doubles as the empty-tree sentinel.
ORIGIN_HOT void compute_anchors_fast(const web::PageLoad& load, AnalysisScratch& s) {
  const std::size_t n = load.entries.size();
  s.end_order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.end_order[i] =
        (static_cast<std::uint64_t>(s.ends[i].micros()) << 32) | i;
  }
  std::sort(s.end_order.begin(), s.end_order.end());
  s.rank_of.resize(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    s.rank_of[static_cast<std::uint32_t>(s.end_order[r])] = r;
  }

  s.anchor_tree.assign(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t j = static_cast<std::uint32_t>(i - 1);
    const std::uint64_t candidate =
        (static_cast<std::uint64_t>(s.ends[j].micros()) << 32) |
        (0xFFFFFFFFu ^ j);
    for (std::size_t k = s.rank_of[j]; k < n; k |= k + 1) {
      if (candidate > s.anchor_tree[k]) s.anchor_tree[k] = candidate;
    }

    const std::uint64_t bound =
        (static_cast<std::uint64_t>(load.entries[i].start.micros()) << 32) |
        0xFFFFFFFFull;
    const std::size_t eligible = static_cast<std::size_t>(
        std::upper_bound(s.end_order.begin(), s.end_order.end(), bound) -
        s.end_order.begin());
    std::uint64_t best = 0;
    for (std::size_t k = eligible; k > 0; k &= k - 1) {
      if (s.anchor_tree[k - 1] > best) best = s.anchor_tree[k - 1];
    }
    if (best != 0) {
      s.anchor_of[i] = static_cast<std::int32_t>(
          0xFFFFFFFFu ^ static_cast<std::uint32_t>(best));
    }
  }
}

// Generic fallback for timestamps outside the packable range: sweep entries
// in start order, inserting ends into a prefix-max Fenwick tree over entry
// indices as they become eligible.
ORIGIN_HOT void compute_anchors_generic(const web::PageLoad& load, AnalysisScratch& s,
                             bool starts_sorted) {
  const std::size_t n = load.entries.size();
  s.order_by_end.resize(n);
  s.order_by_start.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.order_by_end[i] = i;
    s.order_by_start[i] = i;
  }
  std::sort(s.order_by_end.begin(), s.order_by_end.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (s.ends[a] != s.ends[b]) return s.ends[a] < s.ends[b];
              return a < b;
            });
  // Ties break by index, so when starts are already non-decreasing the
  // identity permutation is the sorted order.
  if (!starts_sorted) {
    std::sort(s.order_by_start.begin(), s.order_by_start.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const SimTime start_a = load.entries[a].start;
                const SimTime start_b = load.entries[b].start;
                if (start_a != start_b) return start_a < start_b;
                return a < b;
              });
  }

  s.prefix_max.assign(n, AnalysisScratch::AnchorCandidate{});
  std::size_t inserted = 0;
  for (std::size_t q = 0; q < n; ++q) {
    const std::uint32_t i = s.order_by_start[q];
    const SimTime start = load.entries[i].start;
    while (inserted < n) {
      const std::uint32_t j = s.order_by_end[inserted];
      const SimTime end = s.ends[j];
      if (start < end) break;
      prefix_max_update(s.prefix_max, j,
                        {end, static_cast<std::int32_t>(j)});
      ++inserted;
    }
    if (i == 0) continue;  // entry 0 has no predecessors
    // Prefix query over [0, i) enforces the seed's j < i constraint.
    s.anchor_of[i] = prefix_max_query(s.prefix_max, i).index;
  }
}

// Anchor recovery, §4.1: for every entry, the latest earlier entry whose
// original end is <= this entry's original start. The seed scanned all
// predecessors per entry (O(n²), src/model/coalescing_model.cc:190 in the
// seed tree); anchors depend only on the *original* schedule, so they are
// precomputed here in O(n log n).
ORIGIN_HOT void compute_anchors(const web::PageLoad& load, AnalysisScratch& s) {
  const std::size_t n = load.entries.size();
  s.anchor_of.assign(n, -1);
  if (n < 2) return;

  // Original ends, computed once: end() sums seven phase durations, so
  // everything below reads this cache instead of re-deriving it per
  // comparison. The same pass establishes the fast-path bounds.
  s.ends.resize(n);
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool starts_sorted = true;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t start = load.entries[i].start.micros();
    s.ends[i] = load.entries[i].end();
    const std::int64_t end = s.ends[i].micros();
    lo = std::min(lo, std::min(start, end));
    hi = std::max(hi, std::max(start, end));
    if (i > 0 && load.entries[i].start < load.entries[i - 1].start) {
      starts_sorted = false;
    }
  }

  if (lo >= 0 && hi < 0x100000000LL && n < 0x40000000) {
    compute_anchors_fast(load, s);
  } else {
    compute_anchors_generic(load, s, starts_sorted);
  }
}

// Joins entry i to its group's concurrency batch (§4.1): entries whose
// original setup windows overlap share one batch. Only same-group batches
// can match, so the seed's global creation-order scan reduces to one hash
// probe plus this group's (short) chain, walked in creation order.
ORIGIN_HOT void batch_join(std::size_t i, util::SymbolId group,
                const web::HarEntry& entry, AnalysisScratch& s) {
  std::int32_t found = -1;
  std::int32_t* head = s.open_batches.find(group);
  if (head != nullptr) {
    for (std::int32_t b = *head; b >= 0;
         b = s.batches[static_cast<std::size_t>(b)].next) {
      if (entry.start <= s.batches[static_cast<std::size_t>(b)].window_end) {
        found = b;
        break;
      }
    }
  }
  if (found < 0) {
    found = static_cast<std::int32_t>(s.batches.size());
    s.batches.push_back(
        {group, entry.start + entry.timings.dns, entry.timings.dns, -1});
    if (head != nullptr) {
      // Append at the tail so the chain stays in creation order.
      std::int32_t tail = *head;
      while (s.batches[static_cast<std::size_t>(tail)].next >= 0) {
        tail = s.batches[static_cast<std::size_t>(tail)].next;
      }
      s.batches[static_cast<std::size_t>(tail)].next = found;
    } else {
      s.open_batches.emplace(group, found);
    }
  }
  AnalysisScratch::Batch& batch = s.batches[static_cast<std::size_t>(found)];
  batch.window_end =
      std::max(batch.window_end, entry.start + entry.timings.dns);
  batch.min_dns = std::min(batch.min_dns, entry.timings.dns);
  s.batch_of[i] = found;
}

// Rebuilds the waterfall in place once s.batch_of / s.batches are filled.
// Reads of an entry's original fields happen before that entry is mutated,
// and anchors always point backwards (j < i), so by the time entry i needs
// out.entries[j].end() the anchor has already been rebuilt — in-place
// mutation is safe for both the copy path and the consume path.
ORIGIN_HOT void rebuild_in_place(web::PageLoad& page, AnalysisScratch& s) {
  // Re-anchoring (see compute_anchors): the HAR does not retain dependency
  // edges (same as the paper's input data), so the anchor is recovered
  // from the original schedule: the latest earlier entry that ended before
  // this one started is, by construction of the waterfall, the dependency
  // whose parsing dispatched it; the gap between them is browser CPU time
  // and is preserved verbatim (§4.1).
  compute_anchors(page, s);

  const std::size_t n = page.entries.size();
  for (std::size_t i = 0; i < n; ++i) {
    web::HarEntry& entry = page.entries[i];

    // batch_of is non-negative exactly for the entries the scan admitted.
    const std::int32_t batch = s.batch_of[i];
    if (batch >= 0) {
      const Duration reduction =
          s.batches[static_cast<std::size_t>(batch)].min_dns;
      entry.timings.dns = entry.timings.dns - reduction;
      entry.timings.connect = Duration();
      entry.timings.ssl = Duration();
      entry.timings.blocked = Duration();  // no 421s under correct ORIGIN
      entry.new_dns_query = false;
      entry.new_tls_connection = false;
      entry.cert_san_count = -1;
      entry.cert_serial = 0;
    }

    const std::int32_t anchor = s.anchor_of[i];
    if (anchor >= 0) {
      const std::size_t j = static_cast<std::size_t>(anchor);
      // s.ends still holds the *original* schedule (compute_anchors filled
      // it before any mutation); page.entries[j] has already been rebuilt
      // because anchors always point backwards (j < i).
      const Duration gap = entry.start - s.ends[j];
      entry.start = page.entries[j].end() + gap;
    }
  }
}

}  // namespace

CoalescingModel::CoalescingModel(const browser::Environment& env,
                                 Grouping grouping)
    : env_(env), grouping_(grouping) {
  // Serial id-assignment pass (the determinism contract, DESIGN.md §10):
  // every group key the serving world can produce is interned here, in
  // service order, before any analysis can run concurrently.
  char buffer[16];
  asn_groups_.emplace(0, groups_.intern(format_asn_key(buffer, 0)));
  const auto& services = env_.services();
  service_groups_.reserve(services.size());
  for (const auto& service : services) {
    if (!asn_groups_.contains(service.asn)) {
      asn_groups_.emplace(service.asn,
                          groups_.intern(format_asn_key(buffer, service.asn)));
    }
    switch (grouping_) {
      case Grouping::kAsn:
        service_groups_.push_back(*asn_groups_.find(service.asn));
        break;
      case Grouping::kProvider:
        service_groups_.push_back(intern_key("org:", service.provider));
        break;
      case Grouping::kService:
        service_groups_.push_back(intern_key("svc:", service.name));
        break;
    }
  }
}

util::SymbolId CoalescingModel::intern_key(std::string_view prefix,
                                           std::string_view rest) const {
  char stack[96];
  std::string heap;
  std::string_view key;
  if (prefix.size() + rest.size() <= sizeof(stack)) {
    std::memcpy(stack, prefix.data(), prefix.size());
    std::memcpy(stack + prefix.size(), rest.data(), rest.size());
    key = {stack, prefix.size() + rest.size()};
  } else {
    heap.reserve(prefix.size() + rest.size());
    heap.append(prefix);
    heap.append(rest);
    key = heap;
  }
  const util::SymbolId id = groups_.lookup(key);
  return id != util::kInvalidSymbol ? id : groups_.intern(key);
}

util::SymbolId CoalescingModel::asn_group(std::uint32_t asn) const {
  if (const util::SymbolId* id = asn_groups_.find(asn)) return *id;
  // AS outside the primed world (services added after construction, or
  // hand-built loads): intern on sight. lookup() first keeps the repeat
  // path lock-free.
  char buffer[16];
  const std::string_view key = format_asn_key(buffer, asn);
  const util::SymbolId id = groups_.lookup(key);
  return id != util::kInvalidSymbol ? id : groups_.intern(key);
}

util::SymbolId CoalescingModel::group_of(const std::string& hostname,
                                         std::uint32_t asn) const {
  switch (grouping_) {
    case Grouping::kAsn:
      return asn_group(asn);
    case Grouping::kProvider: {
      const std::size_t index = env_.service_index(hostname);
      if (index == browser::Environment::kNoService) return asn_group(asn);
      if (index < service_groups_.size()) return service_groups_[index];
      return intern_key("org:", env_.services()[index].provider);
    }
    case Grouping::kService: {
      const std::size_t index = env_.service_index(hostname);
      if (index == browser::Environment::kNoService) {
        return intern_key("host:", hostname);
      }
      if (index < service_groups_.size()) return service_groups_[index];
      return intern_key("svc:", env_.services()[index].name);
    }
  }
  return util::kInvalidSymbol;
}

void CoalescingModel::analyze_into(const web::PageLoad& load,
                                   PageAnalysis* out,
                                   AnalysisScratch& scratch) const {
  PageAnalysis& analysis = *out;
  analysis.entries.assign(load.entries.size(), EntryAnalysis{});

  // Measured counts accumulate inside the main loop below (one pass over
  // the entries instead of the three PageLoad count methods would take).
  std::size_t new_dns_queries = 0;
  std::size_t new_tls_connections = 0;
  std::size_t validations = 0;

  // §4.2's ideal is best-case: every service is assumed to deploy ORIGIN
  // frames and correct SANs (servers still on HTTP/1.1 are imagined
  // upgraded — the ideal counts *services*, not today's protocol status).
  // Only plaintext hosts stay outside: they cannot ride a TLS connection.
  auto coalescable = [](const web::HarEntry& entry) { return entry.secure; };

  scratch.groups_seen.clear();       // ideal-ORIGIN connections
  scratch.solo_tls_hosts.clear();    // secure but unattributable:
                                     // one TLS connection per host
  scratch.plaintext_hosts.clear();   // DNS yes, TLS never
  scratch.addresses_seen.clear();    // ideal-IP connections
  std::size_t ip_connections = 0;

  for (std::size_t i = 0; i < load.entries.size(); ++i) {
    const web::HarEntry& entry = load.entries[i];
    EntryAnalysis& ea = analysis.entries[i];
    ea.group = group_of(entry.hostname, entry.asn);

    if (entry.asn != 0 && coalescable(entry)) {
      // insert() is the seed's contains()+insert() in one probe.
      if (!scratch.groups_seen.insert(ea.group)) {
        ea.coalescable_origin = true;
      }
    } else if (entry.secure) {
      // Views into the load's own hostname strings: the load outlives
      // this call and the set is cleared on entry, so no dangling reads.
      scratch.solo_tls_hosts.insert(std::string_view(entry.hostname));
    } else {
      scratch.plaintext_hosts.insert(std::string_view(entry.hostname));
    }

    new_dns_queries += entry.new_dns_query ? 1 : 0;
    new_tls_connections += entry.new_tls_connection ? 1 : 0;
    validations += entry.cert_san_count >= 0 ? 1 : 0;

    // Ideal IP coalescing operates on the measured connections only.
    if (entry.new_tls_connection) {
      if (!scratch.addresses_seen.insert(entry.server_address)) {
        ea.coalescable_ip = true;
      } else {
        ++ip_connections;
      }
    }
  }

  // Same totals as PageLoad::dns_query_count() etc. (race extras included).
  analysis.measured_dns = load.extra_dns_queries + new_dns_queries;
  analysis.measured_tls = load.extra_tls_connections + new_tls_connections;
  analysis.measured_validations = validations;

  // §4.2: the ideal equals the number of separate services. Unattributable
  // secure hosts keep one TLS connection each; plaintext hosts still need
  // their DNS lookup but never a TLS handshake.
  analysis.ideal_origin_dns = scratch.groups_seen.size() +
                              scratch.solo_tls_hosts.size() +
                              scratch.plaintext_hosts.size();
  analysis.ideal_origin_tls =
      scratch.groups_seen.size() + scratch.solo_tls_hosts.size();
  analysis.ideal_origin_validations =
      scratch.groups_seen.size() + scratch.solo_tls_hosts.size();

  // Ideal IP: IP-based coalescing still *requires* the DNS query (the
  // address match is the authority check), so only the race-duplicate
  // queries disappear with the merged sockets. TLS shrinks to one
  // connection per distinct server address.
  analysis.ideal_ip_dns = analysis.measured_dns - load.extra_dns_queries;
  analysis.ideal_ip_tls = ip_connections;
}

PageAnalysis CoalescingModel::analyze(const web::PageLoad& load) const {
  return analyze(load, local_scratch());
}

PageAnalysis CoalescingModel::analyze(const web::PageLoad& load,
                                      AnalysisScratch& scratch) const {
  PageAnalysis analysis;
  analyze_into(load, &analysis, scratch);
  return analysis;
}

web::PageLoad CoalescingModel::reconstruct(
    const web::PageLoad& load, const PageAnalysis& analysis,
    const std::string& restrict_to_group) const {
  return reconstruct(load, analysis, restrict_to_group, local_scratch());
}

web::PageLoad CoalescingModel::reconstruct(
    const web::PageLoad& load, const PageAnalysis& analysis,
    const std::string& restrict_to_group, AnalysisScratch& scratch) const {
  const bool restricted = !restrict_to_group.empty();
  // An unknown key was never assigned to any entry, so it restricts the
  // reconstruction to nothing — the seed's behaviour for unknown groups.
  const util::SymbolId restrict_to =
      restricted ? groups_.lookup(restrict_to_group) : util::kInvalidSymbol;
  return reconstruct_impl(load, analysis, restricted, restrict_to, scratch);
}

web::PageLoad CoalescingModel::reconstruct_impl(
    const web::PageLoad& load, const PageAnalysis& analysis, bool restricted,
    util::SymbolId restrict_to, AnalysisScratch& s) const {
  ORIGIN_CHECK(analysis.entries.size() == load.entries.size(),
               "reconstruct: analysis does not match load");
  web::PageLoad out = load;
  out.extra_dns_queries = 0;  // races ride on avoided connections
  out.extra_tls_connections = 0;
  const std::size_t n = load.entries.size();

  auto applies = [&](std::size_t i) {
    const EntryAnalysis& ea = analysis.entries[i];
    return ea.coalescable_origin && (!restricted || ea.group == restrict_to);
  };

  // §4.1: for concurrently-blocked coalescable requests, only the minimum
  // DNS time among them is truly avoided; the spread between response
  // times is kept. Identify concurrency batches per group: entries whose
  // original setup windows overlap. Membership is recorded per entry
  // (batch_of), replacing the seed's member lists + std::map<size_t,
  // Duration> — with warm scratch capacity this loop does not allocate.
  s.batches.clear();
  s.open_batches.clear();
  s.batch_of.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!applies(i)) continue;
    batch_join(i, analysis.entries[i].group, load.entries[i], s);
  }

  // No entry coalesces (restricted replay missing the page, or a page with
  // nothing coalescable): nothing's timing changes, so re-anchoring would
  // reproduce every start verbatim. Return the copy as-is.
  if (s.batches.empty()) return out;

  rebuild_in_place(out, s);
  return out;
}

ORIGIN_HOT void CoalescingModel::replay_page_in_place(web::PageLoad& page,
                                           bool restricted,
                                           util::SymbolId restrict_to,
                                           AnalysisScratch& s) const {
  page.extra_dns_queries = 0;  // races ride on avoided connections
  page.extra_tls_connections = 0;
  const std::size_t n = page.entries.size();

  // Fused scan: the reduced analysis (group + repeat-of-group, exactly
  // analyze_into's coalescable_origin condition) folds into the batch
  // scan's entry loop. Entries that cannot coalesce (unknown AS or
  // plaintext) never even resolve their group.
  s.batches.clear();
  s.open_batches.clear();
  s.batch_of.assign(n, -1);
  s.groups_seen.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const web::HarEntry& entry = page.entries[i];
    if (entry.asn == 0 || !entry.secure) continue;
    const util::SymbolId group = group_of(entry.hostname, entry.asn);
    if (s.groups_seen.insert(group)) continue;  // first of its group
    if (restricted && group != restrict_to) continue;
    batch_join(i, group, entry, s);
  }

  if (s.batches.empty()) return;
  rebuild_in_place(page, s);
}

void CoalescingModel::intern_groups(
    const std::vector<web::PageLoad>& loads) const {
  // Serial prepass: assign any not-yet-seen group id in input order, so
  // the parallel region below only ever *reads* the symbol table and ids
  // are identical at every thread count.
  for (const auto& load : loads) {
    for (const auto& entry : load.entries) {
      (void)group_of(entry.hostname, entry.asn);
    }
  }
}

std::vector<PageAnalysis> CoalescingModel::analyze_batch(
    const std::vector<web::PageLoad>& loads, std::size_t threads) const {
  intern_groups(loads);
  std::vector<PageAnalysis> out(loads.size());
  origin::util::ThreadPool pool(threads);
  pool.parallel_for_index(loads.size(), [&](std::size_t i) {
    analyze_into(loads[i], &out[i], local_scratch());
  });
  return out;
}

std::vector<web::PageLoad> CoalescingModel::reconstruct_batch(
    const std::vector<web::PageLoad>& loads,
    const std::vector<PageAnalysis>& analyses,
    const std::string& restrict_to_group, std::size_t threads) const {
  ORIGIN_CHECK(loads.size() == analyses.size(),
               "reconstruct_batch: loads/analyses size mismatch");
  const bool restricted = !restrict_to_group.empty();
  const util::SymbolId restrict_to =
      restricted ? groups_.lookup(restrict_to_group) : util::kInvalidSymbol;
  std::vector<web::PageLoad> out(loads.size());
  origin::util::ThreadPool pool(threads);
  pool.parallel_for_index(loads.size(), [&](std::size_t i) {
    out[i] = reconstruct_impl(loads[i], analyses[i], restricted, restrict_to,
                              local_scratch());
  });
  return out;
}

std::vector<web::PageLoad> CoalescingModel::replay_batch(
    const std::vector<web::PageLoad>& loads,
    const std::string& restrict_to_group, std::size_t threads) const {
  intern_groups(loads);
  const bool restricted = !restrict_to_group.empty();
  const util::SymbolId restrict_to =
      restricted ? groups_.lookup(restrict_to_group) : util::kInvalidSymbol;
  std::vector<web::PageLoad> out(loads.size());
  origin::util::ThreadPool pool(threads);
  pool.parallel_for_index(loads.size(), [&](std::size_t i) {
    out[i] = loads[i];
    replay_page_in_place(out[i], restricted, restrict_to, local_scratch());
  });
  return out;
}

std::vector<web::PageLoad> CoalescingModel::replay_batch(
    std::vector<web::PageLoad>&& loads, const std::string& restrict_to_group,
    std::size_t threads) const {
  intern_groups(loads);
  const bool restricted = !restrict_to_group.empty();
  const util::SymbolId restrict_to =
      restricted ? groups_.lookup(restrict_to_group) : util::kInvalidSymbol;
  origin::util::ThreadPool pool(threads);
  pool.parallel_for_index(loads.size(), [&](std::size_t i) {
    replay_page_in_place(loads[i], restricted, restrict_to, local_scratch());
  });
  return std::move(loads);
}

}  // namespace origin::model
