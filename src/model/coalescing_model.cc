#include "model/coalescing_model.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/thread_pool.h"

namespace origin::model {

using origin::util::Duration;
using origin::util::SimTime;

const char* grouping_name(Grouping grouping) {
  switch (grouping) {
    case Grouping::kAsn: return "asn";
    case Grouping::kProvider: return "provider";
    case Grouping::kService: return "service";
  }
  return "?";
}

std::string CoalescingModel::group_of(const std::string& hostname,
                                      std::uint32_t asn) const {
  switch (grouping_) {
    case Grouping::kAsn:
      return "as" + std::to_string(asn);
    case Grouping::kProvider: {
      const auto* service = env_.find_service(hostname);
      return service != nullptr ? "org:" + service->provider
                                : "as" + std::to_string(asn);
    }
    case Grouping::kService: {
      const auto* service = env_.find_service(hostname);
      return service != nullptr ? "svc:" + service->name
                                : "host:" + hostname;
    }
  }
  return "?";
}

PageAnalysis CoalescingModel::analyze(const web::PageLoad& load) const {
  PageAnalysis analysis;
  analysis.entries.resize(load.entries.size());

  analysis.measured_dns = load.dns_query_count();
  analysis.measured_tls = load.tls_connection_count();
  analysis.measured_validations = load.certificate_validation_count();

  // §4.2's ideal is best-case: every service is assumed to deploy ORIGIN
  // frames and correct SANs (servers still on HTTP/1.1 are imagined
  // upgraded — the ideal counts *services*, not today's protocol status).
  // Only plaintext hosts stay outside: they cannot ride a TLS connection.
  auto coalescable = [](const web::HarEntry& entry) { return entry.secure; };

  std::set<std::string> groups_seen;         // ideal-ORIGIN connections
  std::set<std::string> solo_tls_hosts;      // secure but unattributable:
                                             // one TLS connection per host
  std::set<std::string> plaintext_hosts;     // DNS yes, TLS never
  std::set<dns::IpAddress> addresses_seen;   // ideal-IP connections
  std::size_t ip_connections = 0;

  for (std::size_t i = 0; i < load.entries.size(); ++i) {
    const web::HarEntry& entry = load.entries[i];
    EntryAnalysis& ea = analysis.entries[i];
    ea.group_key = group_of(entry.hostname, entry.asn);

    if (entry.asn != 0 && coalescable(entry)) {
      if (groups_seen.contains(ea.group_key)) {
        ea.coalescable_origin = true;
      } else {
        groups_seen.insert(ea.group_key);
      }
    } else if (entry.secure) {
      solo_tls_hosts.insert(entry.hostname);
    } else {
      plaintext_hosts.insert(entry.hostname);
    }

    // Ideal IP coalescing operates on the measured connections only.
    if (entry.new_tls_connection) {
      if (addresses_seen.contains(entry.server_address)) {
        ea.coalescable_ip = true;
      } else {
        addresses_seen.insert(entry.server_address);
        ++ip_connections;
      }
    }
  }

  // §4.2: the ideal equals the number of separate services. Unattributable
  // secure hosts keep one TLS connection each; plaintext hosts still need
  // their DNS lookup but never a TLS handshake.
  analysis.ideal_origin_dns = groups_seen.size() + solo_tls_hosts.size() +
                              plaintext_hosts.size();
  analysis.ideal_origin_tls = groups_seen.size() + solo_tls_hosts.size();
  analysis.ideal_origin_validations =
      groups_seen.size() + solo_tls_hosts.size();

  // Ideal IP: IP-based coalescing still *requires* the DNS query (the
  // address match is the authority check), so only the race-duplicate
  // queries disappear with the merged sockets. TLS shrinks to one
  // connection per distinct server address.
  analysis.ideal_ip_dns = analysis.measured_dns - load.extra_dns_queries;
  analysis.ideal_ip_tls = ip_connections;
  return analysis;
}

web::PageLoad CoalescingModel::reconstruct(
    const web::PageLoad& load, const PageAnalysis& analysis,
    const std::string& restrict_to_group) const {
  web::PageLoad out = load;
  out.extra_dns_queries = 0;  // races ride on avoided connections
  out.extra_tls_connections = 0;

  auto applies = [&](std::size_t i) {
    if (!analysis.entries[i].coalescable_origin) return false;
    return restrict_to_group.empty() ||
           analysis.entries[i].group_key == restrict_to_group;
  };

  // §4.1: for concurrently-blocked coalescable requests, only the minimum
  // DNS time among them is truly avoided; the spread between response
  // times is kept. Identify concurrency batches per group: entries whose
  // original setup windows overlap.
  struct Batch {
    std::string group;
    SimTime window_end;
    Duration min_dns;
    std::vector<std::size_t> members;
  };
  std::vector<Batch> batches;
  for (std::size_t i = 0; i < load.entries.size(); ++i) {
    if (!applies(i)) continue;
    const auto& entry = load.entries[i];
    const std::string& group = analysis.entries[i].group_key;
    Batch* batch = nullptr;
    for (auto& candidate : batches) {
      if (candidate.group == group && entry.start <= candidate.window_end) {
        batch = &candidate;
        break;
      }
    }
    if (batch == nullptr) {
      batches.push_back(Batch{group, entry.start + entry.timings.dns,
                              entry.timings.dns, {}});
      batch = &batches.back();
    }
    batch->window_end =
        std::max(batch->window_end, entry.start + entry.timings.dns);
    batch->min_dns = std::min(batch->min_dns, entry.timings.dns);
    batch->members.push_back(i);
  }
  std::map<std::size_t, Duration> dns_reduction;
  for (const auto& batch : batches) {
    for (std::size_t member : batch.members) {
      dns_reduction[member] = batch.min_dns;
    }
  }

  // Rebuild the waterfall preserving each entry's CPU gap after its parent
  // (discovery time is browser work the model must not touch, §4.1).
  for (std::size_t i = 0; i < out.entries.size(); ++i) {
    web::HarEntry& entry = out.entries[i];
    const web::HarEntry& orig = load.entries[i];

    if (applies(i)) {
      auto it = dns_reduction.find(i);
      const Duration reduction =
          it != dns_reduction.end() ? it->second : orig.timings.dns;
      entry.timings.dns = orig.timings.dns - reduction;
      entry.timings.connect = Duration();
      entry.timings.ssl = Duration();
      entry.timings.blocked = Duration();  // no 421s under correct ORIGIN
      entry.new_dns_query = false;
      entry.new_tls_connection = false;
      entry.cert_san_count = -1;
      entry.cert_serial = 0;
    }

    // Re-anchor on the schedule's predecessor. The HAR does not retain
    // dependency edges (same as the paper's input data), so the anchor is
    // recovered from the original schedule: the latest earlier entry that
    // ended before this one started is, by construction of the waterfall,
    // the dependency whose parsing dispatched it; the gap between them is
    // browser CPU time and is preserved verbatim (§4.1).
    SimTime orig_anchor_end;
    SimTime new_anchor_end;
    bool anchored = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (load.entries[j].end() <= orig.start &&
          (!anchored || load.entries[j].end() > orig_anchor_end)) {
        orig_anchor_end = load.entries[j].end();
        new_anchor_end = out.entries[j].end();
        anchored = true;
      }
    }
    if (anchored) {
      const Duration gap = orig.start - orig_anchor_end;
      entry.start = new_anchor_end + gap;
    }
  }
  return out;
}

std::vector<PageAnalysis> CoalescingModel::analyze_batch(
    const std::vector<web::PageLoad>& loads, std::size_t threads) const {
  std::vector<PageAnalysis> out(loads.size());
  origin::util::ThreadPool pool(threads);
  pool.parallel_for_index(loads.size(),
                          [&](std::size_t i) { out[i] = analyze(loads[i]); });
  return out;
}

std::vector<web::PageLoad> CoalescingModel::reconstruct_batch(
    const std::vector<web::PageLoad>& loads,
    const std::vector<PageAnalysis>& analyses,
    const std::string& restrict_to_group, std::size_t threads) const {
  ORIGIN_CHECK(loads.size() == analyses.size(),
               "reconstruct_batch: loads/analyses size mismatch");
  std::vector<web::PageLoad> out(loads.size());
  origin::util::ThreadPool pool(threads);
  pool.parallel_for_index(loads.size(), [&](std::size_t i) {
    out[i] = reconstruct(loads[i], analyses[i], restrict_to_group);
  });
  return out;
}

}  // namespace origin::model
