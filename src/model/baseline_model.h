// Frozen pre-interning implementation of the §4 coalescing model, kept
// verbatim from the seed tree (string group keys, std::map/std::set,
// O(n²) anchor recovery).
//
// This is NOT pipeline code: it exists so the interned hot path in
// coalescing_model.{h,cc} stays honest. tests/pipeline_determinism_test.cc
// asserts the interned pipeline's outputs are byte-identical to this
// implementation's, and bench/bench_perf_model.cc measures the fused-batch
// speedup against it in the same run (the ≥3× gate recorded in
// BENCH_model.json). Do not optimize this file.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "browser/environment.h"
#include "model/coalescing_model.h"
#include "web/har.h"

namespace origin::model::baseline {

struct EntryAnalysis {
  bool coalescable_origin = false;
  bool coalescable_ip = false;
  std::string group_key;
};

struct PageAnalysis {
  std::vector<EntryAnalysis> entries;
  std::size_t measured_dns = 0;
  std::size_t measured_tls = 0;
  std::size_t measured_validations = 0;
  std::size_t ideal_origin_dns = 0;
  std::size_t ideal_origin_tls = 0;
  std::size_t ideal_origin_validations = 0;
  std::size_t ideal_ip_dns = 0;
  std::size_t ideal_ip_tls = 0;
};

class BaselineCoalescingModel {
 public:
  explicit BaselineCoalescingModel(const browser::Environment& env,
                                   Grouping grouping = Grouping::kAsn)
      : env_(env), grouping_(grouping) {}

  PageAnalysis analyze(const web::PageLoad& load) const;
  web::PageLoad reconstruct(const web::PageLoad& load,
                            const PageAnalysis& analysis,
                            const std::string& restrict_to_group = "") const;
  std::string group_of(const std::string& hostname, std::uint32_t asn) const;

 private:
  const browser::Environment& env_;
  Grouping grouping_;
};

}  // namespace origin::model::baseline
