#include "netsim/faults.h"

#include <charconv>
#include <cstdio>

#include "util/fnv.h"

namespace origin::netsim {

using origin::util::Duration;
using origin::util::fnv1a64_mix;
using origin::util::make_error;
using origin::util::Result;

namespace {

// Domain-separation salts: one per decision family, so e.g. the connect
// roll for id 7 is independent of the stream roll for connection 7.
constexpr std::uint64_t kSaltConnect = 0xC0FFEE01;
constexpr std::uint64_t kSaltStreamKind = 0xC0FFEE02;
constexpr std::uint64_t kSaltStreamWhere = 0xC0FFEE03;
constexpr std::uint64_t kSaltTls = 0xC0FFEE04;
constexpr std::uint64_t kSaltCorrupt = 0xC0FFEE05;

// Uniform [0,1) from (seed, salt, id): the PR-2 determinism idiom — a pure
// hash, never a stateful RNG, so decisions are independent of evaluation
// order and thread count.
double roll(std::uint64_t seed, std::uint64_t salt, std::uint64_t id) {
  const std::uint64_t h = fnv1a64_mix(fnv1a64_mix(seed, salt), id);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool parse_double(std::string_view text, double* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

struct RateField {
  const char* key;
  double FaultConfig::* member;
};

constexpr RateField kRateFields[] = {
    {"connect_refused", &FaultConfig::connect_refused},
    {"connect_timeout", &FaultConfig::connect_timeout},
    {"rst", &FaultConfig::rst},
    {"truncate", &FaultConfig::truncate},
    {"corrupt", &FaultConfig::corrupt},
    {"stall", &FaultConfig::stall},
    {"tls_handshake", &FaultConfig::tls_handshake},
    {"dns_servfail", &FaultConfig::dns_servfail},
    {"dns_timeout", &FaultConfig::dns_timeout},
};

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kConnectRefused: return "connect_refused";
    case FaultKind::kConnectTimeout: return "connect_timeout";
    case FaultKind::kRst: return "rst";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kStall: return "stall";
    case FaultKind::kDnsServfail: return "dns_servfail";
    case FaultKind::kDnsTimeout: return "dns_timeout";
    case FaultKind::kTlsHandshake: return "tls_handshake";
  }
  return "unknown";
}

Result<FaultConfig> FaultConfig::parse(std::string_view text) {
  FaultConfig config;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string_view item = text.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding spaces; empty items (trailing commas) are allowed.
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size()) {
      return make_error("fault config: expected key=value, got '" +
                        std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);

    if (key == "seed") {
      if (!parse_u64(value, &config.seed)) {
        return make_error("fault config: bad seed '" + std::string(value) +
                          "'");
      }
      continue;
    }
    if (key == "max_faults") {
      if (!parse_u64(value, &config.max_faults)) {
        return make_error("fault config: bad max_faults '" +
                          std::string(value) + "'");
      }
      continue;
    }
    if (key == "stall_delay_ms") {
      double ms = 0;
      if (!parse_double(value, &ms) || !(ms >= 0) || ms > 1e9) {
        return make_error("fault config: bad stall_delay_ms '" +
                          std::string(value) + "'");
      }
      config.stall_delay = Duration::millis(ms);
      continue;
    }

    bool matched = false;
    for (const auto& field : kRateFields) {
      if (key != field.key) continue;
      double rate = 0;
      // !(>= 0 && <= 1) also rejects NaN.
      if (!parse_double(value, &rate) || !(rate >= 0.0 && rate <= 1.0)) {
        return make_error("fault config: rate '" + std::string(key) +
                          "' must be in [0,1], got '" + std::string(value) +
                          "'");
      }
      config.*(field.member) = rate;
      matched = true;
      break;
    }
    if (!matched) {
      return make_error("fault config: unknown key '" + std::string(key) +
                        "'");
    }
  }
  return config;
}

FaultConfig FaultConfig::uniform(double rate, std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  // Connect faults split between refusal and blackhole; one mid-stream
  // fault kind drawn at `rate` total; TLS and DNS scaled down so the
  // headline number stays dominated by the connection-level kinds.
  config.connect_refused = rate / 2.0;
  config.connect_timeout = rate / 2.0;
  config.rst = rate / 4.0;
  config.truncate = rate / 4.0;
  config.corrupt = rate / 4.0;
  config.stall = rate / 4.0;
  config.tls_handshake = rate / 2.0;
  config.dns_servfail = rate / 4.0;
  config.dns_timeout = rate / 4.0;
  return config;
}

std::string FaultConfig::serialize() const {
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "seed=%llu,connect_refused=%.17g,connect_timeout=%.17g,rst=%.17g,"
      "truncate=%.17g,corrupt=%.17g,stall=%.17g,tls_handshake=%.17g,"
      "dns_servfail=%.17g,dns_timeout=%.17g,stall_delay_ms=%.17g,"
      "max_faults=%llu",
      static_cast<unsigned long long>(seed), connect_refused, connect_timeout,
      rst, truncate, corrupt, stall, tls_handshake, dns_servfail, dns_timeout,
      stall_delay.as_millis(), static_cast<unsigned long long>(max_faults));
  return buffer;
}

bool FaultConfig::any_enabled() const {
  return connect_refused > 0 || connect_timeout > 0 || rst > 0 ||
         truncate > 0 || corrupt > 0 || stall > 0 || tls_handshake > 0 ||
         dns_servfail > 0 || dns_timeout > 0;
}

FaultKind FaultInjector::connect_fault(std::uint64_t attempt) const {
  const double r = roll(config_.seed, kSaltConnect, attempt);
  if (r < config_.connect_refused) return FaultKind::kConnectRefused;
  if (r < config_.connect_refused + config_.connect_timeout) {
    return FaultKind::kConnectTimeout;
  }
  return FaultKind::kNone;
}

StreamFaultPlan FaultInjector::stream_fault(std::uint64_t connection_id) const {
  StreamFaultPlan plan;
  const double r = roll(config_.seed, kSaltStreamKind, connection_id);
  double edge = config_.rst;
  if (r < edge) {
    plan.kind = FaultKind::kRst;
  } else if (r < (edge += config_.truncate)) {
    plan.kind = FaultKind::kTruncate;
  } else if (r < (edge += config_.corrupt)) {
    plan.kind = FaultKind::kCorrupt;
  } else if (r < (edge += config_.stall)) {
    plan.kind = FaultKind::kStall;
  } else {
    return plan;
  }
  const std::uint64_t where =
      fnv1a64_mix(fnv1a64_mix(config_.seed, kSaltStreamWhere), connection_id);
  // Early event indices: most connections only see a handful of deliveries
  // per direction, and a fault that never fires is not a fault.
  plan.event_index = static_cast<std::uint32_t>(where % 3);
  plan.to_server = ((where >> 32) & 1) != 0;
  return plan;
}

bool FaultInjector::tls_fault(std::uint64_t connection_id) const {
  return roll(config_.seed, kSaltTls, connection_id) < config_.tls_handshake;
}

std::size_t FaultInjector::corrupt_offset(std::uint64_t connection_id,
                                          std::size_t size) const {
  if (size == 0) return 0;
  return static_cast<std::size_t>(
      fnv1a64_mix(fnv1a64_mix(config_.seed, kSaltCorrupt), connection_id) %
      size);
}

bool FaultInjector::consume_budget() {
  if (config_.max_faults != 0 && injected_ >= config_.max_faults) return false;
  ++injected_;
  return true;
}

void RobustnessStats::merge(const RobustnessStats& other) {
  connect_timeouts += other.connect_timeouts;
  connect_failures += other.connect_failures;
  request_timeouts += other.request_timeouts;
  dns_failures += other.dns_failures;
  tls_failures += other.tls_failures;
  h2_protocol_errors += other.h2_protocol_errors;
  retries += other.retries;
  backoff_micros += other.backoff_micros;
  retry_budget_exhausted += other.retry_budget_exhausted;
  avoid_list_entries += other.avoid_list_entries;
  avoided_coalescings += other.avoided_coalescings;
  redispatched_streams += other.redispatched_streams;
  goaways_received += other.goaways_received;
  goaway_redispatches += other.goaway_redispatches;
  connections_torn_down += other.connections_torn_down;
  deadline_expirations += other.deadline_expirations;
  for (const auto& [reason, count] : other.teardown_reasons) {
    teardown_reasons[reason] += count;
  }
}

std::string RobustnessStats::serialize() const {
  std::string out;
  auto field = [&out](const char* name, std::uint64_t value) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  };
  field("connect_timeouts", connect_timeouts);
  field("connect_failures", connect_failures);
  field("request_timeouts", request_timeouts);
  field("dns_failures", dns_failures);
  field("tls_failures", tls_failures);
  field("h2_protocol_errors", h2_protocol_errors);
  field("retries", retries);
  field("backoff_micros", backoff_micros);
  field("retry_budget_exhausted", retry_budget_exhausted);
  field("avoid_list_entries", avoid_list_entries);
  field("avoided_coalescings", avoided_coalescings);
  field("redispatched_streams", redispatched_streams);
  field("goaways_received", goaways_received);
  field("goaway_redispatches", goaway_redispatches);
  field("connections_torn_down", connections_torn_down);
  field("deadline_expirations", deadline_expirations);
  // std::map iterates sorted: the reason block is canonical byte-for-byte.
  for (const auto& [reason, count] : teardown_reasons) {
    out += "teardown_reason[";
    out += reason;
    out += "]=";
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace origin::netsim
