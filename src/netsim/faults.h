// Seeded, deterministic fault injection for the simulated network.
//
// The paper's most operationally interesting result is a failure (§6.7: a
// middlebox tore down TLS connections on seeing an ORIGIN frame), yet a
// best-case coalescing evaluation needs a worst-case fault model to be
// credible. This layer injects connect failures/timeouts, mid-stream RSTs,
// byte truncation/corruption, stalls, DNS SERVFAILs/timeouts, and TLS
// handshake failures — every decision a pure function of
// (seed, connection_id, direction, event_index) via the same hash idiom the
// parallel pipeline uses, so fault schedules are bit-identical across
// thread counts and replayable from a single seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/sim_time.h"

namespace origin::netsim {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kConnectRefused,   // connect callback fires with an error
  kConnectTimeout,   // connect callback never fires (SYN blackhole)
  kRst,              // abrupt mid-stream teardown
  kTruncate,         // a delivery loses its tail bytes
  kCorrupt,          // a delivery has one byte flipped
  kStall,            // a delivery is delayed without closing the connection
  kDnsServfail,      // upstream query answers SERVFAIL
  kDnsTimeout,       // upstream query times out
  kTlsHandshake,     // TLS handshake fails after TCP connect
};

const char* fault_kind_name(FaultKind kind);

// Per-kind fault probabilities plus the seed every decision derives from.
// Parsed from "key=value,key=value" text (the fuzzed surface) and buildable
// programmatically; `uniform(rate, seed)` spreads one headline rate across
// the connection-level kinds the way bench_ablation_faults sweeps it.
struct FaultConfig {
  std::uint64_t seed = 0x0F417;
  // Per-connection-attempt probabilities.
  double connect_refused = 0.0;
  double connect_timeout = 0.0;
  // Per-connection probability of one mid-stream fault (kind chosen here,
  // direction and event index chosen by hash).
  double rst = 0.0;
  double truncate = 0.0;
  double corrupt = 0.0;
  double stall = 0.0;
  // Per-connection probability the TLS handshake fails after TCP connect.
  double tls_handshake = 0.0;
  // Per-upstream-DNS-query probabilities (consumed by dns::Resolver via
  // its Params mirror; kept here so one config describes the whole plan).
  double dns_servfail = 0.0;
  double dns_timeout = 0.0;
  // Extra delay a stalled delivery suffers.
  origin::util::Duration stall_delay = origin::util::Duration::seconds(20);
  // Cap on total injected faults; 0 = unlimited. Lets targeted tests
  // inject exactly N faults deterministically.
  std::uint64_t max_faults = 0;

  // Parses "rst=0.05,seed=7,stall_delay_ms=500". Unknown keys, malformed
  // numbers, and out-of-range rates are errors (the fuzzed contract).
  [[nodiscard]] static origin::util::Result<FaultConfig> parse(
      std::string_view text);

  // One headline rate: each connection draws connect failure, mid-stream
  // fault, and TLS failure independently at `rate`; DNS faults at rate/2.
  static FaultConfig uniform(double rate, std::uint64_t seed);

  // Canonical key=value form; parse(serialize()) round-trips.
  std::string serialize() const;

  bool any_enabled() const;
};

// The per-connection fault schedule: at most one mid-stream fault, pinned
// to a (direction, event index) pair so injection is independent of event
// interleaving across loads.
struct StreamFaultPlan {
  FaultKind kind = FaultKind::kNone;
  bool to_server = false;
  std::uint32_t event_index = 0;
};

// Pure-hash decision maker the Network consults. Stateless except for the
// injection budget; all plan queries are const and thread-count invariant.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  const FaultConfig& config() const { return config_; }

  FaultKind connect_fault(std::uint64_t attempt) const;
  StreamFaultPlan stream_fault(std::uint64_t connection_id) const;
  bool tls_fault(std::uint64_t connection_id) const;
  std::size_t corrupt_offset(std::uint64_t connection_id,
                             std::size_t size) const;
  origin::util::Duration stall_delay() const { return config_.stall_delay; }

  // Consumes one slot of the max_faults budget at injection time. Returns
  // false once the budget is exhausted (injection is then suppressed).
  bool consume_budget();
  std::uint64_t injected() const { return injected_; }

 private:
  FaultConfig config_;
  std::uint64_t injected_ = 0;
};

// Counters for every degradation event the client survives (or doesn't).
// Surfaced through WireLoadResult and measure/reports; serialize() is the
// canonical byte form the 1-vs-8-thread determinism check compares.
struct RobustnessStats {
  std::uint64_t connect_timeouts = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t dns_failures = 0;
  std::uint64_t tls_failures = 0;
  std::uint64_t h2_protocol_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoff_micros = 0;
  std::uint64_t retry_budget_exhausted = 0;
  std::uint64_t avoid_list_entries = 0;
  std::uint64_t avoided_coalescings = 0;
  std::uint64_t redispatched_streams = 0;
  std::uint64_t goaways_received = 0;
  // Streams re-dispatched budget-free because the server's GOAWAY was a
  // graceful drain (NO_ERROR) rather than a failure.
  std::uint64_t goaway_redispatches = 0;
  std::uint64_t connections_torn_down = 0;
  std::uint64_t deadline_expirations = 0;
  std::map<std::string, std::uint64_t> teardown_reasons;

  void merge(const RobustnessStats& other);
  std::string serialize() const;
};

}  // namespace origin::netsim
