// Concrete middleboxes used by the experiments.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "h2/frame.h"
#include "netsim/network.h"

namespace origin::netsim {

// A standards-compliant inspection device: looks at every frame, forwards
// everything (the baseline that proves inspection alone breaks nothing).
class PassiveInspector : public Middlebox {
 public:
  Verdict inspect(std::span<const std::uint8_t> bytes, bool to_server) override;
  std::string name() const override { return "passive-inspector"; }
  std::uint64_t frames_seen() const { return frames_seen_; }

 private:
  h2::FrameParser to_server_parser_;
  h2::FrameParser to_client_parser_;
  std::uint64_t frames_seen_ = 0;
};

// The §6.7 bug: a network agent that tears the TLS connection down when it
// sees a frame type it does not recognize — instead of ignoring it as RFC
// 9113 §4.1 requires. Defaults to knowing only the RFC 7540 core frames,
// so ORIGIN (0xc) triggers the teardown.
class StrictFrameMiddlebox : public Middlebox {
 public:
  StrictFrameMiddlebox();

  // Frame types the agent recognizes (and therefore forwards).
  void add_known_type(std::uint8_t type) { known_types_.insert(type); }

  Verdict inspect(std::span<const std::uint8_t> bytes, bool to_server) override;
  std::string name() const override { return "strict-av-agent"; }
  std::uint64_t teardowns() const { return teardowns_; }

 private:
  std::set<std::uint8_t> known_types_;
  h2::FrameParser to_server_parser_;
  h2::FrameParser to_client_parser_;
  std::uint64_t teardowns_ = 0;
};

}  // namespace origin::netsim
