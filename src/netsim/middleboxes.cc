#include "netsim/middleboxes.h"

namespace origin::netsim {

Middlebox::Verdict PassiveInspector::inspect(
    std::span<const std::uint8_t> bytes, bool to_server) {
  // The client preface is not framed; skip bytes that can't parse. A real
  // inspector tracks the preface too — for counting purposes treating a
  // parse failure as opaque passthrough suffices.
  auto& parser = to_server ? to_server_parser_ : to_client_parser_;
  auto frames = parser.feed(bytes);
  if (frames.ok()) frames_seen_ += frames->size();
  return Verdict::kForward;
}

StrictFrameMiddlebox::StrictFrameMiddlebox() {
  // RFC 7540 core frame types only; ORIGIN (0xc) and ALTSVC (0xa) postdate
  // the agent's parser.
  for (std::uint8_t t = 0x0; t <= 0x9; ++t) known_types_.insert(t);
}

Middlebox::Verdict StrictFrameMiddlebox::inspect(
    std::span<const std::uint8_t> bytes, bool to_server) {
  auto& parser = to_server ? to_server_parser_ : to_client_parser_;
  if (to_server) {
    // Strip a client preface if present at the head of the stream; the
    // frame parser does not understand it.
    static constexpr std::string_view magic = h2::kClientPreface;
    if (bytes.size() >= magic.size() &&
        std::equal(magic.begin(), magic.end(), bytes.begin())) {
      bytes = bytes.subspan(magic.size());
    }
  }
  auto frames = parser.feed(bytes);
  if (!frames.ok()) return Verdict::kForward;  // opaque to the agent
  for (const auto& frame : *frames) {
    const auto type = static_cast<std::uint8_t>(h2::frame_type_of(frame));
    if (!known_types_.contains(type)) {
      ++teardowns_;
      return Verdict::kTeardown;
    }
  }
  return Verdict::kForward;
}

}  // namespace origin::netsim
