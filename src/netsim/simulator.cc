#include "netsim/simulator.h"

#include <utility>

#include "util/check.h"

namespace origin::netsim {

void Simulator::schedule_at(origin::util::SimTime when, Action action) {
  // Events can never fire in the past; clamp to now (zero-delay events are
  // common for immediate callbacks).
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

bool Simulator::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is the standard
  // idiom-free workaround — copy the action handle instead (cheap).
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  ++executed_;
  event.action();
  return true;
}

void Simulator::run_until_idle(std::size_t max_events) {
  std::size_t n = 0;
  while (run_one()) {
    if (++n > max_events) {
      ORIGIN_CHECK(false, "netsim: event budget exhausted (scheduling loop?)");
    }
  }
}

void Simulator::run_until(origin::util::SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) run_one();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace origin::netsim
