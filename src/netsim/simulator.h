// Discrete-event simulator: a clock plus an ordered event queue.
//
// All timing in the reproduction — DNS latency, TCP/TLS handshakes, request
// waterfalls, page-load times — advances this virtual clock, so experiment
// results are bit-identical across runs and machines.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.h"

namespace origin::netsim {

class Simulator {
 public:
  using Action = std::function<void()>;

  origin::util::SimTime now() const { return now_; }

  void schedule_at(origin::util::SimTime when, Action action);
  void schedule(origin::util::Duration delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  // Runs the next event; false when the queue is empty.
  bool run_one();

  // Runs events until the queue drains (or the safety cap trips, which
  // indicates a scheduling loop and fails loudly).
  void run_until_idle(std::size_t max_events = 10'000'000);

  // Runs events with timestamps <= `deadline`, then sets the clock to it.
  void run_until(origin::util::SimTime deadline);

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    origin::util::SimTime when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  origin::util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace origin::netsim
