// Simulated network: endpoints addressed by IP, TCP-like connections with
// handshake latency, per-link latency/bandwidth, and middlebox
// interposition.
//
// The middlebox hook exists to reproduce the paper's §6.7 incident: an
// antivirus network agent that, instead of ignoring unknown HTTP/2 frames
// as RFC 9113 §4.1 mandates, tore down TLS connections when it saw an
// ORIGIN frame.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dns/record.h"
#include "netsim/simulator.h"
#include "util/bytes.h"
#include "util/result.h"

namespace origin::netsim {

class FaultInjector;

struct LinkParams {
  origin::util::Duration one_way = origin::util::Duration::millis(15);
  double bandwidth_bytes_per_sec = 12.5e6;  // ~100 Mbit/s

  origin::util::Duration rtt() const { return one_way * 2.0; }
  origin::util::Duration transfer_time(std::size_t bytes) const {
    return origin::util::Duration::seconds(
        static_cast<double>(bytes) / bandwidth_bytes_per_sec);
  }
};

class Network;

// One side of an established connection. Non-owning handle; the Network
// owns connection state. Handles stay valid until the connection closes
// and `on_close` has fired.
class TcpEndpoint {
 public:
  void send(origin::util::Bytes bytes);
  void close(const std::string& reason);
  bool open() const;

  void set_on_receive(
      std::function<void(std::span<const std::uint8_t>)> callback);
  void set_on_close(std::function<void(const std::string&)> callback);

  dns::IpAddress peer_address() const;
  // Tag of the client that opened this connection ("" once closed and
  // reaped). Lets servers key per-client state, e.g. the ORIGIN
  // kill-switch's teardown windows.
  std::string client_tag() const;
  std::uint64_t connection_id() const { return connection_id_; }

 private:
  friend class Network;
  Network* network_ = nullptr;
  std::uint64_t connection_id_ = 0;
  bool client_side_ = false;
};

// Inspects bytes in flight. Returning kTeardown kills the connection, which
// both sides observe as an abrupt close. One Middlebox instance sees every
// connection of the client it is installed for, so implementations key any
// parser state on `connection_id`.
class Middlebox {
 public:
  enum class Verdict { kForward, kTeardown };
  virtual ~Middlebox() = default;
  // `to_server` is true for client->server bytes.
  virtual Verdict inspect(std::uint64_t connection_id,
                          std::span<const std::uint8_t> bytes,
                          bool to_server) = 0;
  // Optional in-flight mutation (reordering/garbling devices); runs after
  // every middlebox voted kForward. Default leaves the bytes alone.
  virtual void transform(std::uint64_t connection_id,
                         origin::util::Bytes& bytes, bool to_server) {
    (void)connection_id;
    (void)bytes;
    (void)to_server;
  }
  virtual std::string name() const = 0;
};

struct NetworkStats {
  std::uint64_t tcp_handshakes = 0;
  // Refused connects — no listener on the address, or an injected refusal;
  // both count here so callers see one consistent failure signal.
  std::uint64_t connect_failures = 0;
  std::uint64_t middlebox_teardowns = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t injected_faults = 0;
  // Every teardown's close reason, verbatim — the middlebox name is no
  // longer lost between Network::teardown and WireLoadResult.errors.
  std::map<std::string, std::uint64_t> teardown_reasons;
};

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}

  void set_default_link(LinkParams params) { default_link_ = params; }
  // Overrides the link used for connections to `server` addresses.
  void set_link_to(dns::IpAddress server, LinkParams params) {
    link_overrides_[server] = params;
  }
  LinkParams link_to(dns::IpAddress server) const;

  // Registers a listener; `on_accept` receives the server-side endpoint of
  // each new connection.
  void listen(dns::IpAddress address,
              std::function<void(TcpEndpoint)> on_accept);
  void stop_listening(dns::IpAddress address);
  bool listening(dns::IpAddress address) const;

  // Interposes a middlebox on all connections from `client_tag` (e.g. the
  // user runs endpoint security software). Empty tag = all clients.
  void install_middlebox(std::string client_tag,
                         std::shared_ptr<Middlebox> middlebox);
  // Removes every middlebox installed for the tag (the §6.7 epilogue: the
  // vendor ships a fixed agent). Existing connections keep the boxes they
  // were established with.
  void uninstall_middleboxes(const std::string& client_tag);

  // Non-owning: the injector must outlive the network. Null disables
  // injection (the default).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // TCP connect: SYN/SYN-ACK costs one RTT; the callback then receives the
  // client-side endpoint, or an error if nothing listens on `server`.
  void connect(const std::string& client_tag, dns::IpAddress server,
               std::function<void(origin::util::Result<TcpEndpoint>)> callback);

  const NetworkStats& stats() const { return stats_; }
  Simulator& simulator() { return sim_; }

 private:
  friend class TcpEndpoint;

  struct Side {
    std::function<void(std::span<const std::uint8_t>)> on_receive;
    std::function<void(const std::string&)> on_close;
  };
  struct Connection {
    dns::IpAddress server_address;
    std::string client_tag;
    LinkParams link;
    Side client;
    Side server;
    std::vector<std::shared_ptr<Middlebox>> middleboxes;
    bool open = true;
    // Cumulative serialization backlog per direction so back-to-back sends
    // queue behind each other on the link.
    origin::util::SimTime client_clear_at;
    origin::util::SimTime server_clear_at;
    // Per-direction delivery counters: the injector pins a mid-stream fault
    // to (direction, event_index) so fault schedules replay exactly.
    std::uint32_t client_events = 0;
    std::uint32_t server_events = 0;
  };

  Connection* find(std::uint64_t id);
  void deliver(std::uint64_t id, bool to_server, origin::util::Bytes bytes);
  void teardown(std::uint64_t id, const std::string& reason);

  Simulator& sim_;
  LinkParams default_link_;
  std::map<dns::IpAddress, LinkParams> link_overrides_;
  std::map<dns::IpAddress, std::function<void(TcpEndpoint)>> listeners_;
  std::map<std::string, std::vector<std::shared_ptr<Middlebox>>> middleboxes_;
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_connection_id_ = 1;
  std::uint64_t connect_attempts_ = 0;
  FaultInjector* injector_ = nullptr;
  NetworkStats stats_;
};

}  // namespace origin::netsim
