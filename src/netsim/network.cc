#include "netsim/network.h"

#include <algorithm>

#include "netsim/faults.h"

namespace origin::netsim {

using origin::util::Bytes;
using origin::util::make_error;
using origin::util::Result;

void TcpEndpoint::send(Bytes bytes) {
  if (network_ == nullptr) return;
  network_->deliver(connection_id_, client_side_, std::move(bytes));
}

void TcpEndpoint::close(const std::string& reason) {
  if (network_ == nullptr) return;
  network_->teardown(connection_id_, reason);
}

bool TcpEndpoint::open() const {
  if (network_ == nullptr) return false;
  auto* conn = network_->find(connection_id_);
  return conn != nullptr && conn->open;
}

void TcpEndpoint::set_on_receive(
    std::function<void(std::span<const std::uint8_t>)> callback) {
  auto* conn = network_->find(connection_id_);
  if (conn == nullptr) return;
  (client_side_ ? conn->client : conn->server).on_receive = std::move(callback);
}

void TcpEndpoint::set_on_close(
    std::function<void(const std::string&)> callback) {
  auto* conn = network_->find(connection_id_);
  if (conn == nullptr) return;
  (client_side_ ? conn->client : conn->server).on_close = std::move(callback);
}

dns::IpAddress TcpEndpoint::peer_address() const {
  auto* conn = network_->find(connection_id_);
  return conn == nullptr ? dns::IpAddress{} : conn->server_address;
}

std::string TcpEndpoint::client_tag() const {
  if (network_ == nullptr) return "";
  auto* conn = network_->find(connection_id_);
  return conn == nullptr ? "" : conn->client_tag;
}

LinkParams Network::link_to(dns::IpAddress server) const {
  auto it = link_overrides_.find(server);
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void Network::listen(dns::IpAddress address,
                     std::function<void(TcpEndpoint)> on_accept) {
  listeners_[address] = std::move(on_accept);
}

void Network::stop_listening(dns::IpAddress address) {
  listeners_.erase(address);
}

bool Network::listening(dns::IpAddress address) const {
  return listeners_.count(address) > 0;
}

void Network::install_middlebox(std::string client_tag,
                                std::shared_ptr<Middlebox> middlebox) {
  middleboxes_[std::move(client_tag)].push_back(std::move(middlebox));
}

void Network::uninstall_middleboxes(const std::string& client_tag) {
  middleboxes_.erase(client_tag);
}

void Network::connect(
    const std::string& client_tag, dns::IpAddress server,
    std::function<void(Result<TcpEndpoint>)> callback) {
  const LinkParams link = link_to(server);
  const std::uint64_t attempt = ++connect_attempts_;
  // SYN out, SYN-ACK back: the callback fires one RTT from now.
  sim_.schedule(link.rtt(), [this, client_tag, server, link, attempt,
                             callback = std::move(callback)]() {
    if (injector_ != nullptr) {
      const FaultKind fault = injector_->connect_fault(attempt);
      if (fault == FaultKind::kConnectRefused && injector_->consume_budget()) {
        ++stats_.injected_faults;
        // Same failure signal as an unlistened address: connect_failures
        // counts refused connects of either cause.
        ++stats_.connect_failures;
        callback(make_error("injected: connection refused " +
                            server.to_string()));
        return;
      }
      if (fault == FaultKind::kConnectTimeout && injector_->consume_budget()) {
        ++stats_.injected_faults;
        // SYN blackhole: the callback never fires; the client's own
        // connect timer has to notice.
        return;
      }
    }
    auto listener = listeners_.find(server);
    if (listener == listeners_.end()) {
      ++stats_.connect_failures;
      callback(make_error("netsim: connection refused " + server.to_string()));
      return;
    }
    ++stats_.tcp_handshakes;
    const std::uint64_t id = next_connection_id_++;
    Connection conn;
    conn.server_address = server;
    conn.client_tag = client_tag;
    conn.link = link;
    conn.client_clear_at = sim_.now();
    conn.server_clear_at = sim_.now();
    // Middleboxes installed for this client plus the catch-all tag.
    for (const auto& tag : {client_tag, std::string()}) {
      auto it = middleboxes_.find(tag);
      if (it != middleboxes_.end()) {
        conn.middleboxes.insert(conn.middleboxes.end(), it->second.begin(),
                                it->second.end());
      }
    }
    connections_.emplace(id, std::move(conn));

    TcpEndpoint client_end;
    client_end.network_ = this;
    client_end.connection_id_ = id;
    client_end.client_side_ = true;
    TcpEndpoint server_end;
    server_end.network_ = this;
    server_end.connection_id_ = id;
    server_end.client_side_ = false;

    // Accept first so the server installs its callbacks before any client
    // bytes can arrive.
    listener->second(server_end);
    callback(client_end);
  });
}

Network::Connection* Network::find(std::uint64_t id) {
  auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : &it->second;
}

void Network::deliver(std::uint64_t id, bool from_client, Bytes bytes) {
  Connection* conn = find(id);
  if (conn == nullptr || !conn->open || bytes.empty()) return;
  stats_.bytes_sent += bytes.size();

  for (const auto& middlebox : conn->middleboxes) {
    if (middlebox->inspect(id, bytes, from_client) ==
        Middlebox::Verdict::kTeardown) {
      ++stats_.middlebox_teardowns;
      teardown(id, "middlebox teardown: " + middlebox->name());
      return;
    }
  }
  for (const auto& middlebox : conn->middleboxes) {
    middlebox->transform(id, bytes, from_client);
  }
  if (bytes.empty()) return;

  // Injected mid-stream fault, pinned to this connection's (direction,
  // event index) so the schedule is independent of interleaving.
  origin::util::Duration stall_extra;
  std::uint32_t& events =
      from_client ? conn->client_events : conn->server_events;
  const std::uint32_t event_index = events++;
  if (injector_ != nullptr) {
    const StreamFaultPlan plan = injector_->stream_fault(id);
    if (plan.kind != FaultKind::kNone && plan.to_server == from_client &&
        plan.event_index == event_index && injector_->consume_budget()) {
      ++stats_.injected_faults;
      switch (plan.kind) {
        case FaultKind::kRst:
          // analyze:allow(hot-transitive): fault-injection branch
          // only — the teardown reason is off the steady-state path
          teardown(id, std::string("injected: rst (") +
                           fault_kind_name(plan.kind) + ")");
          return;
        case FaultKind::kTruncate: {
          const std::size_t keep = bytes.size() / 2;
          // analyze:allow(hot-transitive): shrinking resize never
          // reallocates; keep is always <= the current size
          bytes.resize(keep);
          if (bytes.empty()) return;
          break;
        }
        case FaultKind::kCorrupt:
          bytes[injector_->corrupt_offset(id, bytes.size())] ^= 0x20;
          break;
        case FaultKind::kStall:
          stall_extra = injector_->stall_delay();
          break;
        default:
          break;
      }
    }
  }

  // Serialization delay: bytes queue behind previously-sent bytes in the
  // same direction, then cross the link's one-way latency.
  origin::util::SimTime& clear_at =
      from_client ? conn->client_clear_at : conn->server_clear_at;
  if (clear_at < sim_.now()) clear_at = sim_.now();
  clear_at = clear_at + conn->link.transfer_time(bytes.size());
  const origin::util::SimTime arrival =
      clear_at + conn->link.one_way + stall_extra;

  sim_.schedule_at(arrival, [this, id, from_client,
                             bytes = std::move(bytes)]() {
    Connection* conn = find(id);
    if (conn == nullptr || !conn->open) return;
    auto& receiver = from_client ? conn->server : conn->client;
    if (receiver.on_receive) receiver.on_receive(bytes);
  });
}

void Network::teardown(std::uint64_t id, const std::string& reason) {
  Connection* conn = find(id);
  if (conn == nullptr || !conn->open) return;
  conn->open = false;
  // The verbatim close reason is part of the network's record — callers
  // like WireLoadResult.errors no longer lose the middlebox name.
  ++stats_.teardown_reasons[reason];
  // Deliver close notifications asynchronously, like RST segments. Each
  // side's on_close fires at most once (open flips false above, and a
  // second teardown on the same id is a no-op), then the connection state
  // is reaped so long-lived networks do not accumulate dead entries.
  sim_.schedule(conn->link.one_way, [this, id, reason]() {
    Connection* conn = find(id);
    if (conn == nullptr) return;
    if (conn->client.on_close) conn->client.on_close(reason);
    if (conn->server.on_close) conn->server.on_close(reason);
    connections_.erase(id);
  });
}

}  // namespace origin::netsim
