#include "dataset/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "util/durable_file.h"
#include "util/hash.h"
#include "util/hot_path.h"
#include "web/resource.h"

namespace origin::dataset {

namespace {

// Column tags, in wire order. The reader rejects any other order, which is
// what makes an accepted snapshot canonical.
enum Tag : std::size_t {
  kEntryResourceIndex = 0,
  kEntryHostSym,
  kEntryAddrFamily,
  kEntryAddrValue,
  kEntryAnswerCount,
  kEntryAsn,
  kEntryVersion,
  kEntryMode,
  kEntryContentType,
  kEntryFlags,
  kEntryStartUs,
  kEntryBlockedUs,
  kEntryDnsUs,
  kEntryConnectUs,
  kEntrySslUs,
  kEntrySendUs,
  kEntryWaitUs,
  kEntryReceiveUs,
  kEntryConnectionId,
  kEntryCertSerial,
  kEntryIssuerSym,
  kEntrySanCount,
  kAnswerFamily,
  kAnswerValue,
  kPageRank,
  kPageBaseSym,
  kPageSuccess,
  kPageEntryCount,
  kPageExtraDns,
  kPageExtraTls,
};

enum class Rows : std::uint8_t { kEntry, kAnswer, kPage };

struct ColumnSpec {
  std::size_t elem_size;
  Rows rows;
};

constexpr ColumnSpec kColumnSpecs[kSnapshotColumnCount] = {
    {4, Rows::kEntry},   // resource_index  i32
    {4, Rows::kEntry},   // host_sym        u32
    {1, Rows::kEntry},   // addr_family     u8
    {8, Rows::kEntry},   // addr_value      u64
    {2, Rows::kEntry},   // answer_count    u16
    {4, Rows::kEntry},   // asn             u32
    {1, Rows::kEntry},   // version         u8
    {1, Rows::kEntry},   // mode            u8
    {1, Rows::kEntry},   // content_type    u8
    {1, Rows::kEntry},   // flags           u8
    {8, Rows::kEntry},   // start_us        i64
    {8, Rows::kEntry},   // blocked_us      i64
    {8, Rows::kEntry},   // dns_us          i64
    {8, Rows::kEntry},   // connect_us      i64
    {8, Rows::kEntry},   // ssl_us          i64
    {8, Rows::kEntry},   // send_us         i64
    {8, Rows::kEntry},   // wait_us         i64
    {8, Rows::kEntry},   // receive_us      i64
    {8, Rows::kEntry},   // connection_id   u64
    {8, Rows::kEntry},   // cert_serial     u64
    {4, Rows::kEntry},   // issuer_sym      u32
    {8, Rows::kEntry},   // san_count       i64
    {1, Rows::kAnswer},  // answer_family   u8
    {8, Rows::kAnswer},  // answer_value    u64
    {8, Rows::kPage},    // rank            u64
    {4, Rows::kPage},    // base_sym        u32
    {1, Rows::kPage},    // success         u8
    {4, Rows::kPage},    // entry_count     u32
    {8, Rows::kPage},    // extra_dns       u64
    {8, Rows::kPage},    // extra_tls       u64
};

std::uint64_t rows_for(Rows rows, const ShardMeta& meta) {
  switch (rows) {
    case Rows::kEntry:
      return meta.entries;
    case Rows::kAnswer:
      return meta.answers;
    case Rows::kPage:
      return meta.pages;
  }
  return 0;
}

template <typename T>
void write_column(util::ByteWriter& writer, std::size_t tag,
                  const util::ArenaColumn<T>& column) {
  writer.u8(static_cast<std::uint8_t>(tag));
  writer.u64(static_cast<std::uint64_t>(column.size() * sizeof(T)));
  column.for_each_span([&writer](std::span<const T> span) {
    writer.raw(span.data(), span.size_bytes());
  });
}

// Unaligned typed load out of a validated column payload.
template <typename T>
ORIGIN_HOT T load_at(std::span<const std::uint8_t> column, std::size_t row) {
  T value;
  std::memcpy(&value, column.data() + row * sizeof(T), sizeof(T));
  return value;
}

// True when every row is < limit — the one shape all range validation
// takes, since every valid domain here is a contiguous [0, limit) range.
template <typename T>
ORIGIN_HOT bool rows_below(std::span<const std::uint8_t> column,
                           std::size_t rows, std::uint64_t limit) {
  for (std::size_t i = 0; i < rows; ++i) {
    if (load_at<T>(column, i) >= limit) return false;
  }
  return true;
}

template <typename T>
ORIGIN_HOT std::uint64_t rows_sum(std::span<const std::uint8_t> column,
                                  std::size_t rows) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < rows; ++i) sum += load_at<T>(column, i);
  return sum;
}

util::Error snapshot_error(const char* what) {
  // analyze:allow(hot-transitive): error messages are built only when a
  // snapshot is rejected, never in the steady-state decode loop; the hot
  // chain is a by-name match of SnapshotReader::open against an unrelated
  // open() call in the h2 server.
  return util::make_error(std::string("snapshot: ") + what);
}

}  // namespace

util::Bytes encode_snapshot(const TimelineColumns& columns) {
  const ShardMeta meta = columns.meta();
  util::ByteWriter writer(64 + static_cast<std::size_t>(meta.symbols) * 24 +
                          static_cast<std::size_t>(meta.entries) * 128 +
                          static_cast<std::size_t>(meta.answers) * 9 +
                          static_cast<std::size_t>(meta.pages) * 33 + 512 +
                          kSnapshotFooterBytes);
  writer.raw(std::string_view(kSnapshotMagic, sizeof(kSnapshotMagic)));
  writer.u32(kSnapshotVersion);
  writer.u8(std::endian::native == std::endian::little
                ? kSnapshotLittleEndianPayload
                : kSnapshotLittleEndianPayload + 1);
  writer.u64(meta.shard_index);
  writer.u64(meta.corpus_seed);
  writer.u64(meta.first_site);
  writer.u64(meta.pages);
  writer.u64(meta.entries);
  writer.u64(meta.answers);
  writer.u32(meta.symbols);
  for (std::uint32_t i = 0; i < meta.symbols; ++i) {
    const std::string_view name = columns.symbol(i);
    writer.u32(static_cast<std::uint32_t>(name.size()));
    writer.raw(name);
  }
  write_column(writer, kEntryResourceIndex, columns.entry_resource_index_);
  write_column(writer, kEntryHostSym, columns.entry_host_sym_);
  write_column(writer, kEntryAddrFamily, columns.entry_addr_family_);
  write_column(writer, kEntryAddrValue, columns.entry_addr_value_);
  write_column(writer, kEntryAnswerCount, columns.entry_answer_count_);
  write_column(writer, kEntryAsn, columns.entry_asn_);
  write_column(writer, kEntryVersion, columns.entry_version_);
  write_column(writer, kEntryMode, columns.entry_mode_);
  write_column(writer, kEntryContentType, columns.entry_content_type_);
  write_column(writer, kEntryFlags, columns.entry_flags_);
  write_column(writer, kEntryStartUs, columns.entry_start_us_);
  write_column(writer, kEntryBlockedUs, columns.entry_blocked_us_);
  write_column(writer, kEntryDnsUs, columns.entry_dns_us_);
  write_column(writer, kEntryConnectUs, columns.entry_connect_us_);
  write_column(writer, kEntrySslUs, columns.entry_ssl_us_);
  write_column(writer, kEntrySendUs, columns.entry_send_us_);
  write_column(writer, kEntryWaitUs, columns.entry_wait_us_);
  write_column(writer, kEntryReceiveUs, columns.entry_receive_us_);
  write_column(writer, kEntryConnectionId, columns.entry_connection_id_);
  write_column(writer, kEntryCertSerial, columns.entry_cert_serial_);
  write_column(writer, kEntryIssuerSym, columns.entry_issuer_sym_);
  write_column(writer, kEntrySanCount, columns.entry_san_count_);
  write_column(writer, kAnswerFamily, columns.answer_family_);
  write_column(writer, kAnswerValue, columns.answer_value_);
  write_column(writer, kPageRank, columns.page_rank_);
  write_column(writer, kPageBaseSym, columns.page_base_sym_);
  write_column(writer, kPageSuccess, columns.page_success_);
  write_column(writer, kPageEntryCount, columns.page_entry_count_);
  write_column(writer, kPageExtraDns, columns.page_extra_dns_);
  write_column(writer, kPageExtraTls, columns.page_extra_tls_);
  // Integrity footer: CRC-64/XZ over every byte written so far. Appended
  // last so the file's own tail proves the whole payload intact.
  const std::uint64_t crc = util::crc64(writer.bytes());
  writer.raw(std::string_view(kSnapshotFooterMagic,
                              sizeof(kSnapshotFooterMagic)));
  writer.u64(crc);
  return writer.take();
}

util::Result<SnapshotReader> SnapshotReader::open(
    std::span<const std::uint8_t> bytes) {
  if (std::endian::native != std::endian::little) {
    return snapshot_error("big-endian hosts are not supported");
  }
  // Integrity first: the CRC footer is verified before a single header
  // byte is interpreted, so a torn or bit-flipped shard is rejected as
  // corrupt up front — its contents are never read as data.
  if (bytes.size() < kSnapshotFooterBytes) {
    return snapshot_error("missing footer");
  }
  const std::span<const std::uint8_t> payload =
      bytes.first(bytes.size() - kSnapshotFooterBytes);
  const std::span<const std::uint8_t> footer =
      bytes.last(kSnapshotFooterBytes);
  if (std::memcmp(footer.data(), kSnapshotFooterMagic,
                  sizeof(kSnapshotFooterMagic)) != 0) {
    return snapshot_error("bad footer magic (torn or trailing bytes)");
  }
  util::ByteReader footer_reader(footer.subspan(sizeof(kSnapshotFooterMagic)));
  if (footer_reader.u64() != util::crc64(payload)) {
    return snapshot_error("checksum mismatch (torn or corrupt shard)");
  }
  util::ByteReader reader(payload);
  const auto magic = reader.raw(sizeof(kSnapshotMagic));
  if (!reader.ok() ||
      std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return snapshot_error("bad magic");
  }
  if (reader.u32() != kSnapshotVersion) {
    return snapshot_error("unsupported version");
  }
  if (reader.u8() != kSnapshotLittleEndianPayload) {
    return snapshot_error("payload endianness mismatch");
  }

  SnapshotReader out;
  out.meta_.shard_index = reader.u64();
  out.meta_.corpus_seed = reader.u64();
  out.meta_.first_site = reader.u64();
  out.meta_.pages = reader.u64();
  out.meta_.entries = reader.u64();
  out.meta_.answers = reader.u64();
  out.meta_.symbols = reader.u32();
  if (!reader.ok()) return snapshot_error("truncated header");
  // Row counts stay far below 2^32 in practice; the cap keeps the
  // rows * elem_size products away from overflow on any input.
  constexpr std::uint64_t kMaxRows = std::uint64_t{1} << 32;
  if (out.meta_.pages > kMaxRows || out.meta_.entries > kMaxRows ||
      out.meta_.answers > kMaxRows) {
    return snapshot_error("row count exceeds format limit");
  }

  out.symbols_.reserve(out.meta_.symbols);
  for (std::uint32_t i = 0; i < out.meta_.symbols; ++i) {
    const std::uint32_t length = reader.u32();
    if (!reader.ok() || length > kSnapshotMaxSymbolBytes) {
      return snapshot_error("bad symbol table");
    }
    out.symbols_.push_back(reader.str(length));
  }
  if (!reader.ok()) return snapshot_error("truncated symbol table");

  out.columns_.resize(kSnapshotColumnCount);
  for (std::size_t tag = 0; tag < kSnapshotColumnCount; ++tag) {
    if (reader.u8() != tag) return snapshot_error("column order");
    const std::uint64_t byte_length = reader.u64();
    const ColumnSpec& spec = kColumnSpecs[tag];
    if (byte_length != rows_for(spec.rows, out.meta_) * spec.elem_size) {
      return snapshot_error("column length mismatch");
    }
    out.columns_[tag] = reader.raw(static_cast<std::size_t>(byte_length));
  }
  if (!reader.ok()) return snapshot_error("truncated columns");
  if (!reader.at_end()) return snapshot_error("trailing bytes");

  // Semantic validation: every cross-reference and enum range is checked
  // here, once, so next_page() is infallible afterwards.
  const std::size_t pages = static_cast<std::size_t>(out.meta_.pages);
  const std::size_t entries = static_cast<std::size_t>(out.meta_.entries);
  if (rows_sum<std::uint32_t>(out.columns_[kPageEntryCount], pages) !=
      out.meta_.entries) {
    return snapshot_error("page entry counts do not sum to entry rows");
  }
  if (rows_sum<std::uint16_t>(out.columns_[kEntryAnswerCount], entries) !=
      out.meta_.answers) {
    return snapshot_error("answer counts do not sum to answer rows");
  }
  const std::uint64_t symbols = out.meta_.symbols;
  if (!rows_below<std::uint32_t>(out.columns_[kPageBaseSym], pages,
                                 symbols) ||
      !rows_below<std::uint32_t>(out.columns_[kEntryHostSym], entries,
                                 symbols) ||
      !rows_below<std::uint32_t>(out.columns_[kEntryIssuerSym], entries,
                                 symbols)) {
    return snapshot_error("symbol reference out of range");
  }
  const std::size_t answers = static_cast<std::size_t>(out.meta_.answers);
  if (!rows_below<std::uint8_t>(out.columns_[kEntryAddrFamily], entries, 2) ||
      !rows_below<std::uint8_t>(out.columns_[kAnswerFamily], answers, 2)) {
    return snapshot_error("bad address family");
  }
  if (!rows_below<std::uint8_t>(
          out.columns_[kEntryVersion], entries,
          static_cast<std::uint64_t>(web::HttpVersion::kUnknown) + 1) ||
      !rows_below<std::uint8_t>(
          out.columns_[kEntryMode], entries,
          static_cast<std::uint64_t>(web::RequestMode::kFetchApi) + 1) ||
      !rows_below<std::uint8_t>(
          out.columns_[kEntryContentType], entries,
          static_cast<std::uint64_t>(web::ContentType::kOther) + 1)) {
    return snapshot_error("enum value out of range");
  }
  if (!rows_below<std::uint8_t>(out.columns_[kEntryFlags], entries,
                                std::uint64_t{kSnapshotFlagMask} + 1)) {
    return snapshot_error("unknown entry flag bit");
  }
  if (!rows_below<std::uint8_t>(out.columns_[kPageSuccess], pages, 2)) {
    return snapshot_error("bad success value");
  }
  return out;
}

template <typename T>
T SnapshotReader::column(std::size_t tag, std::size_t row) const {
  return load_at<T>(columns_[tag], row);
}

bool SnapshotReader::next_page(web::PageLoad* out) {
  if (page_cursor_ >= meta_.pages) return false;
  const std::size_t page = page_cursor_++;
  out->tranco_rank = column<std::uint64_t>(kPageRank, page);
  out->base_hostname = symbols_[column<std::uint32_t>(kPageBaseSym, page)];
  out->success = column<std::uint8_t>(kPageSuccess, page) != 0;
  out->extra_dns_queries = static_cast<std::size_t>(
      column<std::uint64_t>(kPageExtraDns, page));
  out->extra_tls_connections = static_cast<std::size_t>(
      column<std::uint64_t>(kPageExtraTls, page));

  const std::size_t count = column<std::uint32_t>(kPageEntryCount, page);
  out->entries.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    web::HarEntry& entry = out->entries[i];
    const std::size_t row = entry_cursor_++;
    entry.resource_index =
        static_cast<int>(column<std::int32_t>(kEntryResourceIndex, row));
    entry.hostname = symbols_[column<std::uint32_t>(kEntryHostSym, row)];
    entry.server_address.family = static_cast<dns::Family>(
        column<std::uint8_t>(kEntryAddrFamily, row));
    entry.server_address.value = column<std::uint64_t>(kEntryAddrValue, row);
    const std::size_t answer_count =
        column<std::uint16_t>(kEntryAnswerCount, row);
    entry.dns_answer_set.resize(answer_count);
    for (dns::IpAddress& address : entry.dns_answer_set) {
      address.family = static_cast<dns::Family>(
          column<std::uint8_t>(kAnswerFamily, answer_cursor_));
      address.value = column<std::uint64_t>(kAnswerValue, answer_cursor_);
      ++answer_cursor_;
    }
    entry.asn = column<std::uint32_t>(kEntryAsn, row);
    entry.version = static_cast<web::HttpVersion>(
        column<std::uint8_t>(kEntryVersion, row));
    entry.mode = static_cast<web::RequestMode>(
        column<std::uint8_t>(kEntryMode, row));
    entry.content_type = static_cast<web::ContentType>(
        column<std::uint8_t>(kEntryContentType, row));
    const std::uint8_t flags = column<std::uint8_t>(kEntryFlags, row);
    entry.secure = (flags & kSnapshotFlagSecure) != 0;
    entry.new_dns_query = (flags & kSnapshotFlagNewDns) != 0;
    entry.new_tls_connection = (flags & kSnapshotFlagNewTls) != 0;
    entry.speculative_duplicate = (flags & kSnapshotFlagSpeculative) != 0;
    entry.status_421 = (flags & kSnapshotFlagStatus421) != 0;
    entry.start = util::SimTime::from_micros(
        column<std::int64_t>(kEntryStartUs, row));
    entry.timings.blocked =
        util::Duration::micros(column<std::int64_t>(kEntryBlockedUs, row));
    entry.timings.dns =
        util::Duration::micros(column<std::int64_t>(kEntryDnsUs, row));
    entry.timings.connect =
        util::Duration::micros(column<std::int64_t>(kEntryConnectUs, row));
    entry.timings.ssl =
        util::Duration::micros(column<std::int64_t>(kEntrySslUs, row));
    entry.timings.send =
        util::Duration::micros(column<std::int64_t>(kEntrySendUs, row));
    entry.timings.wait =
        util::Duration::micros(column<std::int64_t>(kEntryWaitUs, row));
    entry.timings.receive =
        util::Duration::micros(column<std::int64_t>(kEntryReceiveUs, row));
    entry.connection_id = column<std::uint64_t>(kEntryConnectionId, row);
    entry.cert_serial = column<std::uint64_t>(kEntryCertSerial, row);
    entry.cert_issuer = symbols_[column<std::uint32_t>(kEntryIssuerSym, row)];
    entry.cert_san_count = column<std::int64_t>(kEntrySanCount, row);
  }
  return true;
}

void SnapshotReader::rewind() {
  page_cursor_ = 0;
  entry_cursor_ = 0;
  answer_cursor_ = 0;
}

util::Status write_shard_file(const std::string& path,
                              std::span<const std::uint8_t> bytes) {
  // Commit-by-rename (util/durable_file): a crash mid-write leaves a
  // `.tmp`, never a torn `.ocs` under the final name.
  return util::durable_write_file(path, bytes);
}

util::Result<util::Bytes> read_shard_file(const std::string& path) {
  return util::read_file(path);
}

util::Status remove_shard_file(const std::string& path) {
  return util::remove_file(path);
}

std::string shard_file_path(const std::string& dir, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%06zu.ocs", index);
  return dir + "/" + name;
}

std::string quarantine_file_path(const std::string& dir, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%06zu.ocs", index);
  return dir + "/quarantine/" + name;
}

}  // namespace origin::dataset
