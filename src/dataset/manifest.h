// OCM1 run-manifest journal for the streaming corpus (DESIGN.md §15).
//
// The manifest is the pipeline's commit log: an append-only file in the
// spill directory recording (a) a digest of the run configuration and the
// shard plan, and (b) one fixed-size record per durably committed shard —
// its identity, row totals, byte size, and the CRC-64/XZ of its on-disk
// bytes. The write ordering is shard-file rename first, manifest append
// second, so a record's existence implies the shard file it describes was
// fully committed; a crash between the two merely loses the record, and
// the resume path regenerates that shard (cheap) rather than trusting an
// unrecorded file (unsound).
//
// Wire format (all integers big-endian through util::ByteWriter/ByteReader):
//
//   header  "OCM1" | u32 version | u64 config_digest | u64 corpus_seed
//           | u64 eligible_sites | u64 sites_per_shard | u64 shard_total
//           | u64 crc64(previous header bytes)
//   record  u8 kind (1 = shard committed) | u64 shard_index | u64 first_site
//           | u64 pages | u64 entries | u64 encoded_bytes
//           | u64 content_crc64 | u64 crc64(previous record bytes)
//
// The reader is total in the PR 1 sense (fuzz/fuzz_manifest.cc): arbitrary
// bytes never crash it; a bad header is an error; a record tail that fails
// its CRC — the torn final append a crash leaves — is dropped and counted,
// not an error. Duplicate shard records are legal journal semantics (a
// quarantined shard regenerated during analyze re-appends its record);
// latest_records() resolves them last-record-wins.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/flat_map.h"
#include "util/result.h"

namespace origin::dataset {

inline constexpr char kManifestMagic[4] = {'O', 'C', 'M', '1'};
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::uint8_t kManifestRecordShard = 1;
// 4 + 4 + 5*8 + 8 = 56 header bytes; 1 + 6*8 + 8 = 57 record bytes.
inline constexpr std::size_t kManifestHeaderBytes = 56;
inline constexpr std::size_t kManifestRecordBytes = 57;

struct ManifestHeader {
  std::uint64_t config_digest = 0;
  std::uint64_t corpus_seed = 0;
  std::uint64_t eligible_sites = 0;
  std::uint64_t sites_per_shard = 0;
  std::uint64_t shard_total = 0;

  bool operator==(const ManifestHeader&) const = default;
};

struct ManifestRecord {
  std::uint64_t shard_index = 0;
  std::uint64_t first_site = 0;
  std::uint64_t pages = 0;
  std::uint64_t entries = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t content_crc64 = 0;

  bool operator==(const ManifestRecord&) const = default;
};

// A decoded manifest: the header plus every record whose CRC verified, in
// append order (duplicates preserved), plus how many torn/garbage tail
// bytes were dropped after the last valid record.
struct Manifest {
  ManifestHeader header;
  std::vector<ManifestRecord> records;
  std::uint64_t tail_bytes_dropped = 0;

  // Last-record-wins view of the journal, keyed by shard index.
  util::FlatMap<std::uint64_t, ManifestRecord> latest_records() const;
};

// Serializers; append one encoded record to the journal via
// util::DurableLog so each append is fsynced before the pipeline moves on.
util::Bytes encode_manifest_header(const ManifestHeader& header);
util::Bytes encode_manifest_record(const ManifestRecord& record);

// Total reader. Errors only on a missing/corrupt header (a journal with no
// trustworthy identity); torn record tails are dropped and counted.
[[nodiscard]] util::Result<Manifest> read_manifest(
    std::span<const std::uint8_t> bytes);

// Journal path naming: <dir>/manifest.ocm
std::string manifest_file_path(const std::string& dir);

}  // namespace origin::dataset
