// Calibration data for the synthetic corpus.
//
// We cannot crawl the Tranco 500K offline, so the generator reproduces the
// paper's *published marginals* instead: every constant in this catalog is
// lifted from a table in the paper (noted per entry). The corpus generator
// samples from these to build a world whose measured dataset matches the
// paper's Tables 1–7 and Figures 1/4 closely enough that the §4 model and
// §5 deployment experiments exercise identical code paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "web/resource.h"

namespace origin::dataset {

// --- Providers / ASes (Table 2 request shares; Table 9 hosting shares) ----

struct ProviderSpec {
  std::string organization;
  std::uint32_t asn;
  double request_share;   // Table 2: fraction of all requests
  double hosting_share;   // Table 9 + text: fraction of websites hosted
  std::string ca_name;    // dominant issuer for this provider's certs
  bool is_cdn;            // anycast: short RTTs, many customer hostnames
};

const std::vector<ProviderSpec>& providers();

// --- Certificate issuers (Table 4 validation shares) ----------------------

struct IssuerSpec {
  std::string name;
  double validation_share;
  std::size_t max_san_entries;  // §6.5 per-CA limits
};

const std::vector<IssuerSpec>& issuers();

// --- Content types (Table 5 shares; Table 6 per-provider skews) -----------

struct ContentTypeSpec {
  web::ContentType type;
  double share;              // Table 5
  std::size_t typical_bytes; // median transfer size
  double size_sigma;         // lognormal spread
};

const std::vector<ContentTypeSpec>& content_types();

// Multiplier applied to content-type weights for resources served by a
// given organization (Table 6: Google skews text/javascript, html, woff2).
double provider_content_bias(const std::string& organization,
                             web::ContentType type);

// --- Popular third-party hostnames (Table 7) ------------------------------

struct PopularHostSpec {
  std::string hostname;
  std::string organization;  // must match a ProviderSpec organization
  double request_share;      // Table 7: fraction of all requests
  web::ContentType dominant_type;
  web::RequestMode mode;     // fonts ride CORS-anonymous; beacons use fetch
  // Probability a page includes this host with crossorigin="anonymous" or
  // fetch() (§5.3: SRI on script CDNs makes this common for cdnjs-style
  // hosts and obstructed the deployment's coalescing).
  double sri_churn = 0.05;
};

const std::vector<PopularHostSpec>& popular_hosts();

// --- Protocol mix (Table 3) ------------------------------------------------

struct ProtocolShare {
  web::HttpVersion version;
  double share;
};

const std::vector<ProtocolShare>& protocol_mix();
inline constexpr double kSecureShare = 0.9853;  // Table 3 (bottom)

// --- Per-rank-bucket calibration (Table 1) ---------------------------------

struct RankBucketSpec {
  std::uint64_t rank_begin;  // inclusive
  std::uint64_t rank_end;    // exclusive
  double success_rate;       // successful crawls / attempts
  double median_requests;    // per-page subrequest median
};

const std::vector<RankBucketSpec>& rank_buckets();
const RankBucketSpec& bucket_for_rank(std::uint64_t rank);

// --- Existing-certificate SAN-count distribution (Table 8 / Figure 4) ------

struct SanCountBin {
  int san_count;   // exact count for the head; -1 = heavy tail (>10)
  double weight;   // Table 8 "Measured Count" normalized
};

const std::vector<SanCountBin>& san_count_distribution();

}  // namespace origin::dataset
