#include "dataset/collector.h"

namespace origin::dataset {

std::size_t collect(Corpus& corpus, const CollectOptions& options,
                    const PageSink& sink) {
  browser::PageLoader loader(corpus.env(), options.loader);
  std::size_t loaded = 0;
  for (std::size_t i = 0; i < corpus.sites().size(); ++i) {
    const SiteInfo& site = corpus.sites()[i];
    if (!site.crawl_succeeded) continue;
    if (options.max_sites != 0 && loaded >= options.max_sites) break;
    web::Webpage page = corpus.page_for_site(i);
    web::PageLoad load = loader.load(page);
    sink(site, load);
    ++loaded;
  }
  return loaded;
}

}  // namespace origin::dataset
