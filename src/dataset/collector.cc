#include "dataset/collector.h"

#include <algorithm>
#include <vector>

#include "util/fnv.h"
#include "util/thread_pool.h"

namespace origin::dataset {

namespace {
// Each site's loader hands out connection ids from its own disjoint block so
// ids stay globally unique and independent of worker scheduling. 2^20 ids per
// site is far beyond any single page's connection count.
constexpr std::uint64_t kConnectionIdStride = 1ull << 20;
}  // namespace

browser::LoaderOptions loader_options_for_site(
    const browser::LoaderOptions& base, std::size_t site_index) {
  browser::LoaderOptions site_options = base;
  site_options.seed = origin::util::fnv1a64_mix(
      base.seed, static_cast<std::uint64_t>(site_index));
  site_options.first_connection_id =
      base.first_connection_id +
      static_cast<std::uint64_t>(site_index) * kConnectionIdStride;
  return site_options;
}

std::size_t collect(Corpus& corpus, const CollectOptions& options,
                    const PageSink& sink) {
  // The work list is decided up front from corpus state alone, so it is
  // identical at any thread count.
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < corpus.sites().size(); ++i) {
    if (!corpus.sites()[i].crawl_succeeded) continue;
    if (options.max_sites != 0 && eligible.size() >= options.max_sites) break;
    eligible.push_back(i);
  }

  origin::util::ThreadPool pool(options.threads);
  // Windowed batches keep memory bounded at corpus scale: only one window of
  // PageLoads is ever held, and the sink observes sites in index order.
  const std::size_t window = std::max<std::size_t>(pool.thread_count() * 8, 1);
  std::vector<web::PageLoad> loads;
  for (std::size_t begin = 0; begin < eligible.size(); begin += window) {
    const std::size_t count = std::min(window, eligible.size() - begin);
    loads.assign(count, web::PageLoad{});
    pool.parallel_for_index(count, [&](std::size_t k) {
      const std::size_t site_index = eligible[begin + k];
      browser::PageLoader loader(
          corpus.env(), loader_options_for_site(options.loader, site_index));
      loads[k] = loader.load(corpus.page_for_site(site_index));
    });
    for (std::size_t k = 0; k < count; ++k) {
      sink(corpus.sites()[eligible[begin + k]], loads[k]);
    }
  }
  return eligible.size();
}

}  // namespace origin::dataset
