// Binary shard-snapshot wire format for columnar page timelines
// (DESIGN.md §14).
//
// A snapshot is one TimelineColumns shard, encoded so that a reader can
// stream pages back with zero copies of the column payloads: a fixed
// header, a length-prefixed symbol table, then every column as a
// (tag, byte-length, payload) record in one canonical order. All header
// and framing integers are big-endian through util::ByteWriter/ByteReader
// (the repo's audited bounded codec); column payloads are raw
// little-endian rows bulk-copied from the arena chunks, guarded by an
// endianness sentinel in the header.
//
// The reader is total in the fuzzing sense: SnapshotReader::open()
// validates framing, symbol references, enum ranges, flag masks, and
// row-count cross-sums before returning, never throws, never reads out of
// bounds (every access goes through the span-bounded ByteReader or a
// memcpy inside a validated column span), and rejects trailing bytes — so
// next_page() after a successful open() is infallible, and an accepted
// snapshot re-encodes to the identical byte string (canonical form).
//
// Format v2 (DESIGN.md §15) appends a CRC-64/XZ footer — 4-byte magic
// "OCSF" plus the big-endian CRC of everything before it — which open()
// verifies before parsing a single header byte. A torn or bit-flipped
// shard file is therefore detected up front and surfaces as a Result
// error ("checksum mismatch"), never as silently wrong timeline data; the
// streaming pipeline quarantines such shards and regenerates them from
// their site range (dataset/corpus.h).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dataset/corpus.h"
#include "util/bytes.h"
#include "util/result.h"
#include "web/har.h"

namespace origin::dataset {

// Format constants, shared by writer, reader, and the fuzz driver.
inline constexpr char kSnapshotMagic[4] = {'O', 'C', 'S', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::uint8_t kSnapshotLittleEndianPayload = 1;
inline constexpr std::size_t kSnapshotMaxSymbolBytes = 4'096;
inline constexpr std::size_t kSnapshotColumnCount = 30;

// Integrity footer (v2): magic + big-endian CRC-64/XZ over every byte that
// precedes the footer. Verified before any header parsing.
inline constexpr char kSnapshotFooterMagic[4] = {'O', 'C', 'S', 'F'};
inline constexpr std::size_t kSnapshotFooterBytes = 12;

// Entry flag bits (the packed bool column). Any bit outside the mask makes
// a snapshot invalid.
inline constexpr std::uint8_t kSnapshotFlagSecure = 1u << 0;
inline constexpr std::uint8_t kSnapshotFlagNewDns = 1u << 1;
inline constexpr std::uint8_t kSnapshotFlagNewTls = 1u << 2;
inline constexpr std::uint8_t kSnapshotFlagSpeculative = 1u << 3;
inline constexpr std::uint8_t kSnapshotFlagStatus421 = 1u << 4;
inline constexpr std::uint8_t kSnapshotFlagMask = 0x1F;

// Serializes the shard. The byte string is canonical: symbols appear in
// first-appearance (id) order and columns in fixed tag order, so
// encode(decode(encode(x))) == encode(x).
util::Bytes encode_snapshot(const TimelineColumns& columns);

// Streaming decoder over an encoded snapshot. Non-owning: `bytes` must
// outlive the reader (shard buffers / mapped files stay alive for exactly
// one shard in the pipeline).
class SnapshotReader {
 public:
  [[nodiscard]] static util::Result<SnapshotReader> open(
      std::span<const std::uint8_t> bytes);

  const ShardMeta& meta() const { return meta_; }

  // Materializes the next page into `out` (reusing its capacity where the
  // standard library allows). Returns false once all pages are consumed.
  bool next_page(web::PageLoad* out);
  void rewind();
  std::size_t pages_read() const { return page_cursor_; }

 private:
  SnapshotReader() = default;

  // Typed access into a validated column span. Index bounds were checked
  // against meta_ row counts at open(), so these are pure loads.
  template <typename T>
  T column(std::size_t tag, std::size_t row) const;

  ShardMeta meta_;
  std::vector<std::string> symbols_;
  // One validated payload span per column tag, in tag order.
  std::vector<std::span<const std::uint8_t>> columns_;

  std::size_t page_cursor_ = 0;
  std::size_t entry_cursor_ = 0;
  std::size_t answer_cursor_ = 0;
};

// Shard file IO. Paths name regular files inside the pipeline's spill
// directory; all are total (errors come back as Status/Result, never
// exceptions). Writes are crash-consistent: they funnel through
// util::durable_write_file (temp → fsync → rename commit), so a killed run
// leaves either the complete shard or a swept-on-startup `.tmp`, never a
// torn `.ocs`.
[[nodiscard]] util::Status write_shard_file(
    const std::string& path, std::span<const std::uint8_t> bytes);
[[nodiscard]] util::Result<util::Bytes> read_shard_file(
    const std::string& path);
[[nodiscard]] util::Status remove_shard_file(const std::string& path);

// Shard path naming: <dir>/shard_<index 6 digits>.ocs
std::string shard_file_path(const std::string& dir, std::size_t index);

// Quarantine path for a shard whose bytes failed CRC/format validation:
// <dir>/quarantine/shard_<index 6 digits>.ocs
std::string quarantine_file_path(const std::string& dir, std::size_t index);

}  // namespace origin::dataset
