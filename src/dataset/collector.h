// Streaming dataset collection: the WebPageTest stand-in at corpus scale.
//
// Loads every successfully-crawled site's page with the analytic loader
// (Chrome v88-equivalent policy: chromium-ip) and hands each PageLoad to a
// sink. Nothing is retained, so 300K-site runs stay memory-bounded.
#pragma once

#include <functional>

#include "browser/page_loader.h"
#include "dataset/generator.h"
#include "web/har.h"

namespace origin::dataset {

struct CollectOptions {
  browser::LoaderOptions loader;  // policy defaults to chromium-ip
  // Load at most this many (successful) sites; 0 = all.
  std::size_t max_sites = 0;
  // Worker threads for page loading. 0 resolves via ORIGIN_THREADS /
  // hardware concurrency; 1 is the serial fallback. Output is bit-identical
  // at any thread count: every site gets its own loader (seed mixed from the
  // base seed and the site index, connection ids from a disjoint per-site
  // block) and the sink always runs serially in site-index order.
  std::size_t threads = 1;
};

using PageSink =
    std::function<void(const SiteInfo& site, const web::PageLoad& load)>;

// Returns the number of pages loaded.
std::size_t collect(Corpus& corpus, const CollectOptions& options,
                    const PageSink& sink);

// Per-site loader configuration: seed mixed from the base seed and the site
// index, connection ids from a disjoint per-site block. Shared by collect()
// and the streaming shard loader (dataset/corpus.h) so both produce
// bit-identical pages for a given site at any thread count and any shard
// boundary.
browser::LoaderOptions loader_options_for_site(
    const browser::LoaderOptions& base, std::size_t site_index);

}  // namespace origin::dataset
