#include "dataset/catalog.h"

namespace origin::dataset {

const std::vector<ProviderSpec>& providers() {
  // request_share from Table 2; hosting_share from Table 9 (Cloudflare
  // 24.74%, Amazon 7.75%, Google 5.09%) with small estimates for the rest.
  static const std::vector<ProviderSpec> kProviders = {
      {"Google", 15169, 0.2210, 0.0509, "Google Trust Services CA 101", true},
      {"Cloudflare", 13335, 0.1375, 0.2474, "Cloudflare Inc ECC CA-3", true},
      {"Amazon 02", 16509, 0.0840, 0.0525, "Amazon", true},
      {"Amazon AES", 14618, 0.0562, 0.0250, "Amazon", true},
      {"Fastly", 54113, 0.0357, 0.0180, "GlobalSign CloudSSL CA - SHA256 - G3",
       true},
      {"Akamai AS", 16625, 0.0302, 0.0120, "DigiCert SHA2 High Assurance Server CA",
       true},
      {"Facebook", 32934, 0.0278, 0.0010, "DigiCert SHA2 High Assurance Server CA",
       true},
      {"Akamai Intl. B.V.", 20940, 0.0162, 0.0080,
       "DigiCert SHA2 Secure Server CA", true},
      {"OVH SAS", 16276, 0.0152, 0.0350, "Lets Encrypt (R3)", false},
      {"Hetzner Online GmbH", 24940, 0.0130, 0.0300, "Lets Encrypt (R3)",
       false},
      // Aggregated long tail: the paper saw 13,316 ASes; 51 ASes cover 80%
      // of requests. We model the tail as many small self-hosting ASes.
      {"Long Tail Hosting", 0, 0.3632, 0.5202, "Lets Encrypt (R3)", false},
  };
  return kProviders;
}

const std::vector<IssuerSpec>& issuers() {
  // Table 4 shares; SAN limits per §6.5 (LE/DigiCert/GoDaddy 100, Comodo
  // 2000; cPanel/DFN/GlobalSign observed issuing >800).
  static const std::vector<IssuerSpec> kIssuers = {
      {"Google Trust Services CA 101", 0.2586, 100},
      {"Lets Encrypt (R3)", 0.0958, 100},
      {"Amazon", 0.0915, 100},
      {"Cloudflare Inc ECC CA-3", 0.0761, 100},
      {"DigiCert SHA2 High Assurance Server CA", 0.0705, 100},
      {"DigiCert SHA2 Secure Server CA", 0.0695, 100},
      {"Sectigo RSA DV Secure Server CA", 0.0691, 2000},
      {"GoDaddy Secure Certificate Authority - G2", 0.0311, 100},
      {"DigiCert TLS RSA SHA256 2020 CA1", 0.0285, 100},
      {"GeoTrust RSA CA 2018", 0.0159, 100},
      {"GlobalSign CloudSSL CA - SHA256 - G3", 0.0130, 2000},
      {"cPanel Inc Certification Authority", 0.0100, 2000},
      {"Other CA", 0.1704, 100},
  };
  return kIssuers;
}

const std::vector<ContentTypeSpec>& content_types() {
  // Shares from Table 5; sizes are typical web-payload medians.
  static const std::vector<ContentTypeSpec> kTypes = {
      {web::ContentType::kJavascript, 0.1426, 28000, 1.0},
      {web::ContentType::kJpeg, 0.1302, 55000, 1.1},
      {web::ContentType::kPng, 0.1067, 30000, 1.1},
      {web::ContentType::kHtml, 0.1032, 22000, 0.9},
      {web::ContentType::kGif, 0.0897, 4000, 1.2},
      {web::ContentType::kCss, 0.0779, 16000, 1.0},
      {web::ContentType::kTextJavascript, 0.0676, 26000, 1.0},
      {web::ContentType::kJson, 0.0353, 3000, 1.2},
      {web::ContentType::kXJavascript, 0.0336, 24000, 1.0},
      {web::ContentType::kFontWoff2, 0.0268, 24000, 0.6},
      {web::ContentType::kWebp, 0.0267, 28000, 1.1},
      {web::ContentType::kPlain, 0.0252, 2000, 1.3},
      {web::ContentType::kOther, 0.1345, 8000, 1.4},
  };
  return kTypes;
}

double provider_content_bias(const std::string& organization,
                             web::ContentType type) {
  // Table 6: Google serves disproportionate text/javascript (21.69%), html
  // (14.39%), gif (10.96%), woff2 (9.99%); Cloudflare and Amazon lead with
  // application/javascript and images.
  if (organization == "Google") {
    switch (type) {
      case web::ContentType::kTextJavascript: return 3.2;
      case web::ContentType::kHtml: return 1.4;
      case web::ContentType::kGif: return 1.2;
      case web::ContentType::kFontWoff2: return 3.7;
      case web::ContentType::kJavascript: return 0.4;
      default: return 1.0;
    }
  }
  if (organization == "Cloudflare" || organization == "Amazon 02") {
    switch (type) {
      case web::ContentType::kJavascript: return 1.6;
      case web::ContentType::kJpeg: return 1.4;
      case web::ContentType::kTextJavascript: return 0.3;
      default: return 1.0;
    }
  }
  return 1.0;
}

const std::vector<PopularHostSpec>& popular_hosts() {
  // Table 7 head plus a few more hosts implied by Table 9 (cdnjs, jsdelivr,
  // hotjar, googletagmanager). Shares are of total requests.
  static const std::vector<PopularHostSpec> kHosts = {
      {"fonts.gstatic.com", "Google", 0.0223, web::ContentType::kFontWoff2,
       web::RequestMode::kCorsAnonymous},
      {"www.google-analytics.com", "Google", 0.0167,
       web::ContentType::kTextJavascript, web::RequestMode::kFetchApi},
      {"www.facebook.com", "Facebook", 0.0158, web::ContentType::kHtml,
       web::RequestMode::kSubresource},
      {"www.google.com", "Google", 0.0152, web::ContentType::kHtml,
       web::RequestMode::kSubresource},
      {"tpc.googlesyndication.com", "Google", 0.0121,
       web::ContentType::kHtml, web::RequestMode::kSubresource},
      {"cm.g.doubleclick.net", "Google", 0.0118, web::ContentType::kGif,
       web::RequestMode::kSubresource},
      {"googleads.g.doubleclick.net", "Google", 0.0115,
       web::ContentType::kTextJavascript, web::RequestMode::kSubresource},
      {"pagead2.googlesyndication.com", "Google", 0.0112,
       web::ContentType::kTextJavascript, web::RequestMode::kSubresource},
      {"fonts.googleapis.com", "Google", 0.0097, web::ContentType::kCss,
       web::RequestMode::kCorsAnonymous},
      {"cdn.shopify.com", "Cloudflare", 0.0087, web::ContentType::kJpeg,
       web::RequestMode::kSubresource},
      // The coalescing-candidate third parties of Table 9.
      {"cdnjs.cloudflare.com", "Cloudflare", 0.0080,
       web::ContentType::kJavascript, web::RequestMode::kSubresource, 0.32},
      {"ajax.cloudflare.com", "Cloudflare", 0.0045,
       web::ContentType::kJavascript, web::RequestMode::kSubresource, 0.20},
      {"cdn.jsdelivr.net", "Cloudflare", 0.0040,
       web::ContentType::kJavascript, web::RequestMode::kSubresource, 0.32},
      {"script.hotjar.com", "Amazon 02", 0.0035,
       web::ContentType::kJavascript, web::RequestMode::kFetchApi},
      {"www.googletagmanager.com", "Google", 0.0060,
       web::ContentType::kTextJavascript, web::RequestMode::kSubresource},
      {"d1af033869koo7.cloudfront.net", "Amazon 02", 0.0030,
       web::ContentType::kPng, web::RequestMode::kSubresource},
      {"s3.amazonaws.com", "Amazon 02", 0.0030, web::ContentType::kJson,
       web::RequestMode::kFetchApi},
      {"cdn.fastly.net", "Fastly", 0.0030, web::ContentType::kCss,
       web::RequestMode::kSubresource},
      {"static.akamaized.net", "Akamai AS", 0.0028,
       web::ContentType::kJpeg, web::RequestMode::kSubresource},
      {"connect.facebook.net", "Facebook", 0.0035,
       web::ContentType::kJavascript, web::RequestMode::kSubresource},
  };
  return kHosts;
}

const std::vector<ProtocolShare>& protocol_mix() {
  // Table 3. N/A requests (6.8%) are modeled as kUnknown.
  static const std::vector<ProtocolShare> kMix = {
      {web::HttpVersion::kH2, 0.7364},  {web::HttpVersion::kH11, 0.1909},
      {web::HttpVersion::kH3, 0.0034},  {web::HttpVersion::kQuic, 0.0007},
      {web::HttpVersion::kH10, 0.0003}, {web::HttpVersion::kUnknown, 0.0680},
  };
  return kMix;
}

const std::vector<RankBucketSpec>& rank_buckets() {
  // Table 1. Success counts per 100K bucket and per-bucket request medians.
  static const std::vector<RankBucketSpec> kBuckets = {
      {0, 100'000, 0.68244, 89},
      {100'000, 200'000, 0.64163, 83},
      {200'000, 300'000, 0.63334, 80},
      {300'000, 400'000, 0.59827, 79},
      {400'000, 500'000, 0.60228, 78},
  };
  return kBuckets;
}

const RankBucketSpec& bucket_for_rank(std::uint64_t rank) {
  for (const auto& bucket : rank_buckets()) {
    if (rank >= bucket.rank_begin && rank < bucket.rank_end) return bucket;
  }
  return rank_buckets().back();
}

const std::vector<SanCountBin>& san_count_distribution() {
  // Table 8 measured counts (out of 315,796 certificates); the -1 bin is
  // the >10 heavy tail (mass = remainder), sampled as bounded Pareto so
  // that ~0.9% of tail sites exceed 250 SANs (230 sites in the paper) and
  // the maximum approaches the paper's ~2000-name certificates.
  static const std::vector<SanCountBin> kBins = {
      {2, 143037}, {3, 73124}, {1, 30278}, {0, 11131}, {8, 8343},
      {4, 7223},   {9, 6380},  {6, 4141},  {5, 3149},  {10, 2573},
      {-1, 26417},
  };
  return kBins;
}

}  // namespace origin::dataset
