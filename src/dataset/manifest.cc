#include "dataset/manifest.h"

#include "util/hash.h"

namespace origin::dataset {

namespace {

util::Error manifest_error(const std::string& what) {
  return util::make_error("manifest: " + what);
}

}  // namespace

util::FlatMap<std::uint64_t, ManifestRecord> Manifest::latest_records() const {
  util::FlatMap<std::uint64_t, ManifestRecord> latest;
  for (const auto& record : records) latest[record.shard_index] = record;
  return latest;
}

util::Bytes encode_manifest_header(const ManifestHeader& header) {
  util::ByteWriter writer(kManifestHeaderBytes);
  writer.raw(std::string_view(kManifestMagic, sizeof(kManifestMagic)));
  writer.u32(kManifestVersion);
  writer.u64(header.config_digest);
  writer.u64(header.corpus_seed);
  writer.u64(header.eligible_sites);
  writer.u64(header.sites_per_shard);
  writer.u64(header.shard_total);
  writer.u64(util::crc64(writer.bytes()));
  return writer.take();
}

util::Bytes encode_manifest_record(const ManifestRecord& record) {
  util::ByteWriter writer(kManifestRecordBytes);
  writer.u8(kManifestRecordShard);
  writer.u64(record.shard_index);
  writer.u64(record.first_site);
  writer.u64(record.pages);
  writer.u64(record.entries);
  writer.u64(record.encoded_bytes);
  writer.u64(record.content_crc64);
  writer.u64(util::crc64(writer.bytes()));
  return writer.take();
}

util::Result<Manifest> read_manifest(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kManifestHeaderBytes) {
    return manifest_error("truncated header");
  }
  const auto header_bytes = bytes.first(kManifestHeaderBytes);
  const auto header_body = header_bytes.first(kManifestHeaderBytes - 8);
  util::ByteReader reader(header_bytes);
  const auto magic = reader.raw(sizeof(kManifestMagic));
  if (util::as_string_view(magic) !=
      std::string_view(kManifestMagic, sizeof(kManifestMagic))) {
    return manifest_error("bad magic");
  }
  const std::uint32_t version = reader.u32();
  if (version != kManifestVersion) {
    return manifest_error("unsupported version " + std::to_string(version));
  }
  Manifest manifest;
  manifest.header.config_digest = reader.u64();
  manifest.header.corpus_seed = reader.u64();
  manifest.header.eligible_sites = reader.u64();
  manifest.header.sites_per_shard = reader.u64();
  manifest.header.shard_total = reader.u64();
  const std::uint64_t header_crc = reader.u64();
  if (!reader.ok()) return manifest_error("truncated header");
  if (header_crc != util::crc64(header_body)) {
    return manifest_error("header checksum mismatch");
  }

  // Records: fixed-size frames; the first frame that is short or fails its
  // CRC ends the journal. Everything after it is the torn tail a crash
  // leaves behind — dropped and counted, never parsed.
  auto tail = bytes.subspan(kManifestHeaderBytes);
  while (tail.size() >= kManifestRecordBytes) {
    const auto frame = tail.first(kManifestRecordBytes);
    util::ByteReader record_reader(frame);
    const std::uint8_t kind = record_reader.u8();
    ManifestRecord record;
    record.shard_index = record_reader.u64();
    record.first_site = record_reader.u64();
    record.pages = record_reader.u64();
    record.entries = record_reader.u64();
    record.encoded_bytes = record_reader.u64();
    record.content_crc64 = record_reader.u64();
    const std::uint64_t record_crc = record_reader.u64();
    if (kind != kManifestRecordShard ||
        record_crc != util::crc64(frame.first(kManifestRecordBytes - 8))) {
      break;
    }
    manifest.records.push_back(record);
    tail = tail.subspan(kManifestRecordBytes);
  }
  manifest.tail_bytes_dropped = tail.size();
  return manifest;
}

std::string manifest_file_path(const std::string& dir) {
  return dir + "/manifest.ocm";
}

}  // namespace origin::dataset
