#include "dataset/corpus.h"

#include <algorithm>
#include <utility>

#include "dataset/collector.h"
#include "dataset/snapshot.h"
#include "model/coalescing_model.h"
#include "util/fnv.h"
#include "util/hot_path.h"
#include "util/thread_pool.h"
#include "web/har_json.h"

namespace origin::dataset {

namespace {

std::uint64_t digest_page(const web::PageLoad& load, std::uint64_t digest) {
  return util::fnv1a64(web::to_har_string(load), digest);
}

// Shared per-page aggregation between the streamed and materialized paths.
struct Aggregator {
  StreamStats stats;

  void measured(const web::PageLoad& load) {
    stats.pages += 1;
    stats.entries += load.entries.size();
    stats.measured_dns += load.dns_query_count();
    stats.measured_tls += load.tls_connection_count();
    stats.measured_validations += load.certificate_validation_count();
    stats.measured_plt_us += load.page_load_time().count_micros();
    stats.measured_digest = digest_page(load, stats.measured_digest);
  }

  void analyzed(const model::PageAnalysis& analysis) {
    stats.ideal_origin_dns += analysis.ideal_origin_dns;
    stats.ideal_origin_tls += analysis.ideal_origin_tls;
    stats.ideal_origin_validations += analysis.ideal_origin_validations;
    stats.ideal_ip_dns += analysis.ideal_ip_dns;
    stats.ideal_ip_tls += analysis.ideal_ip_tls;
  }

  void reconstructed(const web::PageLoad& load) {
    stats.reconstructed_plt_us += load.page_load_time().count_micros();
    stats.reconstructed_digest =
        digest_page(load, stats.reconstructed_digest);
  }
};

}  // namespace

// --- TimelineColumns ------------------------------------------------------

TimelineColumns::TimelineColumns()
    : entry_resource_index_(arena_),
      entry_host_sym_(arena_),
      entry_addr_family_(arena_),
      entry_addr_value_(arena_),
      entry_answer_count_(arena_),
      entry_asn_(arena_),
      entry_version_(arena_),
      entry_mode_(arena_),
      entry_content_type_(arena_),
      entry_flags_(arena_),
      entry_start_us_(arena_),
      entry_blocked_us_(arena_),
      entry_dns_us_(arena_),
      entry_connect_us_(arena_),
      entry_ssl_us_(arena_),
      entry_send_us_(arena_),
      entry_wait_us_(arena_),
      entry_receive_us_(arena_),
      entry_connection_id_(arena_),
      entry_cert_serial_(arena_),
      entry_issuer_sym_(arena_),
      entry_san_count_(arena_),
      answer_family_(arena_),
      answer_value_(arena_),
      page_rank_(arena_),
      page_base_sym_(arena_),
      page_success_(arena_),
      page_entry_count_(arena_),
      page_extra_dns_(arena_),
      page_extra_tls_(arena_) {}

void TimelineColumns::set_identity(std::uint64_t shard_index,
                                   std::uint64_t corpus_seed,
                                   std::uint64_t first_site) {
  shard_index_ = shard_index;
  corpus_seed_ = corpus_seed;
  first_site_ = first_site;
}

std::uint32_t TimelineColumns::intern(std::string_view name) {
  if (const std::uint32_t* id = symbol_index_.find(name)) return *id;
  const std::uint32_t id = static_cast<std::uint32_t>(symbol_names_.size());
  // analyze:allow(hot-transitive): the symbol table grows once per unique
  // hostname per shard, in the cold append_page wrapper — never inside the
  // HOT row appends; the reported hot chain is a by-name match of intern()
  // against the coalescing model's unrelated interner.
  symbol_names_.emplace_back(name);
  // analyze:allow(hot-transitive): same false chain as above — the index
  // grows once per unique hostname per shard in this cold wrapper only.
  symbol_index_.emplace(symbol_names_.back(), id);
  return id;
}

ORIGIN_HOT void TimelineColumns::append_page_row(const web::PageLoad& load,
                                                 std::uint32_t base_sym) {
  page_rank_.put(load.tranco_rank);
  page_base_sym_.put(base_sym);
  page_success_.put(load.success ? 1 : 0);
  page_entry_count_.put(static_cast<std::uint32_t>(load.entries.size()));
  page_extra_dns_.put(static_cast<std::uint64_t>(load.extra_dns_queries));
  page_extra_tls_.put(static_cast<std::uint64_t>(load.extra_tls_connections));
}

ORIGIN_HOT void TimelineColumns::append_entry_row(const web::HarEntry& entry,
                                                  std::uint32_t host_sym,
                                                  std::uint32_t issuer_sym) {
  entry_resource_index_.put(static_cast<std::int32_t>(entry.resource_index));
  entry_host_sym_.put(host_sym);
  entry_addr_family_.put(
      static_cast<std::uint8_t>(entry.server_address.family));
  entry_addr_value_.put(entry.server_address.value);
  entry_answer_count_.put(
      static_cast<std::uint16_t>(entry.dns_answer_set.size()));
  entry_asn_.put(entry.asn);
  entry_version_.put(static_cast<std::uint8_t>(entry.version));
  entry_mode_.put(static_cast<std::uint8_t>(entry.mode));
  entry_content_type_.put(static_cast<std::uint8_t>(entry.content_type));
  std::uint8_t flags = 0;
  if (entry.secure) flags |= kSnapshotFlagSecure;
  if (entry.new_dns_query) flags |= kSnapshotFlagNewDns;
  if (entry.new_tls_connection) flags |= kSnapshotFlagNewTls;
  if (entry.speculative_duplicate) flags |= kSnapshotFlagSpeculative;
  if (entry.status_421) flags |= kSnapshotFlagStatus421;
  entry_flags_.put(flags);
  entry_start_us_.put(entry.start.micros());
  entry_blocked_us_.put(entry.timings.blocked.count_micros());
  entry_dns_us_.put(entry.timings.dns.count_micros());
  entry_connect_us_.put(entry.timings.connect.count_micros());
  entry_ssl_us_.put(entry.timings.ssl.count_micros());
  entry_send_us_.put(entry.timings.send.count_micros());
  entry_wait_us_.put(entry.timings.wait.count_micros());
  entry_receive_us_.put(entry.timings.receive.count_micros());
  entry_connection_id_.put(entry.connection_id);
  entry_cert_serial_.put(entry.cert_serial);
  entry_issuer_sym_.put(issuer_sym);
  entry_san_count_.put(entry.cert_san_count);
  for (const dns::IpAddress& address : entry.dns_answer_set) {
    answer_family_.put(static_cast<std::uint8_t>(address.family));
    answer_value_.put(address.value);
  }
}

void TimelineColumns::append_page(const web::PageLoad& load) {
  append_page_row(load, intern(load.base_hostname));
  for (const web::HarEntry& entry : load.entries) {
    append_entry_row(entry, intern(entry.hostname),
                     intern(entry.cert_issuer));
  }
}

void TimelineColumns::clear() {
  entry_resource_index_.clear();
  entry_host_sym_.clear();
  entry_addr_family_.clear();
  entry_addr_value_.clear();
  entry_answer_count_.clear();
  entry_asn_.clear();
  entry_version_.clear();
  entry_mode_.clear();
  entry_content_type_.clear();
  entry_flags_.clear();
  entry_start_us_.clear();
  entry_blocked_us_.clear();
  entry_dns_us_.clear();
  entry_connect_us_.clear();
  entry_ssl_us_.clear();
  entry_send_us_.clear();
  entry_wait_us_.clear();
  entry_receive_us_.clear();
  entry_connection_id_.clear();
  entry_cert_serial_.clear();
  entry_issuer_sym_.clear();
  entry_san_count_.clear();
  answer_family_.clear();
  answer_value_.clear();
  page_rank_.clear();
  page_base_sym_.clear();
  page_success_.clear();
  page_entry_count_.clear();
  page_extra_dns_.clear();
  page_extra_tls_.clear();
  symbol_names_.clear();
  symbol_index_.clear();
  arena_.reset();
}

ShardMeta TimelineColumns::meta() const {
  ShardMeta meta;
  meta.shard_index = shard_index_;
  meta.corpus_seed = corpus_seed_;
  meta.first_site = first_site_;
  meta.pages = page_rank_.size();
  meta.entries = entry_start_us_.size();
  meta.answers = answer_value_.size();
  meta.symbols = static_cast<std::uint32_t>(symbol_names_.size());
  return meta;
}

// --- StreamingCorpus ------------------------------------------------------

StreamingCorpus::StreamingCorpus(Corpus& corpus, StreamingOptions options)
    : corpus_(corpus), options_(std::move(options)) {
  build_eligible();
}

void StreamingCorpus::build_eligible() {
  // Mirrors collect(): the work list is decided from corpus state alone.
  for (std::size_t i = 0; i < corpus_.sites().size(); ++i) {
    if (!corpus_.sites()[i].crawl_succeeded) continue;
    if (options_.max_sites != 0 && eligible_.size() >= options_.max_sites) {
      break;
    }
    eligible_.push_back(i);
  }
}

util::Status StreamingCorpus::generate() {
  shards_.clear();
  std::size_t per_shard = options_.sites_per_shard;
  if (options_.shard_count != 0) {
    per_shard = (eligible_.size() + options_.shard_count - 1) /
                options_.shard_count;
  }
  per_shard = std::max<std::size_t>(per_shard, 1);

  util::ThreadPool pool(options_.threads);
  std::vector<web::PageLoad> loads;
  for (std::size_t begin = 0; begin < eligible_.size(); begin += per_shard) {
    const std::size_t count = std::min(per_shard, eligible_.size() - begin);
    const std::size_t shard_index = shards_.size();

    // Parallel load: per-site seeds and connection-id blocks come from the
    // site index alone, so worker scheduling cannot leak into the pages.
    loads.assign(count, web::PageLoad{});
    pool.parallel_for_index(count, [&](std::size_t k) {
      const std::size_t site_index = eligible_[begin + k];
      browser::PageLoader loader(
          corpus_.env(),
          loader_options_for_site(options_.loader, site_index));
      loads[k] = loader.load(corpus_.page_for_site(site_index));
    });

    // Serial columnar append in site order (symbol ids are first-appearance
    // order, part of the canonical snapshot form).
    columns_.clear();
    columns_.set_identity(shard_index, corpus_.options().seed, begin);
    for (const web::PageLoad& load : loads) columns_.append_page(load);

    ShardInfo info;
    info.index = shard_index;
    info.first_site = begin;
    info.pages = columns_.page_count();
    info.entries = columns_.entry_count();
    util::Bytes encoded = encode_snapshot(columns_);
    info.encoded_bytes = encoded.size();
    if (options_.spill_dir.empty()) {
      info.buffer = std::move(encoded);
    } else {
      info.path = shard_file_path(options_.spill_dir, shard_index);
      auto written = write_shard_file(info.path, encoded);
      if (!written.ok()) return written;
    }
    shards_.push_back(std::move(info));
  }
  generated_ = true;
  return util::Status::ok_status();
}

util::Result<StreamStats> StreamingCorpus::analyze() {
  if (!generated_) {
    return util::make_error("StreamingCorpus::analyze() before generate()");
  }
  Aggregator agg;
  agg.stats.sites = eligible_.size();
  agg.stats.shards = shards_.size();

  model::CoalescingModel model(corpus_.env());

  std::vector<web::PageLoad> pages;
  for (ShardInfo& shard : shards_) {
    util::Bytes file_bytes;
    std::span<const std::uint8_t> bytes;
    if (!shard.path.empty()) {
      auto read = read_shard_file(shard.path);
      if (!read.ok()) return read.error();
      file_bytes = std::move(read).value();
      bytes = file_bytes;
    } else {
      bytes = shard.buffer;
    }
    agg.stats.snapshot_bytes += bytes.size();

    auto reader = SnapshotReader::open(bytes);
    if (!reader.ok()) return reader.error();
    const std::size_t page_count =
        static_cast<std::size_t>(reader->meta().pages);

    pages.assign(page_count, web::PageLoad{});
    for (std::size_t i = 0; i < page_count; ++i) {
      reader.value().next_page(&pages[i]);
    }
    for (const web::PageLoad& page : pages) agg.measured(page);

    const auto analyses = model.analyze_batch(pages, options_.threads);
    for (const model::PageAnalysis& analysis : analyses) {
      agg.analyzed(analysis);
    }

    if (options_.observer != nullptr) {
      options_.observer->on_shard(pages, shard.first_site);
    }

    const auto reconstructed =
        model.reconstruct_batch(pages, analyses, "", options_.threads);
    for (const web::PageLoad& page : reconstructed) agg.reconstructed(page);

    if (!shard.path.empty() && !options_.keep_shards) {
      auto removed = remove_shard_file(shard.path);
      if (!removed.ok()) return removed.error();
      shard.path.clear();
    }
  }
  return agg.stats;
}

util::Result<StreamStats> StreamingCorpus::run() {
  auto generated = generate();
  if (!generated.ok()) return generated.error();
  return analyze();
}

// --- materialized reference path ------------------------------------------

util::Result<StreamStats> run_materialized(Corpus& corpus,
                                           const StreamingOptions& options) {
  CollectOptions collect_options;
  collect_options.loader = options.loader;
  collect_options.max_sites = options.max_sites;
  collect_options.threads = options.threads;

  // The seed's shape: the whole corpus resident as one vector of structs.
  std::vector<web::PageLoad> loads;
  dataset::collect(corpus, collect_options,
                   [&](const SiteInfo&, const web::PageLoad& load) {
                     loads.push_back(load);
                   });

  Aggregator agg;
  agg.stats.sites = loads.size();
  agg.stats.shards = 0;
  for (const web::PageLoad& load : loads) agg.measured(load);

  model::CoalescingModel model(corpus.env());
  const auto analyses = model.analyze_batch(loads, options.threads);
  for (const model::PageAnalysis& analysis : analyses) {
    agg.analyzed(analysis);
  }

  // One whole-corpus "shard": observer record order matches the streamed
  // path's shard-by-shard calls exactly.
  if (options.observer != nullptr) options.observer->on_shard(loads, 0);

  const auto reconstructed =
      model.reconstruct_batch(loads, analyses, "", options.threads);
  for (const web::PageLoad& page : reconstructed) agg.reconstructed(page);

  return agg.stats;
}

}  // namespace origin::dataset
