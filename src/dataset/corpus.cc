#include "dataset/corpus.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "dataset/collector.h"
#include "dataset/snapshot.h"
#include "model/coalescing_model.h"
#include "util/crash.h"
#include "util/fnv.h"
#include "util/hash.h"
#include "util/hot_path.h"
#include "util/thread_pool.h"
#include "web/har_json.h"

namespace origin::dataset {

namespace {

std::uint64_t digest_page(const web::PageLoad& load, std::uint64_t digest) {
  return util::fnv1a64(web::to_har_string(load), digest);
}

// Recognizes `shard_NNNNNN.ocs` spill files and extracts the index, so the
// spill-dir sweep can tell journaled shards from stale leftovers.
bool parse_shard_filename(const std::string& name, std::uint64_t* index) {
  constexpr std::string_view kPrefix = "shard_";
  constexpr std::string_view kSuffix = ".ocs";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *index = value;
  return true;
}

// Deletes every `*.ocs` directly inside `dir` (fresh-start hygiene for the
// quarantine subdirectory). Missing directory is zero.
std::size_t sweep_shard_files(const std::string& dir) {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::uint64_t index = 0;
    if (!parse_shard_filename(entry.path().filename().string(), &index)) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec)) ++removed;
  }
  return removed;
}

// Shared per-page aggregation between the streamed and materialized paths.
struct Aggregator {
  StreamStats stats;

  void measured(const web::PageLoad& load) {
    stats.pages += 1;
    stats.entries += load.entries.size();
    stats.measured_dns += load.dns_query_count();
    stats.measured_tls += load.tls_connection_count();
    stats.measured_validations += load.certificate_validation_count();
    stats.measured_plt_us += load.page_load_time().count_micros();
    stats.measured_digest = digest_page(load, stats.measured_digest);
  }

  void analyzed(const model::PageAnalysis& analysis) {
    stats.ideal_origin_dns += analysis.ideal_origin_dns;
    stats.ideal_origin_tls += analysis.ideal_origin_tls;
    stats.ideal_origin_validations += analysis.ideal_origin_validations;
    stats.ideal_ip_dns += analysis.ideal_ip_dns;
    stats.ideal_ip_tls += analysis.ideal_ip_tls;
  }

  void reconstructed(const web::PageLoad& load) {
    stats.reconstructed_plt_us += load.page_load_time().count_micros();
    stats.reconstructed_digest =
        digest_page(load, stats.reconstructed_digest);
  }
};

}  // namespace

// --- TimelineColumns ------------------------------------------------------

TimelineColumns::TimelineColumns()
    : entry_resource_index_(arena_),
      entry_host_sym_(arena_),
      entry_addr_family_(arena_),
      entry_addr_value_(arena_),
      entry_answer_count_(arena_),
      entry_asn_(arena_),
      entry_version_(arena_),
      entry_mode_(arena_),
      entry_content_type_(arena_),
      entry_flags_(arena_),
      entry_start_us_(arena_),
      entry_blocked_us_(arena_),
      entry_dns_us_(arena_),
      entry_connect_us_(arena_),
      entry_ssl_us_(arena_),
      entry_send_us_(arena_),
      entry_wait_us_(arena_),
      entry_receive_us_(arena_),
      entry_connection_id_(arena_),
      entry_cert_serial_(arena_),
      entry_issuer_sym_(arena_),
      entry_san_count_(arena_),
      answer_family_(arena_),
      answer_value_(arena_),
      page_rank_(arena_),
      page_base_sym_(arena_),
      page_success_(arena_),
      page_entry_count_(arena_),
      page_extra_dns_(arena_),
      page_extra_tls_(arena_) {}

void TimelineColumns::set_identity(std::uint64_t shard_index,
                                   std::uint64_t corpus_seed,
                                   std::uint64_t first_site) {
  shard_index_ = shard_index;
  corpus_seed_ = corpus_seed;
  first_site_ = first_site;
}

std::uint32_t TimelineColumns::intern(std::string_view name) {
  if (const std::uint32_t* id = symbol_index_.find(name)) return *id;
  const std::uint32_t id = static_cast<std::uint32_t>(symbol_names_.size());
  // analyze:allow(hot-transitive): the symbol table grows once per unique
  // hostname per shard, in the cold append_page wrapper — never inside the
  // HOT row appends; the reported hot chain is a by-name match of intern()
  // against the coalescing model's unrelated interner.
  symbol_names_.emplace_back(name);
  // analyze:allow(hot-transitive): same false chain as above — the index
  // grows once per unique hostname per shard in this cold wrapper only.
  symbol_index_.emplace(symbol_names_.back(), id);
  return id;
}

ORIGIN_HOT void TimelineColumns::append_page_row(const web::PageLoad& load,
                                                 std::uint32_t base_sym) {
  page_rank_.put(load.tranco_rank);
  page_base_sym_.put(base_sym);
  page_success_.put(load.success ? 1 : 0);
  page_entry_count_.put(static_cast<std::uint32_t>(load.entries.size()));
  page_extra_dns_.put(static_cast<std::uint64_t>(load.extra_dns_queries));
  page_extra_tls_.put(static_cast<std::uint64_t>(load.extra_tls_connections));
}

ORIGIN_HOT void TimelineColumns::append_entry_row(const web::HarEntry& entry,
                                                  std::uint32_t host_sym,
                                                  std::uint32_t issuer_sym) {
  entry_resource_index_.put(static_cast<std::int32_t>(entry.resource_index));
  entry_host_sym_.put(host_sym);
  entry_addr_family_.put(
      static_cast<std::uint8_t>(entry.server_address.family));
  entry_addr_value_.put(entry.server_address.value);
  entry_answer_count_.put(
      static_cast<std::uint16_t>(entry.dns_answer_set.size()));
  entry_asn_.put(entry.asn);
  entry_version_.put(static_cast<std::uint8_t>(entry.version));
  entry_mode_.put(static_cast<std::uint8_t>(entry.mode));
  entry_content_type_.put(static_cast<std::uint8_t>(entry.content_type));
  std::uint8_t flags = 0;
  if (entry.secure) flags |= kSnapshotFlagSecure;
  if (entry.new_dns_query) flags |= kSnapshotFlagNewDns;
  if (entry.new_tls_connection) flags |= kSnapshotFlagNewTls;
  if (entry.speculative_duplicate) flags |= kSnapshotFlagSpeculative;
  if (entry.status_421) flags |= kSnapshotFlagStatus421;
  entry_flags_.put(flags);
  entry_start_us_.put(entry.start.micros());
  entry_blocked_us_.put(entry.timings.blocked.count_micros());
  entry_dns_us_.put(entry.timings.dns.count_micros());
  entry_connect_us_.put(entry.timings.connect.count_micros());
  entry_ssl_us_.put(entry.timings.ssl.count_micros());
  entry_send_us_.put(entry.timings.send.count_micros());
  entry_wait_us_.put(entry.timings.wait.count_micros());
  entry_receive_us_.put(entry.timings.receive.count_micros());
  entry_connection_id_.put(entry.connection_id);
  entry_cert_serial_.put(entry.cert_serial);
  entry_issuer_sym_.put(issuer_sym);
  entry_san_count_.put(entry.cert_san_count);
  for (const dns::IpAddress& address : entry.dns_answer_set) {
    answer_family_.put(static_cast<std::uint8_t>(address.family));
    answer_value_.put(address.value);
  }
}

void TimelineColumns::append_page(const web::PageLoad& load) {
  append_page_row(load, intern(load.base_hostname));
  for (const web::HarEntry& entry : load.entries) {
    append_entry_row(entry, intern(entry.hostname),
                     intern(entry.cert_issuer));
  }
}

void TimelineColumns::clear() {
  entry_resource_index_.clear();
  entry_host_sym_.clear();
  entry_addr_family_.clear();
  entry_addr_value_.clear();
  entry_answer_count_.clear();
  entry_asn_.clear();
  entry_version_.clear();
  entry_mode_.clear();
  entry_content_type_.clear();
  entry_flags_.clear();
  entry_start_us_.clear();
  entry_blocked_us_.clear();
  entry_dns_us_.clear();
  entry_connect_us_.clear();
  entry_ssl_us_.clear();
  entry_send_us_.clear();
  entry_wait_us_.clear();
  entry_receive_us_.clear();
  entry_connection_id_.clear();
  entry_cert_serial_.clear();
  entry_issuer_sym_.clear();
  entry_san_count_.clear();
  answer_family_.clear();
  answer_value_.clear();
  page_rank_.clear();
  page_base_sym_.clear();
  page_success_.clear();
  page_entry_count_.clear();
  page_extra_dns_.clear();
  page_extra_tls_.clear();
  symbol_names_.clear();
  symbol_index_.clear();
  arena_.reset();
}

ShardMeta TimelineColumns::meta() const {
  ShardMeta meta;
  meta.shard_index = shard_index_;
  meta.corpus_seed = corpus_seed_;
  meta.first_site = first_site_;
  meta.pages = page_rank_.size();
  meta.entries = entry_start_us_.size();
  meta.answers = answer_value_.size();
  meta.symbols = static_cast<std::uint32_t>(symbol_names_.size());
  return meta;
}

// --- StreamingCorpus ------------------------------------------------------

StreamingCorpus::StreamingCorpus(Corpus& corpus, StreamingOptions options)
    : corpus_(corpus), options_(std::move(options)) {
  if (!options_.resume) {
    const char* env = std::getenv("ORIGIN_RESUME");
    options_.resume = env != nullptr && env[0] == '1';
  }
  build_eligible();
}

void StreamingCorpus::build_eligible() {
  // Mirrors collect(): the work list is decided from corpus state alone.
  for (std::size_t i = 0; i < corpus_.sites().size(); ++i) {
    if (!corpus_.sites()[i].crawl_succeeded) continue;
    if (options_.max_sites != 0 && eligible_.size() >= options_.max_sites) {
      break;
    }
    eligible_.push_back(i);
  }
}

std::size_t StreamingCorpus::resolved_per_shard() const {
  std::size_t per_shard = options_.sites_per_shard;
  if (options_.shard_count != 0) {
    per_shard = (eligible_.size() + options_.shard_count - 1) /
                options_.shard_count;
  }
  return std::max<std::size_t>(per_shard, 1);
}

std::size_t StreamingCorpus::shard_site_count(std::size_t first_site) const {
  return std::min(resolved_per_shard(), eligible_.size() - first_site);
}

std::uint64_t StreamingCorpus::config_digest() const {
  // Everything here changes the bytes of every shard, so a mismatch means
  // nothing in the old spill directory is reusable. Environment shape
  // (link/handshake/resolver params) folds in through the corpus seed,
  // which fixes the synthesized world those models act on.
  util::ByteWriter writer(128);
  writer.u64(corpus_.options().seed);
  writer.u64(eligible_.size());
  writer.u64(resolved_per_shard());
  const browser::LoaderOptions& loader = options_.loader;
  writer.raw(loader.policy);
  writer.u64(loader.seed);
  writer.u64(loader.first_connection_id);
  writer.u64(std::bit_cast<std::uint64_t>(loader.happy_eyeballs_extra_dns));
  writer.u64(std::bit_cast<std::uint64_t>(loader.speculative_extra_connection));
  writer.u64(std::bit_cast<std::uint64_t>(loader.misdirected_rate));
  writer.u8(loader.fresh_session ? 1 : 0);
  writer.raw(loader.network_tag);
  return util::crc64(writer.bytes());
}

util::Status StreamingCorpus::prepare_spill_dir(
    util::FlatMap<std::uint64_t, ManifestRecord>* completed) {
  const std::string& dir = options_.spill_dir;
  const std::string quarantine_dir = dir + "/quarantine";

  // Torn temps first: anything `.tmp` is a crashed write that never
  // committed; the resume logic must never see one.
  auto swept = util::sweep_stale_temps(dir);
  if (!swept.ok()) return swept.error();
  recovery_.stale_temps_swept += swept.value();
  auto swept_quarantine = util::sweep_stale_temps(quarantine_dir);
  if (!swept_quarantine.ok()) return swept_quarantine.error();
  recovery_.stale_temps_swept += swept_quarantine.value();

  const std::size_t per_shard = resolved_per_shard();
  ManifestHeader expected;
  expected.config_digest = config_digest();
  expected.corpus_seed = corpus_.options().seed;
  expected.eligible_sites = eligible_.size();
  expected.sites_per_shard = per_shard;
  expected.shard_total = (eligible_.size() + per_shard - 1) / per_shard;

  const std::string journal = manifest_file_path(dir);
  bool replayed = false;
  if (options_.resume) {
    auto bytes = util::read_file(journal);
    if (bytes.ok()) {
      auto parsed = read_manifest(bytes.value());
      if (parsed.ok() && parsed->header == expected) {
        replayed = true;
        recovery_.manifest_records_replayed += parsed->records.size();
        recovery_.manifest_tail_bytes_dropped += parsed->tail_bytes_dropped;
        *completed = parsed->latest_records();
        if (parsed->tail_bytes_dropped != 0) {
          // Rewrite the journal to its validated prefix (rename-commit) so
          // new appends start on a record boundary, not after a torn frame.
          const std::span<const std::uint8_t> prefix(
              bytes.value().data(),
              bytes.value().size() - parsed->tail_bytes_dropped);
          auto truncated = util::durable_write_file(journal, prefix);
          if (!truncated.ok()) return truncated;
        }
      } else {
        // Corrupt header or a different run configuration: nothing in the
        // journal is trustworthy for this run. Start fresh.
        recovery_.manifest_resets += 1;
      }
    }
  }

  // Sweep shard files the journal does not vouch for: everything on a
  // fresh start, and on resume any file outside the replayed record set
  // (e.g. a post-rename orphan whose manifest append never ran).
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::uint64_t index = 0;
    if (!parse_shard_filename(entry.path().filename().string(), &index)) {
      continue;
    }
    if (replayed && completed->find(index) != nullptr &&
        index < expected.shard_total) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec)) {
      recovery_.stale_shards_removed += 1;
    }
  }
  if (!replayed) {
    // Quarantined evidence from older runs goes too; a fresh run starts
    // from a clean directory.
    recovery_.stale_shards_removed += sweep_shard_files(quarantine_dir);
    auto header_written =
        util::durable_write_file(journal, encode_manifest_header(expected));
    if (!header_written.ok()) return header_written;
  }

  auto log = util::DurableLog::open(journal);
  if (!log.ok()) return log.error();
  manifest_log_ = std::move(log).value();
  return util::Status::ok_status();
}

util::Result<util::Bytes> StreamingCorpus::build_shard(ShardInfo& info,
                                                       util::ThreadPool& pool) {
  const std::size_t count = shard_site_count(info.first_site);

  // Parallel load: per-site seeds and connection-id blocks come from the
  // site index alone, so worker scheduling cannot leak into the pages.
  std::vector<web::PageLoad> loads(count);
  pool.parallel_for_index(count, [&](std::size_t k) {
    const std::size_t site_index = eligible_[info.first_site + k];
    browser::PageLoader loader(
        corpus_.env(), loader_options_for_site(options_.loader, site_index));
    loads[k] = loader.load(corpus_.page_for_site(site_index));
  });
  if (util::crash::crash_point("generate.load")) {
    return util::make_error("corpus: crash injected at generate.load");
  }

  // Serial columnar append in site order (symbol ids are first-appearance
  // order, part of the canonical snapshot form).
  columns_.clear();
  columns_.set_identity(info.index, corpus_.options().seed, info.first_site);
  for (const web::PageLoad& load : loads) columns_.append_page(load);

  info.pages = columns_.page_count();
  info.entries = columns_.entry_count();
  util::Bytes encoded = encode_snapshot(columns_);
  if (util::crash::crash_point("generate.encode")) {
    return util::make_error("corpus: crash injected at generate.encode");
  }
  info.encoded_bytes = encoded.size();
  info.content_crc64 = util::crc64(encoded);
  return encoded;
}

util::Status StreamingCorpus::commit_shard(ShardInfo& info,
                                           std::span<const std::uint8_t> bytes) {
  info.path = shard_file_path(options_.spill_dir, info.index);
  // Data first (rename commits the bytes), fact second (the journal record
  // commits "this shard is done"). A crash between the two leaves an
  // unrecorded file that the next run sweeps and regenerates — never a
  // record pointing at missing or torn data.
  auto written = write_shard_file(info.path, bytes);
  if (!written.ok()) return written;
  if (util::crash::crash_point("manifest.append")) {
    return util::make_error("corpus: crash injected at manifest.append (" +
                            info.path + ")");
  }
  ManifestRecord record;
  record.shard_index = info.index;
  record.first_site = info.first_site;
  record.pages = info.pages;
  record.entries = info.entries;
  record.encoded_bytes = info.encoded_bytes;
  record.content_crc64 = info.content_crc64;
  return manifest_log_.append(encode_manifest_record(record));
}

util::Status StreamingCorpus::generate() {
  shards_.clear();
  const std::size_t per_shard = resolved_per_shard();
  const bool spilling = !options_.spill_dir.empty();
  util::FlatMap<std::uint64_t, ManifestRecord> completed;
  if (spilling) {
    auto prepared = prepare_spill_dir(&completed);
    if (!prepared.ok()) return prepared;
  }

  util::ThreadPool pool(options_.threads);
  for (std::size_t begin = 0; begin < eligible_.size(); begin += per_shard) {
    ShardInfo info;
    info.index = shards_.size();
    info.first_site = begin;

    if (spilling) {
      if (const ManifestRecord* record = completed.find(info.index)) {
        // Journaled shard: reuse it if the committed file is present with
        // the journaled size. Full CRC verification happens when analyze()
        // reads it back (a mismatch there quarantines and rebuilds), so
        // resume cost stays proportional to the *unfinished* work.
        const std::string path =
            shard_file_path(options_.spill_dir, info.index);
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        if (!ec && record->first_site == begin &&
            size == record->encoded_bytes) {
          info.pages = static_cast<std::size_t>(record->pages);
          info.entries = static_cast<std::size_t>(record->entries);
          info.encoded_bytes = static_cast<std::size_t>(record->encoded_bytes);
          info.content_crc64 = record->content_crc64;
          info.path = path;
          recovery_.shards_reused += 1;
          shards_.push_back(std::move(info));
          continue;
        }
        recovery_.shards_regenerated += 1;
      }
    }

    auto encoded = build_shard(info, pool);
    if (!encoded.ok()) return encoded.error();
    if (!spilling) {
      info.buffer = std::move(encoded).value();
    } else {
      auto committed = commit_shard(info, encoded.value());
      if (!committed.ok()) return committed;
    }
    shards_.push_back(std::move(info));
  }
  generated_ = true;
  return util::Status::ok_status();
}

util::Result<util::Bytes> StreamingCorpus::load_or_recover_shard(
    ShardInfo& shard, util::ThreadPool& pool) {
  auto read = read_shard_file(shard.path);
  if (read.ok() && util::crc64(read.value()) == shard.content_crc64) {
    return std::move(read).value();
  }
  // The journaled CRC does not match the bytes on disk (bit rot, a flipped
  // byte, a foreign file under the right name) — or the file vanished.
  // Move the evidence aside and rebuild the shard from its site range; the
  // regenerated bytes are deterministic, so the stream is unaffected.
  recovery_.shards_quarantined += 1;
  if (read.ok()) {
    auto quarantined = util::durable_write_file(
        quarantine_file_path(options_.spill_dir, shard.index), read.value());
    if (!quarantined.ok()) return quarantined.error();
  }
  auto rebuilt = build_shard(shard, pool);
  if (!rebuilt.ok()) return rebuilt.error();
  auto committed = commit_shard(shard, rebuilt.value());
  if (!committed.ok()) return committed.error();
  return std::move(rebuilt).value();
}

util::Result<StreamStats> StreamingCorpus::analyze() {
  if (!generated_) {
    return util::make_error("StreamingCorpus::analyze() before generate()");
  }
  // A resumed analyze restarts the sweep from shard 0; stateful observers
  // reset here so they see exactly one stream either way.
  if (options_.observer != nullptr) options_.observer->on_stream_restart();

  Aggregator agg;
  agg.stats.sites = eligible_.size();
  agg.stats.shards = shards_.size();

  model::CoalescingModel model(corpus_.env());
  util::ThreadPool pool(options_.threads);

  std::vector<web::PageLoad> pages;
  for (ShardInfo& shard : shards_) {
    util::Bytes file_bytes;
    std::span<const std::uint8_t> bytes;
    if (!shard.path.empty()) {
      auto loaded = load_or_recover_shard(shard, pool);
      if (!loaded.ok()) return loaded.error();
      file_bytes = std::move(loaded).value();
      bytes = file_bytes;
    } else {
      bytes = shard.buffer;
    }
    agg.stats.snapshot_bytes += bytes.size();

    auto reader = SnapshotReader::open(bytes);
    if (!reader.ok()) return reader.error();
    const std::size_t page_count =
        static_cast<std::size_t>(reader->meta().pages);

    pages.assign(page_count, web::PageLoad{});
    for (std::size_t i = 0; i < page_count; ++i) {
      reader.value().next_page(&pages[i]);
    }
    for (const web::PageLoad& page : pages) agg.measured(page);

    const auto analyses = model.analyze_batch(pages, options_.threads);
    for (const model::PageAnalysis& analysis : analyses) {
      agg.analyzed(analysis);
    }

    if (options_.observer != nullptr) {
      options_.observer->on_shard(pages, shard.first_site);
    }

    const auto reconstructed =
        model.reconstruct_batch(pages, analyses, "", options_.threads);
    for (const web::PageLoad& page : reconstructed) agg.reconstructed(page);

    if (util::crash::crash_point("analyze.shard")) {
      return util::make_error("corpus: crash injected at analyze.shard");
    }
  }

  // Deletion is deferred to here: until the whole sweep has succeeded the
  // spilled shards and the journal ARE the resume state. Only a complete
  // run may retire them.
  if (!options_.keep_shards) {
    for (ShardInfo& shard : shards_) {
      if (shard.path.empty()) continue;
      auto removed = remove_shard_file(shard.path);
      if (!removed.ok()) return removed.error();
      shard.path.clear();
    }
    if (manifest_log_.is_open()) {
      const std::string journal = manifest_log_.path();
      manifest_log_.close();
      auto removed = util::remove_file(journal);
      if (!removed.ok()) return removed.error();
    }
  }
  return agg.stats;
}

util::Result<StreamStats> StreamingCorpus::run() {
  auto generated = generate();
  if (!generated.ok()) return generated.error();
  return analyze();
}

// --- materialized reference path ------------------------------------------

util::Result<StreamStats> run_materialized(Corpus& corpus,
                                           const StreamingOptions& options) {
  CollectOptions collect_options;
  collect_options.loader = options.loader;
  collect_options.max_sites = options.max_sites;
  collect_options.threads = options.threads;

  // The seed's shape: the whole corpus resident as one vector of structs.
  std::vector<web::PageLoad> loads;
  dataset::collect(corpus, collect_options,
                   [&](const SiteInfo&, const web::PageLoad& load) {
                     loads.push_back(load);
                   });

  Aggregator agg;
  agg.stats.sites = loads.size();
  agg.stats.shards = 0;
  for (const web::PageLoad& load : loads) agg.measured(load);

  model::CoalescingModel model(corpus.env());
  const auto analyses = model.analyze_batch(loads, options.threads);
  for (const model::PageAnalysis& analysis : analyses) {
    agg.analyzed(analysis);
  }

  // One whole-corpus "shard": observer record order matches the streamed
  // path's shard-by-shard calls exactly.
  if (options.observer != nullptr) {
    options.observer->on_stream_restart();
    options.observer->on_shard(loads, 0);
  }

  const auto reconstructed =
      model.reconstruct_batch(loads, analyses, "", options.threads);
  for (const web::PageLoad& page : reconstructed) agg.reconstructed(page);

  return agg.stats;
}

}  // namespace origin::dataset
