// Synthetic Tranco-like corpus generator.
//
// Builds a serving world (Environment: services, DNS, certificates) plus a
// ranked list of websites whose structure is sampled from the catalog's
// paper-calibrated distributions. Pages are generated lazily and
// deterministically — `page_for_site(i)` always returns the same page for
// the same corpus seed — so corpus-scale experiments can stream page loads
// without holding 35M requests in memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "browser/environment.h"
#include "dataset/catalog.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "web/resource.h"

namespace origin::dataset {

struct CorpusOptions {
  // Number of ranked sites to synthesize. Ranks are spread uniformly over
  // the Tranco 500K range so Table 1's per-bucket structure holds at any
  // scale.
  std::size_t site_count = 20'000;
  std::uint64_t seed = 42;

  // --- world-shape knobs (defaults calibrated against the paper) ---------
  // Probability a site certificate's second SAN is a wildcard covering its
  // shards (drives how many sites need zero cert changes, Fig. 5).
  double wildcard_probability = 0.68;
  // Fraction of page requests that go to the site's own domain or shards.
  double first_party_fraction_mean = 0.42;
  // Mean/median ratio of per-page third-party destination counts.
  double third_party_services_median = 17.0;
  double third_party_services_sigma = 1.0;
  // Probability a multi-address service's DNS rotates answers (defeats
  // Chromium's connected-set match; §2.3).
  double dns_rotation_probability = 0.45;
  // Number of distinct long-tail third-party services in the world.
  std::size_t tail_service_count = 1'500;

  // Worker threads for the per-site sampling phase. 0 resolves via
  // ORIGIN_THREADS / hardware concurrency; 1 is the serial fallback. Any
  // value yields the bit-identical corpus: per-site RNGs are forked in a
  // serial prepass (forking mutates the parent stream, so it must happen in
  // index order) and certificate issuance is materialized serially in index
  // order after the parallel sampling.
  std::size_t threads = 1;
};

struct SiteInfo {
  std::uint64_t rank = 0;            // Tranco rank (1-based)
  std::string domain;                // registrable domain
  std::string provider;              // hosting organization
  bool crawl_succeeded = true;       // Table 1 success rates
  std::vector<std::string> shard_hostnames;
  // Third-party destinations this site's page draws from (chosen at corpus
  // build time so sample selection never needs page regeneration).
  std::vector<std::string> third_party_hosts;
  std::uint64_t page_seed = 0;
};

class Corpus {
 public:
  Corpus(CorpusOptions options);

  const CorpusOptions& options() const { return options_; }
  browser::Environment& env() { return env_; }
  const std::vector<SiteInfo>& sites() const { return sites_; }

  // Deterministically regenerates site i's page.
  web::Webpage page_for_site(std::size_t site_index) const;

  // All sites whose base page uses `hostname` as a subresource — the §5.1
  // sample-selection step (most-requesting domains for the third party).
  std::vector<std::size_t> sites_using(const std::string& hostname,
                                       std::size_t limit) const;

  // The site's own service (certificate owner).
  browser::Service* service_for_site(std::size_t site_index);
  const std::string& third_party_domain() const { return third_party_domain_; }

 private:
  struct Destination {
    std::string hostname;
    std::string organization;
    web::ContentType dominant_type = web::ContentType::kOther;
    web::RequestMode mode = web::RequestMode::kSubresource;
    double weight = 1.0;
    double sri_churn = 0.05;  // per-page chance of CORS/fetch usage
    web::HttpVersion version = web::HttpVersion::kH2;
    bool secure = true;
  };

  // One site's sampled state before the serial materialize step: everything
  // the per-site RNG determines, nothing that touches shared mutable state
  // (CA serial counters, the service registry). Drafting is the parallel
  // region; materializing stays serial and ordered.
  struct SiteDraft {
    SiteInfo site;
    browser::Service service;  // certificate filled at materialize time
    std::vector<std::string> sans;
    std::string issuer_name;
  };
  struct SiteWeights {
    std::vector<double> hosting;
    std::vector<double> popular;
    std::vector<double> tail;
  };

  void build_providers();
  void build_popular_services();
  void build_tail_services();
  void build_sites();
  SiteDraft draft_site(std::size_t index, origin::util::Rng site_rng,
                       const SiteWeights& weights) const;
  void materialize_site(SiteDraft draft);
  web::ContentType sample_content_type(origin::util::Rng& rng,
                                       const std::string& organization) const;
  std::size_t sample_san_count(origin::util::Rng& rng) const;

  CorpusOptions options_;
  mutable origin::util::Rng rng_;
  browser::Environment env_;
  std::vector<SiteInfo> sites_;
  std::vector<Destination> popular_destinations_;
  std::vector<Destination> tail_destinations_;
  // Immutable once build_providers() returns, so the parallel draft phase
  // reads it without synchronization. (Site -> service resolution needs no
  // side table: the environment's interned host index already maps each
  // site domain to the service registered for it.)
  util::FlatMap<std::string, std::vector<dns::IpAddress>> provider_pools_;
  std::string third_party_domain_ = "cdnjs.cloudflare.com";
};

}  // namespace origin::dataset
