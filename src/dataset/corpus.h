// Columnar (SoA) page-timeline storage and the out-of-core streaming
// corpus pipeline (DESIGN.md §14).
//
// The materialized pipeline holds every page as a vector<HarEntry> of
// structs — hostnames, DNS answer sets, and issuer strings inline — which
// caps corpora at what fits in RAM. TimelineColumns stores one *shard* of
// pages as struct-of-arrays instead: hostnames and issuers become per-shard
// SymbolIds, every timestamp/enum/flag lands in an arena-backed column
// (util::ArenaColumn — O(1) append, no element moves, capacity recycled
// across shards), and DNS answer sets flatten into a shared pool indexed by
// per-entry counts. A shard serializes to the bounded span-based snapshot
// format in dataset/snapshot.h and spills to disk, so a million-site corpus
// streams generate → analyze → reconstruct with only one shard's timelines
// resident at a time.
//
// Determinism contract (DESIGN.md §8): shard boundaries never change
// results. Page loads derive their RNG seed and connection-id block from
// the site index alone (loader_options_for_site, shared with the
// materialized collector), shards are analyzed in index order with the
// model's serial intern prepass per batch, and shard observers run
// serially in site order — so streamed outputs are byte-identical to the
// fully materialized path at any thread count and any shard size.
//
// Crash consistency (DESIGN.md §15): with a spill directory the pipeline
// is resumable. Every spilled shard is committed by durable rename
// (util/durable_file.h) and then journaled in an OCM1 manifest
// (dataset/manifest.h) keyed by a digest of the run configuration. A
// restarted run with StreamingOptions::resume (or ORIGIN_RESUME=1) sweeps
// torn temps, replays the journal, reuses every recorded shard whose file
// checks out, regenerates the rest from their site ranges, and produces
// StreamStats bit-identical to an uninterrupted run — recovery bookkeeping
// lives in the separate RecoveryStats so the golden digests stay equal.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "browser/page_loader.h"
#include "dataset/generator.h"
#include "dataset/manifest.h"
#include "util/arena.h"
#include "util/bytes.h"
#include "util/durable_file.h"
#include "util/flat_map.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "web/har.h"

namespace origin::dataset {

// Shard identity and row totals, carried in the snapshot header.
struct ShardMeta {
  std::uint64_t shard_index = 0;
  std::uint64_t corpus_seed = 0;
  std::uint64_t first_site = 0;  // first eligible-site ordinal in the shard
  std::uint64_t pages = 0;
  std::uint64_t entries = 0;
  std::uint64_t answers = 0;   // flattened DNS answer-set rows
  std::uint32_t symbols = 0;

  bool operator==(const ShardMeta&) const = default;
};

// One shard of page timelines in columnar form. Append-only between
// clear() calls; not thread-safe (owned by the serial shard-append loop).
class TimelineColumns {
 public:
  TimelineColumns();

  void set_identity(std::uint64_t shard_index, std::uint64_t corpus_seed,
                    std::uint64_t first_site);
  void append_page(const web::PageLoad& load);
  void clear();  // drops rows + symbols, keeps arena capacity

  ShardMeta meta() const;
  std::size_t page_count() const { return page_rank_.size(); }
  std::size_t entry_count() const { return entry_start_us_.size(); }
  std::size_t symbol_count() const { return symbol_names_.size(); }
  std::size_t arena_reserved_bytes() const { return arena_.reserved_bytes(); }

  std::uint32_t intern(std::string_view name);
  std::string_view symbol(std::uint32_t id) const { return symbol_names_[id]; }

 private:
  friend util::Bytes encode_snapshot(const TimelineColumns& columns);

  // The ORIGIN_HOT numeric row appends; symbol interning stays in the
  // (cold, allocating) append_page wrapper.
  void append_entry_row(const web::HarEntry& entry, std::uint32_t host_sym,
                        std::uint32_t issuer_sym);
  void append_page_row(const web::PageLoad& load, std::uint32_t base_sym);

  util::Arena arena_;

  // --- entry columns (one row per HarEntry) -----------------------------
  util::ArenaColumn<std::int32_t> entry_resource_index_;
  util::ArenaColumn<std::uint32_t> entry_host_sym_;
  util::ArenaColumn<std::uint8_t> entry_addr_family_;
  util::ArenaColumn<std::uint64_t> entry_addr_value_;
  util::ArenaColumn<std::uint16_t> entry_answer_count_;
  util::ArenaColumn<std::uint32_t> entry_asn_;
  util::ArenaColumn<std::uint8_t> entry_version_;
  util::ArenaColumn<std::uint8_t> entry_mode_;
  util::ArenaColumn<std::uint8_t> entry_content_type_;
  util::ArenaColumn<std::uint8_t> entry_flags_;
  util::ArenaColumn<std::int64_t> entry_start_us_;
  util::ArenaColumn<std::int64_t> entry_blocked_us_;
  util::ArenaColumn<std::int64_t> entry_dns_us_;
  util::ArenaColumn<std::int64_t> entry_connect_us_;
  util::ArenaColumn<std::int64_t> entry_ssl_us_;
  util::ArenaColumn<std::int64_t> entry_send_us_;
  util::ArenaColumn<std::int64_t> entry_wait_us_;
  util::ArenaColumn<std::int64_t> entry_receive_us_;
  util::ArenaColumn<std::uint64_t> entry_connection_id_;
  util::ArenaColumn<std::uint64_t> entry_cert_serial_;
  util::ArenaColumn<std::uint32_t> entry_issuer_sym_;
  util::ArenaColumn<std::int64_t> entry_san_count_;

  // --- flattened DNS answer pool ----------------------------------------
  util::ArenaColumn<std::uint8_t> answer_family_;
  util::ArenaColumn<std::uint64_t> answer_value_;

  // --- page columns (one row per PageLoad) ------------------------------
  util::ArenaColumn<std::uint64_t> page_rank_;
  util::ArenaColumn<std::uint32_t> page_base_sym_;
  util::ArenaColumn<std::uint8_t> page_success_;
  util::ArenaColumn<std::uint32_t> page_entry_count_;
  util::ArenaColumn<std::uint64_t> page_extra_dns_;
  util::ArenaColumn<std::uint64_t> page_extra_tls_;

  // Per-shard symbol table: id = first-appearance order. The deque keeps
  // views stable; the index map supports heterogeneous string_view lookup.
  std::deque<std::string> symbol_names_;
  util::FlatMap<std::string_view, std::uint32_t> symbol_index_;

  std::uint64_t shard_index_ = 0;
  std::uint64_t corpus_seed_ = 0;
  std::uint64_t first_site_ = 0;
};

// --- streaming pipeline ---------------------------------------------------

// Serial per-shard hook: analyze() calls on_shard() once per shard, in
// shard (site) order, right after the shard's pages are decoded. This is
// how layer-4 siblings ride the streamed replay without dataset depending
// on them — measure's passive pipeline plugs in via
// measure::PassiveShardObserver (measure/stream.h).
class ShardObserver {
 public:
  virtual ~ShardObserver() = default;
  // `pages` holds the shard's decoded loads in site order; `first_ordinal`
  // is the eligible-site ordinal of pages[0].
  virtual void on_shard(const std::vector<web::PageLoad>& pages,
                        std::size_t first_ordinal) = 0;
  // Called at the start of every analyze() sweep, before any on_shard().
  // Stateful observers must reset here so a crashed-and-resumed analyze
  // (which restarts the sweep from shard 0) observes exactly one stream.
  virtual void on_stream_restart() {}
};

struct StreamingOptions {
  // Shard granularity: sites per shard, or an explicit shard count
  // (shard_count != 0 wins and divides the eligible sites evenly).
  std::size_t sites_per_shard = 4'096;
  std::size_t shard_count = 0;
  // Worker threads for the per-shard load and model batches (0 resolves via
  // ORIGIN_THREADS; 1 = serial fallback). Any value is bit-identical.
  std::size_t threads = 1;
  // Load at most this many eligible sites; 0 = all.
  std::size_t max_sites = 0;
  // Spill directory for encoded shard snapshots; empty keeps the encoded
  // buffers in memory (still columnar, still one-shard-resident decode).
  std::string spill_dir;
  // Leave spilled shard files on disk after analyze() consumes them.
  bool keep_shards = false;
  // Resume from the spill directory's OCM1 manifest if one is present and
  // its config digest matches this run (ORIGIN_RESUME=1 sets this too).
  // Without resume a stale manifest and its shards are swept and the run
  // starts fresh; either way the outputs are bit-identical.
  bool resume = false;
  browser::LoaderOptions loader;
  // Optional per-shard hook (not owned); see ShardObserver.
  ShardObserver* observer = nullptr;
};

struct ShardInfo {
  std::size_t index = 0;
  std::size_t first_site = 0;  // ordinal into the eligible-site list
  std::size_t pages = 0;
  std::size_t entries = 0;
  std::size_t encoded_bytes = 0;
  std::uint64_t content_crc64 = 0;  // CRC-64/XZ of the encoded snapshot
  std::string path;    // spill file; empty when held in memory
  util::Bytes buffer;  // encoded snapshot; empty when spilled
};

// What recovery did on this run. Deliberately NOT part of StreamStats: a
// resumed run must produce bit-identical StreamStats to an uninterrupted
// one, while these counters describe the (run-specific) path taken there.
struct RecoveryStats {
  std::size_t stale_temps_swept = 0;      // torn `.tmp` files deleted
  std::size_t stale_shards_removed = 0;   // unrecorded/foreign shard files
  std::size_t manifest_records_replayed = 0;
  std::uint64_t manifest_tail_bytes_dropped = 0;  // torn journal tail
  std::size_t manifest_resets = 0;   // journal rejected (config/corruption)
  std::size_t shards_reused = 0;     // journaled shards skipped, not rebuilt
  std::size_t shards_regenerated = 0;  // journaled but rebuilt (bad file)
  std::size_t shards_quarantined = 0;  // corrupt files moved aside
};

// Aggregates of one full generate → analyze → reconstruct sweep. The two
// digests chain FNV-1a over the serialized HAR of every measured
// (post-snapshot-round-trip) and reconstructed page in site order — equal
// digests mean byte-identical pages, the golden equality the tests and
// bench gate on.
struct StreamStats {
  std::size_t sites = 0;
  std::size_t pages = 0;
  std::size_t entries = 0;
  std::size_t shards = 0;
  std::uint64_t snapshot_bytes = 0;

  std::uint64_t measured_digest = 0;
  std::uint64_t reconstructed_digest = 0;

  // §4.2 aggregate counts (Figure 3 numerators).
  std::uint64_t measured_dns = 0;
  std::uint64_t measured_tls = 0;
  std::uint64_t measured_validations = 0;
  std::uint64_t ideal_origin_dns = 0;
  std::uint64_t ideal_origin_tls = 0;
  std::uint64_t ideal_origin_validations = 0;
  std::uint64_t ideal_ip_dns = 0;
  std::uint64_t ideal_ip_tls = 0;

  // Figure 9 numerators: page-load-time sums, microseconds.
  std::int64_t measured_plt_us = 0;
  std::int64_t reconstructed_plt_us = 0;
};

// Out-of-core generate → analyze → reconstruct over a Corpus. generate()
// loads pages shard-by-shard on the thread pool, appends them into the
// reused TimelineColumns, encodes each shard, and spills it; analyze()
// streams the shards back in index order through the coalescing model and
// any registered ShardObserver with one shard resident at a time.
class StreamingCorpus {
 public:
  StreamingCorpus(Corpus& corpus, StreamingOptions options);

  [[nodiscard]] util::Status generate();
  [[nodiscard]] util::Result<StreamStats> analyze();
  [[nodiscard]] util::Result<StreamStats> run();  // generate() + analyze()

  const std::vector<ShardInfo>& shards() const { return shards_; }
  std::size_t eligible_sites() const { return eligible_.size(); }
  const RecoveryStats& recovery() const { return recovery_; }
  // Digest of everything that must match for a manifest to be resumable:
  // corpus seed, eligible-site count, resolved shard plan, loader config.
  // Thread count is deliberately excluded — resuming at a different thread
  // count is valid and bit-identical (DESIGN.md §8).
  std::uint64_t config_digest() const;

 private:
  void build_eligible();
  std::size_t resolved_per_shard() const;
  std::size_t shard_site_count(std::size_t first_site) const;
  // Sweeps temps/stale shards, replays or resets the manifest journal, and
  // fills `completed` with the last-wins reusable records.
  [[nodiscard]] util::Status prepare_spill_dir(
      util::FlatMap<std::uint64_t, ManifestRecord>* completed);
  // Loads the shard's site range, encodes it, and fills info's row totals
  // and content CRC. Returns the encoded snapshot.
  [[nodiscard]] util::Result<util::Bytes> build_shard(
      ShardInfo& info, util::ThreadPool& pool);
  // Durably writes the shard file, then journals it (write ordering:
  // rename commits the data, the manifest record commits the fact).
  [[nodiscard]] util::Status commit_shard(ShardInfo& info,
                                          std::span<const std::uint8_t> bytes);
  // Reads a spilled shard, verifying its journaled CRC; on mismatch moves
  // the bytes to quarantine and rebuilds the shard from its site range.
  [[nodiscard]] util::Result<util::Bytes> load_or_recover_shard(
      ShardInfo& shard, util::ThreadPool& pool);

  Corpus& corpus_;
  StreamingOptions options_;
  std::vector<std::size_t> eligible_;  // site indices, crawl-succeeded only
  std::vector<ShardInfo> shards_;
  TimelineColumns columns_;  // reused across shards (arena recycling)
  util::DurableLog manifest_log_;
  RecoveryStats recovery_;
  bool generated_ = false;
};

// The seed's fully materialized path over the same options: every PageLoad
// retained, whole-corpus model batches, whole-corpus passive aggregation.
// Produces the same StreamStats (bit-identical digests) at any thread
// count; the golden comparator for tests, bench_perf_corpus, and the
// EXPERIMENTS.md RSS/wall-clock comparison.
[[nodiscard]] util::Result<StreamStats> run_materialized(
    Corpus& corpus, const StreamingOptions& options);

}  // namespace origin::dataset
