#include "dataset/generator.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "util/check.h"
#include "util/flat_map.h"
#include "util/thread_pool.h"

namespace origin::dataset {

using browser::Service;
using dns::IpAddress;
using origin::util::Duration;
using origin::util::Rng;
using origin::util::SimTime;

namespace {

constexpr std::uint64_t kTrancoRange = 500'000;

// Shard subdomain labels used by sharded sites.
constexpr const char* kShardLabels[] = {"static", "img", "cdn", "assets",
                                        "media", "js"};

netsim::LinkParams cdn_link(Rng& rng) {
  netsim::LinkParams link;
  link.one_way =
      Duration::millis(std::clamp(rng.lognormal(std::log(55.0), 0.45), 8.0, 220.0));
  link.bandwidth_bytes_per_sec = 1.2e6;
  return link;
}

netsim::LinkParams tail_link(Rng& rng) {
  netsim::LinkParams link;
  link.one_way = Duration::millis(
      std::clamp(rng.lognormal(std::log(130.0), 0.65), 15.0, 700.0));
  link.bandwidth_bytes_per_sec = 3.0e5;
  return link;
}

}  // namespace

Corpus::Corpus(CorpusOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  build_providers();
  build_popular_services();
  build_tail_services();
  build_sites();
}

void Corpus::build_providers() {
  // CAs for every issuer in the catalog.
  for (const auto& issuer : issuers()) {
    env_.add_ca(issuer.name, issuer.max_san_entries);
  }
  // Shared anycast address pools per provider.
  std::uint32_t next_block = 0x0A00'0000;
  for (const auto& provider : providers()) {
    std::vector<IpAddress> pool;
    // Real CDN address estates are large: two arbitrary customer
    // configurations rarely share the exact same address, so ideal-IP
    // coalescing mostly merges hosts of the *same* deployment (the paper's
    // modest ~19%% TLS reduction for IP coalescing).
    const std::size_t pool_size = provider.is_cdn ? 4096 : 512;
    for (std::size_t i = 0; i < pool_size; ++i) {
      pool.push_back(IpAddress::v4(next_block + static_cast<std::uint32_t>(i)));
    }
    next_block += 0x0002'0000;
    provider_pools_[provider.organization] = std::move(pool);
  }
}

std::size_t Corpus::sample_san_count(Rng& rng) const {
  const auto& bins = san_count_distribution();
  std::vector<double> weights;
  weights.reserve(bins.size());
  for (const auto& bin : bins) weights.push_back(bin.weight);
  const auto& bin = bins[rng.weighted(weights)];
  if (bin.san_count >= 0) return static_cast<std::size_t>(bin.san_count);
  // Heavy tail above 10: bounded Pareto calibrated so ~0.9% of tail sites
  // exceed 250 SAN names (230 sites in the paper's 315,796).
  return static_cast<std::size_t>(rng.pareto(11.0, 2000.0, 1.52));
}

web::ContentType Corpus::sample_content_type(
    Rng& rng, const std::string& organization) const {
  const auto& types = content_types();
  std::vector<double> weights;
  weights.reserve(types.size());
  for (const auto& spec : types) {
    weights.push_back(spec.share *
                      provider_content_bias(organization, spec.type));
  }
  return types[rng.weighted(weights)].type;
}

void Corpus::build_popular_services() {
  Rng rng = rng_.fork(0x90901);
  for (const auto& host : popular_hosts()) {
    const auto* provider_spec = &providers().front();
    for (const auto& p : providers()) {
      if (p.organization == host.organization) provider_spec = &p;
    }
    Service service;
    service.name = "popular:" + host.hostname;
    service.asn = provider_spec->asn;
    service.provider = host.organization;
    // Three addresses from the provider pool, offset per host so distinct
    // popular hosts overlap partially (transitivity-friendly).
    const auto& pool = provider_pools_[host.organization];
    const std::size_t offset = rng.uniform(pool.size());
    for (std::size_t i = 0; i < 3; ++i) {
      service.addresses.push_back(pool[(offset + i) % pool.size()]);
    }
    service.served_hostnames = {host.hostname};
    auto* ca = env_.find_ca(provider_spec->ca_name);
    auto cert = ca->issue(host.hostname, {host.hostname},
                          SimTime::from_micros(0));
    service.certificate = std::make_shared<tls::Certificate>(*cert);
    service.server_think_ms = 10.0 + rng.uniform_double() * 30.0;
    service.link = cdn_link(rng);
    env_.add_service(std::move(service));

    Destination dest;
    dest.hostname = host.hostname;
    dest.organization = host.organization;
    dest.dominant_type = host.dominant_type;
    dest.mode = host.mode;
    dest.weight = host.request_share;
    dest.sri_churn = host.sri_churn;
    popular_destinations_.push_back(std::move(dest));
  }
  // Popular hosts get sliding-window DNS answers: high-traffic operators
  // load-balance aggressively (§2.3).
  for (const auto& host : popular_hosts()) {
    if (auto* zone = env_.dns().find_zone_for(host.hostname)) {
      zone->set_policy(host.hostname, dns::AnswerPolicy::kSubset);
    }
  }
}

void Corpus::build_tail_services() {
  Rng rng = rng_.fork(0x90902);
  // Tail third-party services are distributed over providers weighted by
  // request share — this is what pushes Google/Cloudflare/Amazon to their
  // Table 2 request shares beyond the Table 7 head.
  std::vector<double> provider_weights;
  for (const auto& provider : providers()) {
    provider_weights.push_back(provider.request_share);
  }
  for (std::size_t i = 0; i < options_.tail_service_count; ++i) {
    const auto& provider = providers()[rng.weighted(provider_weights)];
    Service service;
    const std::string hostname =
        "t" + std::to_string(i) + ".thirdparty" + std::to_string(i % 600) +
        ".net";
    service.name = "tail:" + hostname;
    service.provider = provider.organization;
    if (provider.asn != 0) {
      service.asn = provider.asn;
      const auto& pool = provider_pools_[provider.organization];
      const std::size_t offset = rng.uniform(pool.size());
      for (std::size_t j = 0; j < 2; ++j) {
        service.addresses.push_back(pool[(offset + j) % pool.size()]);
      }
      service.link = cdn_link(rng);
    } else {
      // Long-tail hosting: its own small AS and address.
      service.asn = 60'000 + static_cast<std::uint32_t>(i % 2'000);
      service.addresses.push_back(
          IpAddress::v4(0xC000'0000 + static_cast<std::uint32_t>(i)));
      service.link = tail_link(rng);
    }
    service.served_hostnames = {hostname};
    auto* ca = env_.find_ca(provider.ca_name);
    auto cert = ca->issue(hostname, {hostname}, SimTime::from_micros(0));
    service.certificate = std::make_shared<tls::Certificate>(*cert);
    service.server_think_ms = 40.0 + rng.uniform_double() * 200.0;

    Destination dest;
    dest.hostname = hostname;
    dest.organization = provider.organization;
    dest.dominant_type = sample_content_type(rng, provider.organization);
    const double mode_draw = rng.uniform_double();
    dest.mode = mode_draw < 0.08   ? web::RequestMode::kFetchApi
                : mode_draw < 0.13 ? web::RequestMode::kCorsAnonymous
                                   : web::RequestMode::kSubresource;
    dest.weight = 0.3 + rng.uniform_double();
    // Protocol: most tails run h2; a visible share is stuck on h1.1
    // (Table 3's 19%); a sliver is plaintext (Table 3: 1.47% insecure).
    const double proto_draw = rng.uniform_double();
    if (proto_draw < 0.035) {
      dest.secure = false;
      dest.version = web::HttpVersion::kH11;
    } else if (proto_draw < 0.26) {
      dest.version = web::HttpVersion::kH11;
    } else if (proto_draw < 0.39) {
      dest.version = web::HttpVersion::kH3;
    }
    env_.add_service(std::move(service));
    tail_destinations_.push_back(std::move(dest));
  }
}

void Corpus::build_sites() {
  Rng rng = rng_.fork(0x90903);
  SiteWeights weights;
  for (const auto& provider : providers()) {
    weights.hosting.push_back(provider.hosting_share);
  }
  for (const auto& dest : popular_destinations_) {
    weights.popular.push_back(dest.weight);
  }
  for (const auto& dest : tail_destinations_) {
    weights.tail.push_back(dest.weight);
  }

  const std::size_t n = options_.site_count;

  // Phase 1 (serial): hoist per-site RNGs into an immutable prepass.
  // Rng::fork advances the parent stream, so the forks must happen here, in
  // index order — never inside the parallel region, where completion order
  // would perturb every downstream draw.
  std::vector<Rng> site_rngs;
  site_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) site_rngs.push_back(rng.fork(i));

  // Phase 2 (parallel): sample every site from its own RNG copy. draft_site
  // is const and touches no shared mutable state, so any thread interleaving
  // produces the same drafts.
  std::vector<SiteDraft> drafts(n);
  origin::util::ThreadPool pool(options_.threads);
  pool.parallel_for_index(n, [&](std::size_t i) {
    drafts[i] = draft_site(i, site_rngs[i], weights);
  });

  // Phase 3 (serial): materialize in index order. Certificate issuance
  // consumes per-CA serial counters and service registration appends to the
  // environment, so ordering here is what keeps the corpus bit-identical to
  // the serial build.
  sites_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) materialize_site(std::move(drafts[i]));
}

Corpus::SiteDraft Corpus::draft_site(std::size_t i, Rng site_rng,
                                     const SiteWeights& weights) const {
  SiteDraft draft;
  SiteInfo& site = draft.site;
  site.rank = 1 + (static_cast<std::uint64_t>(i) * kTrancoRange) /
                  std::max<std::size_t>(options_.site_count, 1);
  site.domain = "site" + std::to_string(i) + ".example-" +
                std::to_string(i % 7) + ".com";
  site.page_seed = site_rng.next();
  const auto& bucket = bucket_for_rank(site.rank);
  site.crawl_succeeded = site_rng.bernoulli(bucket.success_rate);

  // Certificate shape is sampled first: SAN-less (CN-only) certificates
  // belong to small self-contained deployments — in the paper 99.98% of
  // them needed no changes because they serve everything themselves.
  const std::size_t target = sample_san_count(site_rng);

  const auto& provider =
      target == 0 ? providers().back()  // Long Tail Hosting
                  : providers()[site_rng.weighted(weights.hosting)];
  site.provider = provider.organization;

  // Shards: sharded deployment is the HTTP/1.1 legacy the paper studies.
  const std::size_t shard_count = target == 0 ? 0 : site_rng.uniform(5);
  for (std::size_t s = 0; s < shard_count; ++s) {
    site.shard_hostnames.push_back(std::string(kShardLabels[s]) + "." +
                                   site.domain);
  }
  // A small population shards aggressively across a sibling CDN domain
  // (image/asset farms). A wildcard on the main domain cannot cover
  // these, so they are the paper's ~1% of sites needing >78 additions.
  if (target != 0 && site_rng.bernoulli(0.025)) {
    const std::size_t farm = 25 + site_rng.uniform(160);
    const std::string farm_domain =
        "site" + std::to_string(i) + "-cdn.example.net";
    for (std::size_t s = 0; s < farm; ++s) {
      site.shard_hostnames.push_back("s" + std::to_string(s) + "." +
                                     farm_domain);
    }
  }

  // Third-party destination set (drives Figure 1's unique-AS shape).
  std::size_t third_party_count;
  const double mix = target == 0 ? 0.0 : site_rng.uniform_double();
  if (mix < 0.065) {
    third_party_count = 0;  // fully self-contained page
  } else if (mix < 0.205) {
    third_party_count = 1;
  } else {
    third_party_count = static_cast<std::size_t>(std::clamp(
        site_rng.lognormal(std::log(options_.third_party_services_median),
                           options_.third_party_services_sigma),
        2.0, 80.0));
  }
  // Views into the destination tables, which are immutable by the time
  // draft_site runs (built before build_sites).
  util::FlatSet<std::string_view> chosen;
  while (chosen.size() < third_party_count &&
         chosen.size() <
             popular_destinations_.size() + tail_destinations_.size()) {
    const bool popular = site_rng.bernoulli(0.72);
    const Destination& dest =
        popular
            ? popular_destinations_[site_rng.weighted(weights.popular)]
            : tail_destinations_[site_rng.weighted(weights.tail)];
    if (chosen.insert(dest.hostname)) {
      site.third_party_hosts.push_back(dest.hostname);
    }
  }

  // The site's own service.
  Service& service = draft.service;
  service.name = "site:" + site.domain;
  service.provider = provider.organization;
  std::vector<std::string> hostnames = {site.domain};
  for (const auto& shard : site.shard_hostnames) hostnames.push_back(shard);
  if (provider.asn != 0) {
    service.asn = provider.asn;
    const auto* pool_entry = provider_pools_.find(provider.organization);
    ORIGIN_CHECK(pool_entry != nullptr, "draft_site: unknown provider pool");
    const auto& pool = *pool_entry;
    const std::size_t offset = site_rng.uniform(pool.size());
    for (std::size_t j = 0; j < 5; ++j) {
      service.addresses.push_back(pool[(offset + j) % pool.size()]);
    }
    service.link = cdn_link(site_rng);
  } else {
    service.asn = 40'000 + static_cast<std::uint32_t>(i % 13'000);
    service.addresses.push_back(
        IpAddress::v4(0xD000'0000 + static_cast<std::uint32_t>(i)));
    service.addresses.push_back(
        IpAddress::v4(0xD800'0000 + static_cast<std::uint32_t>(i)));
    service.link = tail_link(site_rng);
  }
  service.served_hostnames = {hostnames.begin(), hostnames.end()};
  service.server_think_ms = 15.0 + site_rng.uniform_double() * 110.0;

  // Certificate: SAN list built to the sampled target size.
  std::vector<std::string>& sans = draft.sans;
  const bool wildcard =
      target >= 2 && site_rng.bernoulli(options_.wildcard_probability);
  if (target >= 1) sans.push_back(site.domain);
  if (target >= 2) {
    sans.push_back(wildcard ? "*." + site.domain : "www." + site.domain);
  }
  if (!wildcard) {
    for (const auto& shard : site.shard_hostnames) {
      if (sans.size() >= target) break;
      sans.push_back(shard);
    }
  }
  // Filler: unrelated customer names on shared certificates (the long
  // SAN lists the paper observes on CDN certs).
  std::size_t filler = 0;
  while (sans.size() < target) {
    sans.push_back("customer" + std::to_string(filler++) + "-site" +
                   std::to_string(i) + ".shared-pool.example");
  }
  // Issuer: the provider's house CA usually; otherwise by Table 4 share.
  draft.issuer_name = provider.ca_name;
  if (!site_rng.bernoulli(0.70)) {
    std::vector<double> issuer_weights;
    for (const auto& issuer : issuers()) {
      issuer_weights.push_back(issuer.validation_share);
    }
    draft.issuer_name = issuers()[site_rng.weighted(issuer_weights)].name;
  }
  return draft;
}

void Corpus::materialize_site(SiteDraft draft) {
  Service& service = draft.service;
  auto* ca = env_.find_ca(draft.issuer_name);
  if (draft.sans.size() > ca->max_san_entries()) {
    // Only a few CAs issue very large certificates (§6.5).
    ca = env_.find_ca("Sectigo RSA DV Secure Server CA");
  }
  auto cert =
      ca->issue(draft.site.domain, draft.sans, SimTime::from_micros(0));
  service.certificate = std::make_shared<tls::Certificate>(
      cert.ok() ? *cert
                : *env_.default_ca().issue(draft.site.domain,
                                           {draft.site.domain},
                                           SimTime::from_micros(0)));

  // The environment's interned host index now maps draft.site.domain to
  // this service (site domains are unique, so first-wins is exact);
  // service_for_site resolves through it instead of a side table.
  env_.add_service(std::move(service));

  sites_.push_back(std::move(draft.site));
}

web::Webpage Corpus::page_for_site(std::size_t site_index) const {
  const SiteInfo& site = sites_.at(site_index);
  Rng rng(site.page_seed);
  const auto& bucket = bucket_for_rank(site.rank);

  web::Webpage page;
  page.tranco_rank = site.rank;
  page.base_hostname = site.domain;

  // Destination lookup for this page.
  std::vector<const Destination*> dests;
  std::vector<double> dest_weights;
  for (const auto& host : site.third_party_hosts) {
    for (const auto& dest : popular_destinations_) {
      if (dest.hostname == host) {
        dests.push_back(&dest);
        dest_weights.push_back(dest.weight * 30.0);  // head hosts are hot
      }
    }
    for (const auto& dest : tail_destinations_) {
      if (dest.hostname == host) {
        dests.push_back(&dest);
        dest_weights.push_back(dest.weight);
      }
    }
  }

  const auto& type_specs = content_types();
  auto size_for = [&](web::ContentType type) -> std::size_t {
    for (const auto& spec : type_specs) {
      if (spec.type == type) {
        return static_cast<std::size_t>(std::clamp(
            rng.lognormal(std::log(static_cast<double>(spec.typical_bytes)),
                          spec.size_sigma),
            300.0, 3.0e6));
      }
    }
    return 8'000;
  };

  // Base document.
  web::Resource base;
  base.hostname = site.domain;
  base.path = "/";
  base.content_type = web::ContentType::kHtml;
  base.mode = web::RequestMode::kNavigation;
  base.size_bytes = size_for(web::ContentType::kHtml);
  base.discovery_cpu_ms = 0.0;
  page.resources.push_back(std::move(base));

  // Shard farms (image/asset-heavy deployments) load far more resources
  // and spread them across their many shard hostnames.
  const bool shard_farm = site.shard_hostnames.size() > 15;
  auto subresource_count = static_cast<std::size_t>(std::clamp(
      rng.lognormal(std::log(bucket.median_requests), 0.82), 3.0, 600.0));
  if (shard_farm) {
    subresource_count = std::min<std::size_t>(subresource_count * 3, 600);
  }
  const double first_party_fraction =
      shard_farm ? 0.6
                 : std::clamp(
                       rng.normal(options_.first_party_fraction_mean, 0.15),
                       0.05, 0.95);
  std::size_t shard_cursor = 0;

  // Per-host request-mode overrides: a developer who adds
  // crossorigin="anonymous" (SRI) or fetch() to a third-party include does
  // so for every use of that host on the page (§5.3). Hostnames are unique
  // within dests, so the override is indexed by destination rather than
  // keyed by hostname string; the RNG draw order is unchanged.
  std::vector<web::RequestMode> dest_modes(dests.size());
  for (std::size_t d = 0; d < dests.size(); ++d) {
    const Destination* dest = dests[d];
    web::RequestMode mode = dest->mode;
    if (mode == web::RequestMode::kSubresource) {
      const double churn = rng.uniform_double();
      if (churn < dest->sri_churn) {
        mode = rng.bernoulli(0.7) ? web::RequestMode::kCorsAnonymous
                                  : web::RequestMode::kFetchApi;
      }
    }
    dest_modes[d] = mode;
  }
  // The site's own protocol is a deployment property, fixed per site.
  const bool site_h11 =
      site.provider == "Long Tail Hosting" && rng.bernoulli(0.20);

  int last_dest_index = -1;  // dests[] index of the previous third-party pick
  for (std::size_t r = 0; r < subresource_count; ++r) {
    web::Resource res;
    // Dependency structure first: deep chains preferentially stay within
    // the same organization (ad chains: syndication -> doubleclick; font
    // chains: googleapis CSS -> gstatic font). These same-AS chain hops are
    // precisely the requests ORIGIN coalescing removes from the critical
    // path.
    const double chain = rng.uniform_double();
    const bool chain_prev = page.resources.size() > 1 && chain < 0.42;
    bool first_party = dests.empty() || rng.bernoulli(first_party_fraction);
    int same_org_dest = -1;
    if (chain_prev && last_dest_index >= 0 && rng.bernoulli(0.75)) {
      // Continue within the previous destination's organization.
      const std::string& org = dests[static_cast<std::size_t>(
                                         last_dest_index)]->organization;
      std::vector<int> candidates;
      for (std::size_t d = 0; d < dests.size(); ++d) {
        if (dests[d]->organization == org) {
          candidates.push_back(static_cast<int>(d));
        }
      }
      if (!candidates.empty()) {
        same_org_dest =
            candidates[rng.uniform(candidates.size())];
        first_party = false;
      }
    }
    if (first_party) {
      if (!site.shard_hostnames.empty() && rng.bernoulli(0.6)) {
        // Farms rotate deterministically through their shard set; normal
        // sites pick among their few shards.
        res.hostname = shard_farm
                           ? site.shard_hostnames[shard_cursor++ %
                                                  site.shard_hostnames.size()]
                           : rng.pick(site.shard_hostnames);
      } else {
        res.hostname = site.domain;
      }
      res.content_type = sample_content_type(rng, site.provider);
      res.mode = rng.bernoulli(0.05) ? web::RequestMode::kFetchApi
                                     : web::RequestMode::kSubresource;
      // First-party protocol follows the site service.
      res.version = web::HttpVersion::kH2;
      if (site.provider == "Long Tail Hosting" && rng.bernoulli(0.20)) {
        res.version = web::HttpVersion::kH11;
      }
    } else {
      const std::size_t dest_index =
          same_org_dest >= 0 ? static_cast<std::size_t>(same_org_dest)
                             : rng.weighted(dest_weights);
      const Destination& dest = *dests[dest_index];
      last_dest_index = static_cast<int>(dest_index);
      res.hostname = dest.hostname;
      res.content_type = rng.bernoulli(0.55)
                             ? dest.dominant_type
                             : sample_content_type(rng, dest.organization);
      res.mode = dest_modes[dest_index];
      res.version = dest.version;
      res.secure = dest.secure;
    }
    // Table 3's N/A share: requests whose protocol never got recorded.
    res.recorded_version =
        rng.bernoulli(0.068) ? web::HttpVersion::kUnknown : res.version;

    res.path = "/res/" + std::to_string(r);
    res.size_bytes = size_for(res.content_type);

    // Dependency structure: most resources hang off the base document;
    // deeper chains appear with decreasing probability (css->font,
    // js->json are the №1 sources of depth).
    if (chain_prev) {
      // Continue the current chain (css -> font -> ... style discovery).
      res.parent = static_cast<int>(page.resources.size() - 1);
    } else if (page.resources.size() > 1 && chain < 0.50) {
      res.parent = static_cast<int>(
          1 + rng.uniform(page.resources.size() - 1));
    } else {
      res.parent = 0;
    }
    res.discovery_cpu_ms = 30.0 + rng.uniform_double() * 150.0;
    page.resources.push_back(std::move(res));
  }
  return page;
}

std::vector<std::size_t> Corpus::sites_using(const std::string& hostname,
                                             std::size_t limit) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < sites_.size() && out.size() < limit; ++i) {
    if (!sites_[i].crawl_succeeded) continue;
    const auto& hosts = sites_[i].third_party_hosts;
    if (std::find(hosts.begin(), hosts.end(), hostname) != hosts.end()) {
      out.push_back(i);
    }
  }
  return out;
}

browser::Service* Corpus::service_for_site(std::size_t site_index) {
  const std::size_t index =
      env_.service_index(sites_.at(site_index).domain);
  if (index == browser::Environment::kNoService) return nullptr;
  return &env_.services()[index];
}

}  // namespace origin::dataset
