#include "hpack/hpack.h"

#include <algorithm>

#include "hpack/huffman.h"
#include "hpack/integer.h"

namespace origin::hpack {

namespace {

// Representation discriminators (RFC 7541 §6).
constexpr std::uint8_t kIndexed = 0x80;             // 1xxxxxxx, 7-bit prefix
constexpr std::uint8_t kLiteralIncremental = 0x40;  // 01xxxxxx, 6-bit prefix
constexpr std::uint8_t kTableSizeUpdate = 0x20;     // 001xxxxx, 5-bit prefix
constexpr std::uint8_t kLiteralNever = 0x10;        // 0001xxxx, 4-bit prefix
// Literal without indexing is 0000xxxx with a 4-bit prefix.

}  // namespace

void Encoder::set_max_table_size(std::size_t size) {
  pending_table_size_ = size;
  has_pending_table_size_ = true;
  table_.set_max_size(size);
}

void Encoder::add_sensitive_name(std::string name) {
  sensitive_names_.push_back(std::move(name));
}

bool Encoder::is_sensitive(std::string_view name,
                           std::string_view value) const {
  (void)value;
  return std::find(sensitive_names_.begin(), sensitive_names_.end(), name) !=
         sensitive_names_.end();
}

void Encoder::encode_string(std::string_view s,
                            origin::util::ByteWriter& out) const {
  const std::size_t huffman_size = huffman_encoded_size(s);
  if (huffman_size < s.size()) {
    encode_integer(huffman_size, 7, 0x80, out);
    huffman_encode(s, out);
  } else {
    encode_integer(s.size(), 7, 0x00, out);
    out.raw(s);
  }
}

origin::util::Bytes Encoder::encode(const HeaderList& headers) {
  origin::util::ByteWriter out(headers.size() * 32);
  if (has_pending_table_size_) {
    encode_integer(pending_table_size_, 5, kTableSizeUpdate, out);
    has_pending_table_size_ = false;
  }
  for (const HeaderField& h : headers) {
    if (is_sensitive(h.name, h.value)) {
      // Never-indexed literal; index the name if we can.
      auto match = find_match(table_, h.name, h.value);
      encode_integer(match ? match->index : 0, 4, kLiteralNever, out);
      if (!match) encode_string(h.name, out);
      encode_string(h.value, out);
      continue;
    }
    auto match = find_match(table_, h.name, h.value);
    if (match && match->value_matches) {
      encode_integer(match->index, 7, kIndexed, out);
      continue;
    }
    // Literal with incremental indexing: future blocks on this connection
    // can refer back to it.
    encode_integer(match ? match->index : 0, 6, kLiteralIncremental, out);
    if (!match) encode_string(h.name, out);
    encode_string(h.value, out);
    table_.insert(h);
  }
  return out.take();
}

void Decoder::set_max_table_size_ceiling(std::size_t size) {
  settings_ceiling_ = size;
  if (table_.max_size() > size) table_.set_max_size(size);
}

origin::util::Result<std::string> Decoder::decode_string(
    origin::util::ByteReader& reader) {
  const bool huffman = (reader.peek() & 0x80) != 0;
  auto length = decode_integer(reader, 7);
  if (!length.ok()) return length.error();
  auto bytes = reader.raw(*length);
  if (!reader.ok()) return origin::util::make_error("hpack: truncated string");
  if (huffman) return huffman_decode(bytes);
  return std::string(bytes.begin(), bytes.end());
}

origin::util::Result<HeaderList> Decoder::decode(
    std::span<const std::uint8_t> block) {
  origin::util::ByteReader reader(block);
  HeaderList out;
  bool seen_field = false;
  while (!reader.at_end()) {
    const std::uint8_t first = reader.peek();
    if (first & kIndexed) {
      auto index = decode_integer(reader, 7);
      if (!index.ok()) return index.error();
      if (*index == 0) return origin::util::make_error("hpack: index 0");
      const HeaderField* f = *index <= kStaticTableSize
                                 ? static_table_entry(*index)
                                 : table_.entry(*index);
      if (f == nullptr) {
        return origin::util::make_error("hpack: index out of range");
      }
      out.push_back(*f);
      seen_field = true;
      continue;
    }
    if (first & kLiteralIncremental) {
      auto index = decode_integer(reader, 6);
      if (!index.ok()) return index.error();
      HeaderField field;
      if (*index != 0) {
        const HeaderField* f = *index <= kStaticTableSize
                                   ? static_table_entry(*index)
                                   : table_.entry(*index);
        if (f == nullptr) {
          return origin::util::make_error("hpack: name index out of range");
        }
        field.name = f->name;
      } else {
        auto name = decode_string(reader);
        if (!name.ok()) return name.error();
        field.name = std::move(name).value();
      }
      auto value = decode_string(reader);
      if (!value.ok()) return value.error();
      field.value = std::move(value).value();
      table_.insert(field);
      out.push_back(std::move(field));
      seen_field = true;
      continue;
    }
    if (first & kTableSizeUpdate) {
      // RFC 7541 §4.2: size updates must precede any header field.
      if (seen_field) {
        return origin::util::make_error(
            "hpack: table size update after header field");
      }
      auto size = decode_integer(reader, 5);
      if (!size.ok()) return size.error();
      if (*size > settings_ceiling_) {
        return origin::util::make_error(
            "hpack: table size update above SETTINGS ceiling");
      }
      table_.set_max_size(*size);
      continue;
    }
    // Literal without indexing (0000) or never indexed (0001): identical
    // parse, 4-bit prefix.
    auto index = decode_integer(reader, 4);
    if (!index.ok()) return index.error();
    HeaderField field;
    if (*index != 0) {
      const HeaderField* f = *index <= kStaticTableSize
                                 ? static_table_entry(*index)
                                 : table_.entry(*index);
      if (f == nullptr) {
        return origin::util::make_error("hpack: name index out of range");
      }
      field.name = f->name;
    } else {
      auto name = decode_string(reader);
      if (!name.ok()) return name.error();
      field.name = std::move(name).value();
    }
    auto value = decode_string(reader);
    if (!value.ok()) return value.error();
    field.value = std::move(value).value();
    out.push_back(std::move(field));
    seen_field = true;
  }
  return out;
}

}  // namespace origin::hpack
