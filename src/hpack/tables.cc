#include "hpack/tables.h"

#include <array>

namespace origin::hpack {

namespace {

// RFC 7541 Appendix A.
const std::array<HeaderField, kStaticTableSize>& static_table() {
  static const std::array<HeaderField, kStaticTableSize> kTable = {{
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":path", "/index.html"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "204"},
      {":status", "206"},
      {":status", "304"},
      {":status", "400"},
      {":status", "404"},
      {":status", "500"},
      {"accept-charset", ""},
      {"accept-encoding", "gzip, deflate"},
      {"accept-language", ""},
      {"accept-ranges", ""},
      {"accept", ""},
      {"access-control-allow-origin", ""},
      {"age", ""},
      {"allow", ""},
      {"authorization", ""},
      {"cache-control", ""},
      {"content-disposition", ""},
      {"content-encoding", ""},
      {"content-language", ""},
      {"content-length", ""},
      {"content-location", ""},
      {"content-range", ""},
      {"content-type", ""},
      {"cookie", ""},
      {"date", ""},
      {"etag", ""},
      {"expect", ""},
      {"expires", ""},
      {"from", ""},
      {"host", ""},
      {"if-match", ""},
      {"if-modified-since", ""},
      {"if-none-match", ""},
      {"if-range", ""},
      {"if-unmodified-since", ""},
      {"last-modified", ""},
      {"link", ""},
      {"location", ""},
      {"max-forwards", ""},
      {"proxy-authenticate", ""},
      {"proxy-authorization", ""},
      {"range", ""},
      {"referer", ""},
      {"refresh", ""},
      {"retry-after", ""},
      {"server", ""},
      {"set-cookie", ""},
      {"strict-transport-security", ""},
      {"transfer-encoding", ""},
      {"user-agent", ""},
      {"vary", ""},
      {"via", ""},
      {"www-authenticate", ""},
  }};
  return kTable;
}

}  // namespace

const HeaderField* static_table_entry(std::size_t index) {
  if (index < 1 || index > kStaticTableSize) return nullptr;
  return &static_table()[index - 1];
}

void DynamicTable::insert(HeaderField field) {
  const std::size_t entry_size = field.hpack_size();
  while (!entries_.empty() && size_ + entry_size > max_size_) {
    size_ -= entries_.back().hpack_size();
    entries_.pop_back();
  }
  if (entry_size > max_size_) return;  // table is now empty; entry dropped
  size_ += entry_size;
  entries_.push_front(std::move(field));
}

void DynamicTable::set_max_size(std::size_t max_size) {
  max_size_ = max_size;
  while (size_ > max_size_) {
    size_ -= entries_.back().hpack_size();
    entries_.pop_back();
  }
}

const HeaderField* DynamicTable::entry(std::size_t combined_index) const {
  if (combined_index <= kStaticTableSize) return nullptr;
  std::size_t offset = combined_index - kStaticTableSize - 1;
  if (offset >= entries_.size()) return nullptr;
  return &entries_[offset];
}

std::optional<Match> find_match(const DynamicTable& dynamic,
                                std::string_view name, std::string_view value) {
  std::optional<Match> name_only;
  for (std::size_t i = 1; i <= kStaticTableSize; ++i) {
    const HeaderField* f = static_table_entry(i);
    if (f->name != name) continue;
    if (f->value == value) return Match{i, true};
    if (!name_only) name_only = Match{i, false};
  }
  for (std::size_t i = 0; i < dynamic.entry_count(); ++i) {
    std::size_t combined = kStaticTableSize + 1 + i;
    const HeaderField* f = dynamic.entry(combined);
    if (f->name != name) continue;
    if (f->value == value) return Match{combined, true};
    if (!name_only) name_only = Match{combined, false};
  }
  return name_only;
}

}  // namespace origin::hpack
