// HTTP/2 HPACK Huffman coding (RFC 7541 §5.2 and Appendix B).
//
// The canonical code table maps each of the 256 octets plus EOS to a code of
// 5..30 bits. Encoding pads the final partial byte with the EOS prefix
// (all-ones); decoding rejects padding longer than 7 bits or not all-ones,
// as the RFC requires.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace origin::hpack {

// Number of bytes `s` occupies when Huffman-coded.
std::size_t huffman_encoded_size(std::string_view s);

// Appends the Huffman coding of `s` to `out`.
void huffman_encode(std::string_view s, origin::util::ByteWriter& out);

// Decodes a Huffman-coded string. Errors on invalid padding or a code that
// decodes to EOS.
[[nodiscard]] origin::util::Result<std::string> huffman_decode(
    std::span<const std::uint8_t> data);

}  // namespace origin::hpack
