// HPACK header-block encoder and decoder (RFC 7541).
//
// Each HTTP/2 connection direction owns one Encoder or Decoder; the dynamic
// table is connection state and persists across header blocks. The encoder
// uses incremental indexing for repeatable fields, never-indexed literals
// for sensitive fields, and Huffman coding when it shrinks the string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hpack/tables.h"
#include "util/bytes.h"
#include "util/result.h"

namespace origin::hpack {

using HeaderList = std::vector<HeaderField>;

class Encoder {
 public:
  explicit Encoder(std::size_t max_table_size = 4096)
      : table_(max_table_size) {}

  // Serializes `headers` as one header block. Order is preserved;
  // pseudo-headers must already be first (the h2 layer enforces that).
  origin::util::Bytes encode(const HeaderList& headers);

  // Schedules a "dynamic table size update" to be emitted at the start of
  // the next header block (e.g. after a SETTINGS change).
  void set_max_table_size(std::size_t size);

  // Marks a header name whose values must never be indexed (RFC 7541 §7.1.3
  // — e.g. authorization, short cookies).
  void add_sensitive_name(std::string name);

  std::size_t dynamic_table_size() const { return table_.size_bytes(); }
  std::size_t dynamic_table_entries() const { return table_.entry_count(); }

 private:
  bool is_sensitive(std::string_view name, std::string_view value) const;
  void encode_string(std::string_view s, origin::util::ByteWriter& out) const;

  DynamicTable table_;
  std::vector<std::string> sensitive_names_;
  std::size_t pending_table_size_ = 0;
  bool has_pending_table_size_ = false;
};

class Decoder {
 public:
  explicit Decoder(std::size_t max_table_size = 4096)
      : table_(max_table_size), settings_ceiling_(max_table_size) {}

  // Parses a complete header block. Errors on any malformed representation;
  // per RFC 7540 §4.3 such an error is a connection error (COMPRESSION_ERROR)
  // at the h2 layer.
  [[nodiscard]] origin::util::Result<HeaderList> decode(
      std::span<const std::uint8_t> block);

  // New ceiling advertised via SETTINGS_HEADER_TABLE_SIZE; a subsequent
  // dynamic table size update above this is a decode error.
  void set_max_table_size_ceiling(std::size_t size);

  std::size_t dynamic_table_size() const { return table_.size_bytes(); }
  std::size_t dynamic_table_entries() const { return table_.entry_count(); }

 private:
  [[nodiscard]] origin::util::Result<std::string> decode_string(
      origin::util::ByteReader& reader);

  DynamicTable table_;
  std::size_t settings_ceiling_;
};

}  // namespace origin::hpack
