// HPACK prefix-coded integers (RFC 7541 §5.1).
//
// An integer is coded into the low `prefix_bits` of the first octet; values
// that do not fit continue in subsequent octets, 7 bits at a time, LSB
// first, with the high bit as a continuation flag.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/result.h"

namespace origin::hpack {

// Encodes `value` with the given prefix size (1..8). `first_byte_flags` is
// OR'ed into the first octet's high bits (the representation discriminator,
// e.g. 0x80 for an indexed header field).
void encode_integer(std::uint64_t value, int prefix_bits,
                    std::uint8_t first_byte_flags,
                    origin::util::ByteWriter& out);

// Decodes an integer with the given prefix size from `reader`. Rejects
// encodings over 10 continuation octets (> 2^62) as malformed.
[[nodiscard]] origin::util::Result<std::uint64_t> decode_integer(
    origin::util::ByteReader& reader, int prefix_bits);

}  // namespace origin::hpack
