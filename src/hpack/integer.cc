#include "hpack/integer.h"

#include "util/hot_path.h"

namespace origin::hpack {

ORIGIN_HOT void encode_integer(std::uint64_t value, int prefix_bits,
                    std::uint8_t first_byte_flags,
                    origin::util::ByteWriter& out) {
  const std::uint64_t max_prefix = (1ull << prefix_bits) - 1;
  if (value < max_prefix) {
    out.u8(static_cast<std::uint8_t>(first_byte_flags | value));
    return;
  }
  out.u8(static_cast<std::uint8_t>(first_byte_flags | max_prefix));
  value -= max_prefix;
  while (value >= 128) {
    out.u8(static_cast<std::uint8_t>(0x80 | (value & 0x7f)));
    value >>= 7;
  }
  out.u8(static_cast<std::uint8_t>(value));
}

ORIGIN_HOT origin::util::Result<std::uint64_t> decode_integer(
    origin::util::ByteReader& reader, int prefix_bits) {
  const std::uint64_t max_prefix = (1ull << prefix_bits) - 1;
  std::uint64_t value = reader.u8() & max_prefix;
  if (!reader.ok()) return origin::util::make_error("hpack: truncated integer");
  if (value < max_prefix) return value;
  int shift = 0;
  for (int octets = 0; octets < 10; ++octets) {
    std::uint8_t byte = reader.u8();
    if (!reader.ok()) {
      return origin::util::make_error("hpack: truncated integer continuation");
    }
    value += static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return origin::util::make_error("hpack: integer overflow");
}

}  // namespace origin::hpack
