// HPACK indexing tables (RFC 7541 §2.3): the fixed 61-entry static table and
// the bounded FIFO dynamic table. The combined address space indexes the
// static table first (1..61) then the dynamic table (62..).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace origin::hpack {

struct HeaderField {
  std::string name;
  std::string value;

  bool operator==(const HeaderField&) const = default;

  // RFC 7541 §4.1: entry size is name + value + 32 bytes of overhead.
  std::size_t hpack_size() const { return name.size() + value.size() + 32; }
};

constexpr std::size_t kStaticTableSize = 61;

// Returns the static-table entry for 1-based index [1, 61], or nullptr.
const HeaderField* static_table_entry(std::size_t index);

struct Match {
  std::size_t index = 0;  // combined 1-based index
  bool value_matches = false;
};

class DynamicTable {
 public:
  explicit DynamicTable(std::size_t max_size = 4096) : max_size_(max_size) {}

  // Inserts at the head (index 62), evicting from the tail as needed. An
  // entry larger than the table capacity empties the table (RFC 7541 §4.4).
  void insert(HeaderField field);

  // Resizes the table, evicting as needed (SETTINGS_HEADER_TABLE_SIZE or a
  // dynamic table size update instruction).
  void set_max_size(std::size_t max_size);

  // Entry by combined index (>= 62); nullptr when out of range.
  const HeaderField* entry(std::size_t combined_index) const;

  std::size_t size_bytes() const { return size_; }
  std::size_t max_size() const { return max_size_; }
  std::size_t entry_count() const { return entries_.size(); }

 private:
  std::deque<HeaderField> entries_;  // front = most recent = index 62
  std::size_t size_ = 0;
  std::size_t max_size_;
};

// Searches the static table then `dynamic` for the best match for
// (name, value): exact name+value match wins over name-only.
std::optional<Match> find_match(const DynamicTable& dynamic,
                                std::string_view name, std::string_view value);

}  // namespace origin::hpack
