// RFC 6962-style append-only Merkle tree.
//
// Leaf hash = H(0x00 || leaf bytes); interior = H(0x01 || left || right),
// over the largest power-of-two split RFC 6962 §2.1 prescribes. Hashes are
// 64-bit FNV digests — structure-faithful, not cryptographic, matching the
// repository-wide substitution rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace origin::ct {

using Digest = std::uint64_t;

Digest hash_leaf(std::string_view leaf);
Digest hash_interior(Digest left, Digest right);

class MerkleTree {
 public:
  // Appends a leaf; returns its index.
  std::uint64_t append(std::string_view leaf);

  std::uint64_t size() const { return leaves_.size(); }
  // Root of the whole tree (0 for the empty tree, per convention here).
  Digest root() const;
  // Root of the first n leaves (historic tree head).
  Digest root_at(std::uint64_t n) const;

  // RFC 6962 §2.1.1 inclusion proof: the audit path for leaf `index` in the
  // tree of size `tree_size`.
  [[nodiscard]] origin::util::Result<std::vector<Digest>> inclusion_proof(
      std::uint64_t index, std::uint64_t tree_size) const;

  // Verifies an audit path against a root.
  static bool verify_inclusion(Digest leaf_hash, std::uint64_t index,
                               std::uint64_t tree_size,
                               const std::vector<Digest>& path, Digest root);

  // RFC 6962 §2.1.2 consistency proof between two historic sizes.
  [[nodiscard]] origin::util::Result<std::vector<Digest>> consistency_proof(
      std::uint64_t old_size, std::uint64_t new_size) const;

  // Verifies that the tree of `new_size` with `new_root` is an append-only
  // extension of the tree of `old_size` with `old_root`.
  static bool verify_consistency(std::uint64_t old_size, std::uint64_t new_size,
                                 Digest old_root, Digest new_root,
                                 const std::vector<Digest>& proof);

 private:
  Digest subtree_root(std::uint64_t begin, std::uint64_t end) const;
  void subtree_inclusion(std::uint64_t index, std::uint64_t begin,
                         std::uint64_t end, std::vector<Digest>& path) const;
  void subtree_consistency(std::uint64_t old_size, std::uint64_t begin,
                           std::uint64_t end, bool old_is_complete,
                           std::vector<Digest>& proof) const;

  std::vector<Digest> leaf_hashes_;
  std::vector<std::string> leaves_;
};

}  // namespace origin::ct
