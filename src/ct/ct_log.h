// Certificate Transparency ecosystem (paper §6.4).
//
// CAs write every issued certificate to multiple CT logs run by different
// operators; the paper checks that its one-time burst of ~120K certificate
// reissuances (37.59% of modified sites) would not stress the ecosystem,
// against a global issuance rate of ~257,034 certificates/hour, and notes
// the operator-imbalance problem. This module provides the log (an
// RFC 6962 Merkle tree issuing SCTs), the multi-operator ecosystem with a
// two-distinct-operators submission policy, per-hour issuance accounting,
// and a monitor that watches logs for certificates naming watched domains.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ct/merkle.h"
#include "tls/certificate.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace origin::ct {

// Signed Certificate Timestamp: the log's promise of inclusion.
struct Sct {
  std::string log_name;
  std::uint64_t leaf_index = 0;
  origin::util::SimTime timestamp;
  Digest leaf_hash = 0;
};

class CtLog {
 public:
  CtLog(std::string name, std::string operator_org)
      : name_(std::move(name)), operator_(std::move(operator_org)) {}

  const std::string& name() const { return name_; }
  const std::string& operator_org() const { return operator_; }

  Sct submit(const tls::Certificate& cert, origin::util::SimTime now);

  std::uint64_t entry_count() const { return tree_.size(); }
  Digest tree_head() const { return tree_.root(); }
  const MerkleTree& tree() const { return tree_; }

  // Entries appended during [begin, end) — what monitors poll.
  std::vector<std::string> entries_since(std::uint64_t index) const;

  // Per-hour submission counts (hour = floor(sim time / 1h)).
  const std::map<std::int64_t, std::uint64_t>& hourly_submissions() const {
    return hourly_;
  }

 private:
  std::string name_;
  std::string operator_;
  MerkleTree tree_;
  std::vector<std::string> raw_entries_;
  std::map<std::int64_t, std::uint64_t> hourly_;
};

// The set of logs a CA submits to. Policy: every certificate goes to
// `required_logs` logs operated by distinct organizations (Chrome's CT
// policy shape).
class CtEcosystem {
 public:
  explicit CtEcosystem(std::size_t required_logs = 2)
      : required_logs_(required_logs) {}

  CtLog& add_log(const std::string& name, const std::string& operator_org);

  // Submits to `required_logs` distinct-operator logs chosen by current
  // load (least-loaded-first — the mitigation §6.4 suggests), or
  // round-robin-by-weight when `weighted` operators dominate.
  std::vector<Sct> submit(const tls::Certificate& cert,
                          origin::util::SimTime now);

  const std::vector<std::unique_ptr<CtLog>>& logs() const { return logs_; }
  std::uint64_t total_submissions() const { return total_; }

  // Share of entries held by the busiest operator (the §6.4 imbalance).
  double max_operator_share() const;

 private:
  std::size_t required_logs_;
  std::vector<std::unique_ptr<CtLog>> logs_;
  std::uint64_t total_ = 0;
};

// A CT monitor (paper ref [37]): watches all logs for certificates that
// cover any watched domain.
class CtMonitor {
 public:
  void watch(std::string domain) { watched_.insert(std::move(domain)); }

  struct Hit {
    std::string log_name;
    std::uint64_t index;
    std::string domain;
    std::string subject;
  };
  // Polls every log for new entries; returns hits on watched domains.
  std::vector<Hit> poll(const CtEcosystem& ecosystem);

 private:
  std::set<std::string> watched_;
  std::map<std::string, std::uint64_t> cursor_;  // per-log next index
};

// Serialized log-entry format shared by CtLog and CtMonitor.
std::string encode_log_entry(const tls::Certificate& cert);

}  // namespace origin::ct
