#include "ct/ct_log.h"

#include <algorithm>

#include "util/strings.h"

namespace origin::ct {

std::string encode_log_entry(const tls::Certificate& cert) {
  // subject|issuer|serial|san,san,... — enough for monitors to match
  // domains and for leaves to be unique per certificate.
  std::string entry = cert.subject_common_name;
  entry += '|';
  entry += cert.issuer;
  entry += '|';
  entry += std::to_string(cert.serial);
  entry += '|';
  for (const auto& san : cert.san_dns) {
    entry += san;
    entry += ',';
  }
  return entry;
}

Sct CtLog::submit(const tls::Certificate& cert, origin::util::SimTime now) {
  std::string entry = encode_log_entry(cert);
  Sct sct;
  sct.log_name = name_;
  sct.leaf_index = tree_.append(entry);
  sct.timestamp = now;
  sct.leaf_hash = hash_leaf(entry);
  raw_entries_.push_back(std::move(entry));
  ++hourly_[now.micros() / 3'600'000'000LL];
  return sct;
}

std::vector<std::string> CtLog::entries_since(std::uint64_t index) const {
  if (index >= raw_entries_.size()) return {};
  return {raw_entries_.begin() + static_cast<std::ptrdiff_t>(index),
          raw_entries_.end()};
}

CtLog& CtEcosystem::add_log(const std::string& name,
                            const std::string& operator_org) {
  logs_.push_back(std::make_unique<CtLog>(name, operator_org));
  return *logs_.back();
}

std::vector<Sct> CtEcosystem::submit(const tls::Certificate& cert,
                                     origin::util::SimTime now) {
  // Least-loaded logs first, one per operator.
  std::vector<CtLog*> ordered;
  ordered.reserve(logs_.size());
  for (const auto& log : logs_) ordered.push_back(log.get());
  std::sort(ordered.begin(), ordered.end(), [](const CtLog* a, const CtLog* b) {
    if (a->entry_count() != b->entry_count()) {
      return a->entry_count() < b->entry_count();
    }
    return a->name() < b->name();
  });
  std::vector<Sct> scts;
  std::set<std::string> operators_used;
  for (CtLog* log : ordered) {
    if (scts.size() >= required_logs_) break;
    if (operators_used.contains(log->operator_org())) continue;
    scts.push_back(log->submit(cert, now));
    operators_used.insert(log->operator_org());
  }
  ++total_;
  return scts;
}

double CtEcosystem::max_operator_share() const {
  std::map<std::string, std::uint64_t> per_operator;
  std::uint64_t total = 0;
  for (const auto& log : logs_) {
    per_operator[log->operator_org()] += log->entry_count();
    total += log->entry_count();
  }
  if (total == 0) return 0.0;
  std::uint64_t max_entries = 0;
  for (const auto& [op, count] : per_operator) {
    max_entries = std::max(max_entries, count);
  }
  return static_cast<double>(max_entries) / static_cast<double>(total);
}

std::vector<CtMonitor::Hit> CtMonitor::poll(const CtEcosystem& ecosystem) {
  std::vector<Hit> hits;
  for (const auto& log : ecosystem.logs()) {
    std::uint64_t& cursor = cursor_[log->name()];
    auto fresh = log->entries_since(cursor);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      const std::string& entry = fresh[i];
      const auto fields = origin::util::split(entry, '|');
      if (fields.size() < 4) continue;
      const auto sans = origin::util::split(fields[3], ',');
      for (const auto& watched : watched_) {
        bool matches = false;
        for (const auto& san : sans) {
          if (san.empty()) continue;
          if (origin::util::wildcard_matches(san, watched) || san == watched) {
            matches = true;
            break;
          }
        }
        if (matches || fields[0] == watched) {
          hits.push_back(Hit{log->name(), cursor + i, watched, fields[0]});
        }
      }
    }
    cursor += fresh.size();
  }
  return hits;
}

}  // namespace origin::ct
