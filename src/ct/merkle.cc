#include "ct/merkle.h"

#include "util/fnv.h"

namespace origin::ct {

namespace {

using origin::util::make_error;
using origin::util::Result;

// Largest power of two strictly less than n (n >= 2).
std::uint64_t split_point(std::uint64_t n) {
  std::uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

Digest hash_leaf(std::string_view leaf) {
  std::string prefixed;
  prefixed.reserve(leaf.size() + 1);
  prefixed.push_back('\x00');
  prefixed.append(leaf);
  return origin::util::fnv1a64(prefixed);
}

Digest hash_interior(Digest left, Digest right) {
  char buffer[17];
  buffer[0] = '\x01';
  for (int i = 0; i < 8; ++i) {
    buffer[1 + i] = static_cast<char>((left >> (56 - 8 * i)) & 0xff);
    buffer[9 + i] = static_cast<char>((right >> (56 - 8 * i)) & 0xff);
  }
  return origin::util::fnv1a64(std::string_view(buffer, sizeof(buffer)));
}

std::uint64_t MerkleTree::append(std::string_view leaf) {
  leaves_.emplace_back(leaf);
  leaf_hashes_.push_back(hash_leaf(leaf));
  return leaves_.size() - 1;
}

Digest MerkleTree::subtree_root(std::uint64_t begin, std::uint64_t end) const {
  if (end <= begin) return 0;
  if (end - begin == 1) return leaf_hashes_[begin];
  const std::uint64_t k = split_point(end - begin);
  return hash_interior(subtree_root(begin, begin + k),
                       subtree_root(begin + k, end));
}

Digest MerkleTree::root() const { return subtree_root(0, size()); }

Digest MerkleTree::root_at(std::uint64_t n) const {
  return subtree_root(0, std::min<std::uint64_t>(n, size()));
}

void MerkleTree::subtree_inclusion(std::uint64_t index, std::uint64_t begin,
                                   std::uint64_t end,
                                   std::vector<Digest>& path) const {
  if (end - begin <= 1) return;
  const std::uint64_t k = split_point(end - begin);
  if (index < begin + k) {
    subtree_inclusion(index, begin, begin + k, path);
    path.push_back(subtree_root(begin + k, end));
  } else {
    subtree_inclusion(index, begin + k, end, path);
    path.push_back(subtree_root(begin, begin + k));
  }
}

Result<std::vector<Digest>> MerkleTree::inclusion_proof(
    std::uint64_t index, std::uint64_t tree_size) const {
  if (tree_size > size()) return make_error("ct: tree size in the future");
  if (index >= tree_size) return make_error("ct: leaf outside tree");
  std::vector<Digest> path;
  subtree_inclusion(index, 0, tree_size, path);
  return path;
}

bool MerkleTree::verify_inclusion(Digest leaf_hash, std::uint64_t index,
                                  std::uint64_t tree_size,
                                  const std::vector<Digest>& path,
                                  Digest root) {
  if (tree_size == 0 || index >= tree_size) return false;
  // RFC 9162 §2.1.3.2.
  std::uint64_t fn = index;
  std::uint64_t sn = tree_size - 1;
  Digest r = leaf_hash;
  for (Digest p : path) {
    if (fn % 2 == 1 || fn == sn) {
      r = hash_interior(p, r);
      if (fn % 2 == 0) {
        while (fn % 2 == 0 && fn != 0) {
          fn >>= 1;
          sn >>= 1;
        }
        if (fn == 0) {
          // Reached the left edge; remaining nodes all prepend... handled
          // by the loop's continued right-sibling folds.
        }
      }
    } else {
      r = hash_interior(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && r == root;
}

void MerkleTree::subtree_consistency(std::uint64_t old_size,
                                     std::uint64_t begin, std::uint64_t end,
                                     bool old_is_complete,
                                     std::vector<Digest>& proof) const {
  const std::uint64_t n = end - begin;
  if (old_size == n) {
    if (!old_is_complete) proof.push_back(subtree_root(begin, end));
    return;
  }
  const std::uint64_t k = split_point(n);
  if (old_size <= k) {
    subtree_consistency(old_size, begin, begin + k, old_is_complete, proof);
    proof.push_back(subtree_root(begin + k, end));
  } else {
    subtree_consistency(old_size - k, begin + k, end, false, proof);
    proof.push_back(subtree_root(begin, begin + k));
  }
}

Result<std::vector<Digest>> MerkleTree::consistency_proof(
    std::uint64_t old_size, std::uint64_t new_size) const {
  if (new_size > size()) return make_error("ct: tree size in the future");
  if (old_size > new_size) return make_error("ct: old size exceeds new");
  std::vector<Digest> proof;
  if (old_size == 0 || old_size == new_size) return proof;  // trivial
  subtree_consistency(old_size, 0, new_size, true, proof);
  return proof;
}

bool MerkleTree::verify_consistency(std::uint64_t old_size,
                                    std::uint64_t new_size, Digest old_root,
                                    Digest new_root,
                                    const std::vector<Digest>& proof) {
  if (old_size > new_size) return false;
  if (old_size == new_size) return proof.empty() && old_root == new_root;
  if (old_size == 0) return proof.empty();
  // RFC 9162 §2.1.4.2.
  std::uint64_t fn = old_size - 1;
  std::uint64_t sn = new_size - 1;
  while (fn % 2 == 1) {
    fn >>= 1;
    sn >>= 1;
  }
  std::size_t cursor = 0;
  Digest fr, sr;
  if (fn != 0) {
    if (proof.empty()) return false;
    fr = sr = proof[cursor++];
  } else {
    fr = sr = old_root;
  }
  for (; cursor < proof.size(); ++cursor) {
    if (sn == 0) return false;
    const Digest p = proof[cursor];
    if (fn % 2 == 1 || fn == sn) {
      fr = hash_interior(p, fr);
      sr = hash_interior(p, sr);
      while (fn % 2 == 0 && fn != 0) {
        fn >>= 1;
        sn >>= 1;
      }
    } else {
      sr = hash_interior(sr, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return fr == old_root && sr == new_root && sn == 0;
}

}  // namespace origin::ct
