#include "web/resource.h"

namespace origin::web {

const char* content_type_name(ContentType type) {
  switch (type) {
    case ContentType::kHtml: return "text/html";
    case ContentType::kJavascript: return "application/javascript";
    case ContentType::kTextJavascript: return "text/javascript";
    case ContentType::kXJavascript: return "application/x-javascript";
    case ContentType::kCss: return "text/css";
    case ContentType::kJpeg: return "image/jpeg";
    case ContentType::kPng: return "image/png";
    case ContentType::kGif: return "image/gif";
    case ContentType::kWebp: return "image/webp";
    case ContentType::kFontWoff2: return "font/woff2";
    case ContentType::kJson: return "application/json";
    case ContentType::kPlain: return "text/plain";
    case ContentType::kOther: return "other";
  }
  return "?";
}

const char* request_mode_name(RequestMode mode) {
  switch (mode) {
    case RequestMode::kNavigation: return "navigation";
    case RequestMode::kSubresource: return "subresource";
    case RequestMode::kCorsAnonymous: return "cors-anonymous";
    case RequestMode::kFetchApi: return "fetch-api";
  }
  return "?";
}

const char* http_version_name(HttpVersion version) {
  switch (version) {
    case HttpVersion::kH09: return "HTTP/0.9";
    case HttpVersion::kH10: return "HTTP/1.0";
    case HttpVersion::kH11: return "HTTP/1.1";
    case HttpVersion::kH2: return "HTTP/2";
    case HttpVersion::kH3: return "H3-Q050";
    case HttpVersion::kQuic: return "QUIC";
    case HttpVersion::kUnknown: return "N/A";
  }
  return "?";
}

}  // namespace origin::web
