// HAR 1.2 serialization of page loads.
//
// The paper's pipeline stored each page load as an HTTP Archive file from
// Chrome devtools; the §4 model consumed those files. This module writes
// our PageLoad structures as standards-shaped HAR JSON (log/entries with
// startedDateTime, timings {blocked, dns, connect, ssl, send, wait,
// receive}, request/response skeletons plus an `_origin` extension block
// for the reproduction-specific fields) and reads them back, so corpora
// can be exported for external tooling and reimported losslessly.
#pragma once

#include <string>

#include "util/json.h"
#include "util/result.h"
#include "web/har.h"

namespace origin::web {

// Builds the HAR JSON document for one page load.
origin::util::Json to_har_json(const PageLoad& load);
std::string to_har_string(const PageLoad& load, int indent = 2);

// Parses a HAR document produced by to_har_json back into a PageLoad.
[[nodiscard]] origin::util::Result<PageLoad> from_har_json(const origin::util::Json& har);
[[nodiscard]] origin::util::Result<PageLoad> from_har_string(std::string_view text);

}  // namespace origin::web
