// HAR-style page-load timelines.
//
// Each request's life is split into the same phases WebPageTest exports and
// §4.1 of the paper reconstructs: blocked (queued behind dependency
// parsing), dns, connect (TCP), ssl (TLS), send, wait (TTFB), receive.
// The coalescing model removes dns+connect+ssl from coalescable entries and
// compacts the schedule; everything here is therefore integer microseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/record.h"
#include "util/sim_time.h"
#include "web/resource.h"

namespace origin::web {

struct PhaseTimings {
  origin::util::Duration blocked;
  origin::util::Duration dns;
  origin::util::Duration connect;  // TCP handshake
  origin::util::Duration ssl;      // TLS handshake
  origin::util::Duration send;
  origin::util::Duration wait;
  origin::util::Duration receive;

  origin::util::Duration total() const {
    return blocked + dns + connect + ssl + send + wait + receive;
  }
  // The setup phases a coalesced request skips.
  origin::util::Duration setup() const { return dns + connect + ssl; }
};

struct HarEntry {
  int resource_index = -1;  // into Webpage::resources
  std::string hostname;
  dns::IpAddress server_address;
  // All addresses DNS returned (needed for the transitivity analysis).
  std::vector<dns::IpAddress> dns_answer_set;
  std::uint32_t asn = 0;
  HttpVersion version = HttpVersion::kH2;
  bool secure = true;
  RequestMode mode = RequestMode::kSubresource;
  ContentType content_type = ContentType::kOther;

  origin::util::SimTime start;
  PhaseTimings timings;

  bool new_dns_query = false;       // a recursive (non-cache) lookup happened
  bool new_tls_connection = false;  // a fresh TCP+TLS connection was opened
  // A speculative duplicate socket was opened alongside this connection
  // (§4.2 race); costs a handshake at this hostname but carries nothing.
  bool speculative_duplicate = false;
  std::uint64_t connection_id = 0;  // which connection carried the request
  std::uint64_t cert_serial = 0;    // certificate validated (0 = none/new)
  std::string cert_issuer;
  std::int64_t cert_san_count = -1;  // -1 = no validation on this request
  bool status_421 = false;           // Misdirected Request on reuse attempt

  origin::util::SimTime end() const { return start + timings.total(); }
};

struct PageLoad {
  std::uint64_t tranco_rank = 0;
  std::string base_hostname;
  bool success = true;
  std::vector<HarEntry> entries;
  // Browser race artifacts (§4.2): queries/connections that happened but
  // carry no request of their own — happy-eyeballs double queries and
  // speculative duplicate sockets. Counted into the totals below.
  std::size_t extra_dns_queries = 0;
  std::size_t extra_tls_connections = 0;

  origin::util::Duration page_load_time() const;
  std::size_t request_count() const { return entries.size(); }
  // Includes race extras.
  std::size_t dns_query_count() const;
  std::size_t tls_connection_count() const;
  std::size_t certificate_validation_count() const;
  std::size_t unique_connection_count() const;
  std::vector<std::uint32_t> unique_asns() const;
};

}  // namespace origin::web
