#include "web/har_json.h"

namespace origin::web {

using origin::util::Json;
using origin::util::make_error;
using origin::util::Result;

namespace {

Json timings_json(const PhaseTimings& timings) {
  Json::Object out;
  out["blocked"] = timings.blocked.as_millis();
  out["dns"] = timings.dns.as_millis();
  out["connect"] = timings.connect.as_millis();
  out["ssl"] = timings.ssl.as_millis();
  out["send"] = timings.send.as_millis();
  out["wait"] = timings.wait.as_millis();
  out["receive"] = timings.receive.as_millis();
  return Json(std::move(out));
}

origin::util::Duration millis_field(const Json& timings, const char* key) {
  return origin::util::Duration::millis(timings[key].double_or(0.0));
}

Json entry_json(const HarEntry& entry) {
  Json::Object request;
  request["method"] = "GET";
  request["url"] = std::string(entry.secure ? "https://" : "http://") +
                   entry.hostname + "/";
  request["httpVersion"] = web::http_version_name(entry.version);

  Json::Object response;
  response["status"] = entry.status_421 ? 421 : 200;
  Json::Object content;
  content["mimeType"] = web::content_type_name(entry.content_type);
  response["content"] = Json(std::move(content));

  // Reproduction-specific fields travel in an extension block, as HAR
  // custom fields conventionally do (leading underscore).
  Json::Object extension;
  extension["resourceIndex"] = entry.resource_index;
  extension["asn"] = static_cast<std::int64_t>(entry.asn);
  extension["serverAddress"] = entry.server_address.to_string();
  extension["addressValue"] = static_cast<std::int64_t>(entry.server_address.value);
  extension["addressV6"] = entry.server_address.family == dns::Family::kV6;
  Json::Array answers;
  for (const auto& address : entry.dns_answer_set) {
    answers.push_back(Json(static_cast<std::int64_t>(address.value)));
  }
  extension["dnsAnswerSet"] = Json(std::move(answers));
  extension["mode"] = web::request_mode_name(entry.mode);
  extension["newDnsQuery"] = entry.new_dns_query;
  extension["newTlsConnection"] = entry.new_tls_connection;
  extension["speculativeDuplicate"] = entry.speculative_duplicate;
  extension["connectionId"] = static_cast<std::int64_t>(entry.connection_id);
  extension["certSerial"] = static_cast<std::int64_t>(entry.cert_serial);
  extension["certIssuer"] = entry.cert_issuer;
  extension["certSanCount"] = entry.cert_san_count;

  Json::Object out;
  out["startedDateTime"] = entry.start.as_millis();
  out["time"] = entry.timings.total().as_millis();
  out["request"] = Json(std::move(request));
  out["response"] = Json(std::move(response));
  out["timings"] = timings_json(entry.timings);
  out["serverIPAddress"] = entry.server_address.to_string();
  out["_origin"] = Json(std::move(extension));
  return Json(std::move(out));
}

HttpVersion version_from_name(const std::string& name) {
  for (auto version :
       {HttpVersion::kH09, HttpVersion::kH10, HttpVersion::kH11,
        HttpVersion::kH2, HttpVersion::kH3, HttpVersion::kQuic,
        HttpVersion::kUnknown}) {
    if (name == http_version_name(version)) return version;
  }
  return HttpVersion::kUnknown;
}

ContentType content_type_from_name(const std::string& name) {
  for (auto type :
       {ContentType::kHtml, ContentType::kJavascript,
        ContentType::kTextJavascript, ContentType::kXJavascript,
        ContentType::kCss, ContentType::kJpeg, ContentType::kPng,
        ContentType::kGif, ContentType::kWebp, ContentType::kFontWoff2,
        ContentType::kJson, ContentType::kPlain, ContentType::kOther}) {
    if (name == content_type_name(type)) return type;
  }
  return ContentType::kOther;
}

RequestMode mode_from_name(const std::string& name) {
  for (auto mode :
       {RequestMode::kNavigation, RequestMode::kSubresource,
        RequestMode::kCorsAnonymous, RequestMode::kFetchApi}) {
    if (name == request_mode_name(mode)) return mode;
  }
  return RequestMode::kSubresource;
}

}  // namespace

Json to_har_json(const PageLoad& load) {
  Json::Object creator;
  creator["name"] = "respect-the-origin-repro";
  creator["version"] = "1.0";

  Json::Object page;
  page["id"] = load.base_hostname;
  page["title"] = std::string("https://") + load.base_hostname + "/";
  Json::Object page_timings;
  page_timings["onLoad"] = load.page_load_time().as_millis();
  page["pageTimings"] = Json(std::move(page_timings));
  page["_trancoRank"] = static_cast<std::int64_t>(load.tranco_rank);
  page["_success"] = load.success;
  page["_extraDnsQueries"] = load.extra_dns_queries;
  page["_extraTlsConnections"] = load.extra_tls_connections;

  Json::Array entries;
  for (const auto& entry : load.entries) entries.push_back(entry_json(entry));

  Json::Object log;
  log["version"] = "1.2";
  log["creator"] = Json(std::move(creator));
  log["pages"] = Json(Json::Array{Json(std::move(page))});
  log["entries"] = Json(std::move(entries));

  Json::Object root;
  root["log"] = Json(std::move(log));
  return Json(std::move(root));
}

std::string to_har_string(const PageLoad& load, int indent) {
  return to_har_json(load).dump(indent);
}

// Every field access below must be total: a HAR document is external input
// (the paper's corpora came from Chrome devtools), so a wrong-typed or
// missing field yields a clean parse error or a default, never a throw.
Result<PageLoad> from_har_json(const Json& har) {
  const Json& log = har["log"];
  if (!log.is_object()) return make_error("har: missing log object");
  const Json& pages = log["pages"];
  if (!pages.is_array() || pages.as_array().empty()) {
    return make_error("har: missing pages");
  }
  const Json& page = pages.as_array().front();
  if (!page.is_object()) return make_error("har: page is not an object");
  if (!page["id"].is_string()) return make_error("har: page missing id");

  PageLoad load;
  load.base_hostname = page["id"].as_string();
  load.tranco_rank = static_cast<std::uint64_t>(page["_trancoRank"].int_or(0));
  load.success = page["_success"].bool_or(true);
  load.extra_dns_queries =
      static_cast<std::size_t>(page["_extraDnsQueries"].int_or(0));
  load.extra_tls_connections =
      static_cast<std::size_t>(page["_extraTlsConnections"].int_or(0));

  const Json& entries = log["entries"];
  if (!entries.is_array()) return make_error("har: missing entries");
  for (const Json& item : entries.as_array()) {
    if (!item.is_object()) return make_error("har: entry is not an object");
    HarEntry entry;
    const Json& extension = item["_origin"];
    if (!extension.is_object()) return make_error("har: missing _origin block");
    if (!item["request"]["url"].is_string()) {
      return make_error("har: entry missing request.url");
    }
    const std::string& url = item["request"]["url"].as_string();
    entry.secure = url.rfind("https://", 0) == 0;
    const std::size_t scheme_end = url.find("://");
    if (scheme_end == std::string::npos) {
      return make_error("har: request.url has no scheme");
    }
    const std::size_t host_begin = scheme_end + 3;
    entry.hostname =
        url.substr(host_begin, url.find('/', host_begin) - host_begin);
    entry.version =
        version_from_name(item["request"]["httpVersion"].string_or(""));
    entry.status_421 = item["response"]["status"].int_or(0) == 421;
    entry.content_type = content_type_from_name(
        item["response"]["content"]["mimeType"].string_or(""));
    entry.start = origin::util::SimTime::from_micros(origin::util::clamp_to_int64(
        item["startedDateTime"].double_or(0.0) * 1000.0));
    const Json& timings = item["timings"];
    entry.timings.blocked = millis_field(timings, "blocked");
    entry.timings.dns = millis_field(timings, "dns");
    entry.timings.connect = millis_field(timings, "connect");
    entry.timings.ssl = millis_field(timings, "ssl");
    entry.timings.send = millis_field(timings, "send");
    entry.timings.wait = millis_field(timings, "wait");
    entry.timings.receive = millis_field(timings, "receive");

    entry.resource_index = static_cast<int>(extension["resourceIndex"].int_or(0));
    entry.asn = static_cast<std::uint32_t>(extension["asn"].int_or(0));
    entry.server_address =
        extension["addressV6"].bool_or(false)
            ? dns::IpAddress::v6(
                  static_cast<std::uint64_t>(extension["addressValue"].int_or(0)))
            : dns::IpAddress::v4(
                  static_cast<std::uint32_t>(extension["addressValue"].int_or(0)));
    if (extension["dnsAnswerSet"].is_array()) {
      for (const Json& value : extension["dnsAnswerSet"].as_array()) {
        entry.dns_answer_set.push_back(
            dns::IpAddress::v4(static_cast<std::uint32_t>(value.int_or(0))));
      }
    }
    entry.mode = mode_from_name(extension["mode"].string_or(""));
    entry.new_dns_query = extension["newDnsQuery"].bool_or(false);
    entry.new_tls_connection = extension["newTlsConnection"].bool_or(false);
    entry.speculative_duplicate =
        extension["speculativeDuplicate"].bool_or(false);
    entry.connection_id =
        static_cast<std::uint64_t>(extension["connectionId"].int_or(0));
    entry.cert_serial =
        static_cast<std::uint64_t>(extension["certSerial"].int_or(0));
    entry.cert_issuer = extension["certIssuer"].string_or("");
    entry.cert_san_count = static_cast<int>(extension["certSanCount"].int_or(0));
    load.entries.push_back(std::move(entry));
  }
  return load;
}

Result<PageLoad> from_har_string(std::string_view text) {
  auto parsed = Json::parse(text);
  if (!parsed.ok()) return parsed.error();
  return from_har_json(parsed.value());
}

}  // namespace origin::web
