// Web resource model: what a page is made of.
//
// Content types mirror Table 5 of the paper; request mechanics that matter
// to coalescing are carried per resource: the `crossorigin=anonymous`
// attribute and fetch()/XMLHttpRequest usage both prevented coalescing in
// the paper's deployment (§5.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace origin::web {

enum class ContentType : std::uint8_t {
  kHtml,
  kJavascript,       // application/javascript
  kTextJavascript,   // text/javascript (obsolete; Google still serves it)
  kXJavascript,      // application/x-javascript
  kCss,
  kJpeg,
  kPng,
  kGif,
  kWebp,
  kFontWoff2,
  kJson,
  kPlain,
  kOther,
};

const char* content_type_name(ContentType type);

// How the document initiates the subrequest; affects coalescing (§5.3).
enum class RequestMode : std::uint8_t {
  kNavigation,      // the base page itself
  kSubresource,     // plain <script>/<img>/<link>
  kCorsAnonymous,   // crossorigin="anonymous" — separate connection pool key
  kFetchApi,        // fetch()/XMLHttpRequest — ditto
};

const char* request_mode_name(RequestMode mode);

enum class HttpVersion : std::uint8_t {
  kH09,
  kH10,
  kH11,
  kH2,
  kH3,
  kQuic,
  kUnknown,
};

const char* http_version_name(HttpVersion version);

struct Resource {
  std::string hostname;
  std::string path;
  ContentType content_type = ContentType::kOther;
  std::size_t size_bytes = 10 * 1024;
  bool secure = true;  // https
  RequestMode mode = RequestMode::kSubresource;
  HttpVersion version = HttpVersion::kH2;
  // What the HAR records. Usually == version, but a slice of requests ends
  // up with no recorded protocol (Table 3's "N/A" rows) even though the
  // wire used the host's real protocol.
  HttpVersion recorded_version = HttpVersion::kH2;

  // Index of the resource whose parsing discovered this one (-1 for the
  // base document), plus how long the parser worked before dispatching the
  // request. These two fields define the dependency DAG that the waterfall
  // reconstruction must preserve (§4.1: "CPU time beforehand ... is
  // unmodified").
  int parent = -1;
  double discovery_cpu_ms = 0.0;

  std::string url() const { return (secure ? "https://" : "http://") + hostname + path; }
};

struct Webpage {
  std::uint64_t tranco_rank = 0;
  std::string base_hostname;
  std::vector<Resource> resources;  // [0] is the base document

  std::size_t subresource_count() const {
    return resources.empty() ? 0 : resources.size() - 1;
  }
};

}  // namespace origin::web
