#include "web/har.h"

#include <algorithm>
#include <set>

namespace origin::web {

origin::util::Duration PageLoad::page_load_time() const {
  origin::util::SimTime page_end;
  origin::util::SimTime page_start = origin::util::SimTime::from_micros(
      entries.empty() ? 0 : entries.front().start.micros());
  for (const auto& entry : entries) {
    page_start = std::min(page_start, entry.start);
    page_end = std::max(page_end, entry.end());
  }
  return page_end - page_start;
}

std::size_t PageLoad::dns_query_count() const {
  return extra_dns_queries +
         static_cast<std::size_t>(
             std::count_if(entries.begin(), entries.end(),
                           [](const HarEntry& e) { return e.new_dns_query; }));
}

std::size_t PageLoad::tls_connection_count() const {
  return extra_tls_connections +
         static_cast<std::size_t>(std::count_if(
             entries.begin(), entries.end(),
             [](const HarEntry& e) { return e.new_tls_connection; }));
}

std::size_t PageLoad::certificate_validation_count() const {
  return static_cast<std::size_t>(std::count_if(
      entries.begin(), entries.end(),
      [](const HarEntry& e) { return e.cert_san_count >= 0; }));
}

std::size_t PageLoad::unique_connection_count() const {
  std::set<std::uint64_t> ids;
  for (const auto& entry : entries) {
    if (entry.connection_id != 0) ids.insert(entry.connection_id);
  }
  return ids.size();
}

std::vector<std::uint32_t> PageLoad::unique_asns() const {
  std::set<std::uint32_t> asns;
  for (const auto& entry : entries) {
    if (entry.asn != 0) asns.insert(entry.asn);
  }
  return {asns.begin(), asns.end()};
}

}  // namespace origin::web
