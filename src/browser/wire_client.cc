#include "browser/wire_client.h"

#include <algorithm>

#include "server/http2_server.h"
#include "tls/handshake.h"
#include "util/fnv.h"

namespace origin::browser {

using origin::util::Duration;

WireClient::WireClient(Environment& env, netsim::Network& network,
                       LoaderOptions options, DegradationOptions degradation)
    : env_(env),
      network_(network),
      options_(std::move(options)),
      degradation_(degradation),
      policy_(make_policy(options_.policy)) {
  if (policy_ == nullptr) policy_ = std::make_unique<ChromiumIpPolicy>();
}

void WireClient::load(const web::Webpage& page,
                      std::function<void(WireLoadResult)> done) {
  auto state = std::make_shared<LoadState>();
  state->page = page;
  state->har.tranco_rank = page.tranco_rank;
  state->har.base_hostname = page.base_hostname;
  state->har.entries.resize(page.resources.size());
  state->outstanding_children.assign(page.resources.size(), 0);
  state->resource_done.assign(page.resources.size(), 0);
  state->attempts.assign(page.resources.size(), 0);
  state->retry_budget_left = degradation_.retry_budget;
  const std::uint64_t seed = resolver_seed_++;
  dns::Resolver::Params resolver_params = options_.resolver;
  if (auto* injector = network_.fault_injector()) {
    // Mirror the network's DNS fault plan into this load's resolver; the
    // per-load seed keeps schedules independent across loads yet
    // deterministic for a given (fault seed, load index).
    const netsim::FaultConfig& config = injector->config();
    resolver_params.fault_servfail_rate = config.dns_servfail;
    resolver_params.fault_timeout_rate = config.dns_timeout;
    resolver_params.fault_seed = origin::util::fnv1a64_mix(config.seed, seed);
  }
  state->resolver =
      std::make_unique<dns::Resolver>(env_.dns(), resolver_params, seed);
  state->done = std::move(done);
  active_.push_back(state);

  for (std::size_t i = 0; i < page.resources.size(); ++i) {
    auto& entry = state->har.entries[i];
    entry.resource_index = static_cast<int>(i);
    entry.hostname = page.resources[i].hostname;
    entry.content_type = page.resources[i].content_type;
    entry.mode = page.resources[i].mode;
    entry.version = page.resources[i].version;
  }
  if (page.resources.empty()) {
    finish_load(state, true);
    return;
  }
  // A stalled load (SYN blackhole, stalled delivery, lost close...) must
  // still terminate: past the deadline it finishes with complete = false.
  std::weak_ptr<LoadState> weak_state = state;
  network_.simulator().schedule(degradation_.load_deadline, [this,
                                                            weak_state]() {
    auto state = weak_state.lock();
    if (!state || state->finished) return;
    ++state->result.robustness.deadline_expirations;
    for (std::size_t i = 0; i < state->page.resources.size(); ++i) {
      if (!state->resource_done[i]) {
        state->har.success = false;
        state->result.errors.push_back("load deadline exceeded: " +
                                       state->page.resources[i].hostname);
      }
    }
    finish_load(state, false);
  });
  // Root resources (parent < 0) dispatch immediately; children when their
  // parent completes.
  for (std::size_t i = 0; i < page.resources.size(); ++i) {
    if (page.resources[i].parent < 0) {
      dispatch(state, static_cast<int>(i), false);
    }
  }
}

void WireClient::add_avoid(std::shared_ptr<LoadState> state,
                           const std::string& a, const std::string& b) {
  if (!degradation_.enabled || !degradation_.use_avoid_list) return;
  if (a == b) return;  // same-host reuse is never an avoid-list matter
  auto pair = std::minmax(a, b);
  if (state->avoid.insert({pair.first, pair.second}).second) {
    ++state->result.robustness.avoid_list_entries;
  }
}

bool WireClient::should_avoid(const std::shared_ptr<LoadState>& state,
                              const std::string& a,
                              const std::string& b) const {
  if (!degradation_.enabled || !degradation_.use_avoid_list) return false;
  auto pair = std::minmax(a, b);
  return state->avoid.contains({pair.first, pair.second});
}

bool WireClient::retry_resource(std::shared_ptr<LoadState> state,
                                int resource_index) {
  if (!degradation_.enabled || state->finished) return false;
  const auto idx = static_cast<std::size_t>(resource_index);
  if (state->resource_done[idx]) return false;
  if (state->attempts[idx] + 1 >= degradation_.max_attempts_per_resource) {
    return false;
  }
  if (state->retry_budget_left <= 0) {
    ++state->result.robustness.retry_budget_exhausted;
    return false;
  }
  --state->retry_budget_left;
  const int attempt = ++state->attempts[idx];
  ++state->result.robustness.retries;
  Duration backoff = degradation_.backoff_initial;
  for (int i = 1; i < attempt && backoff < degradation_.backoff_cap; ++i) {
    backoff = backoff * degradation_.backoff_multiplier;
  }
  backoff = std::min(backoff, degradation_.backoff_cap);
  state->result.robustness.backoff_micros +=
      static_cast<std::uint64_t>(backoff.count_micros());
  // Retries go to a dedicated connection — same semantics as the 421
  // retry: whatever shared path failed is not trusted a second time.
  network_.simulator().schedule(backoff, [this, state, resource_index]() {
    if (state->finished ||
        state->resource_done[static_cast<std::size_t>(resource_index)]) {
      return;
    }
    dispatch(state, resource_index, /*dedicated=*/true);
  });
  return true;
}

bool WireClient::redispatch_resource(std::shared_ptr<LoadState> state,
                                     int resource_index) {
  if (state->finished) return false;
  const auto idx = static_cast<std::size_t>(resource_index);
  if (state->resource_done[idx]) return false;
  if (state->attempts[idx] + 1 >= degradation_.max_attempts_per_resource) {
    return false;
  }
  // A drain is not a failure: no retry budget, no backoff — but the
  // attempt still counts so repeated drains cannot loop forever. The
  // dispatch itself reruns the normal connection selection, which skips
  // draining connections and honors the avoid-list.
  ++state->attempts[idx];
  network_.simulator().schedule(
      Duration::micros(0), [this, state, resource_index]() {
        if (state->finished ||
            state->resource_done[static_cast<std::size_t>(resource_index)]) {
          return;
        }
        dispatch(state, resource_index, /*dedicated=*/false);
      });
  return true;
}

void WireClient::fail_pending_streams(std::shared_ptr<LoadState> state,
                                      std::shared_ptr<LiveConnection> conn,
                                      const std::string& error,
                                      bool avoid_coalesced) {
  auto pending = std::move(conn->streams);
  conn->streams.clear();
  for (const auto& [stream_id, ps] : pending) {
    (void)stream_id;
    const auto idx = static_cast<std::size_t>(ps.resource);
    if (avoid_coalesced && ps.coalesced) {
      add_avoid(state, state->page.resources[idx].hostname, conn->record.sni);
    }
    if (retry_resource(state, ps.resource)) {
      ++state->result.robustness.redispatched_streams;
    } else {
      complete_resource(state, ps.resource, false, error);
    }
  }
}

void WireClient::dispatch(std::shared_ptr<LoadState> state, int resource_index,
                          bool dedicated) {
  const web::Resource& res =
      state->page.resources[static_cast<std::size_t>(resource_index)];
  auto& entry = state->har.entries[static_cast<std::size_t>(resource_index)];
  entry.start = network_.simulator().now();

  const std::string pool_key =
      (res.mode == web::RequestMode::kCorsAnonymous ||
       res.mode == web::RequestMode::kFetchApi)
          ? "anon"
          : "cred";

  // Same-host reuse first; then policy coalescing (both skipped when the
  // resource demands a dedicated connection — a 421 retry or a degradation
  // retry after a coalesced failure).
  if (!dedicated) {
    for (auto& conn : state->pool) {
      if (!conn->alive || conn->draining ||
          conn->record.pool_key != pool_key) {
        continue;
      }
      // Keep the policy view of the origin set fresh from the live h2
      // connection (ORIGIN frames may have arrived since the record was
      // created).
      conn->record.origin_set = conn->h2->origin_set();
      if (conn->record.sni == res.hostname) {
        ++state->result.coalesced_requests;
        send_request(state, resource_index, conn, true);
        return;
      }
      if (pool_key == "cred" &&
          !should_avoid(state, res.hostname, conn->record.sni) &&
          policy_->can_decide_without_dns(conn->record, res.hostname) &&
          policy_->evaluate(conn->record, res.hostname, {}).reuse) {
        ++state->result.coalesced_requests;
        send_request(state, resource_index, conn, true);
        return;
      }
    }
  }

  // Blocking DNS query.
  auto answer = state->resolver->resolve(res.hostname, dns::Family::kV4,
                                         network_.simulator().now());
  entry.new_dns_query = !answer.from_cache;
  entry.timings.dns = answer.latency;
  network_.simulator().schedule(answer.latency, [this, state, resource_index,
                                                 answer, dedicated,
                                                 pool_key]() {
    if (state->finished ||
        state->resource_done[static_cast<std::size_t>(resource_index)]) {
      return;
    }
    const web::Resource& res =
        state->page.resources[static_cast<std::size_t>(resource_index)];
    if (!answer.ok) {
      if (answer.injected_fault) {
        // SERVFAIL/timeout is transient: a backoff retry re-queries
        // upstream (injected failures are not negative-cached).
        ++state->result.robustness.dns_failures;
        if (retry_resource(state, resource_index)) return;
      }
      complete_resource(state, resource_index, false,
                        "dns failure for " + res.hostname);
      return;
    }
    if (!dedicated && pool_key == "cred") {
      for (auto& conn : state->pool) {
        if (!conn->alive || conn->draining ||
            conn->record.pool_key != pool_key) {
          continue;
        }
        if (should_avoid(state, res.hostname, conn->record.sni)) {
          ++state->result.robustness.avoided_coalescings;
          continue;
        }
        conn->record.origin_set = conn->h2->origin_set();
        auto decision =
            policy_->evaluate(conn->record, res.hostname, answer.addresses);
        if (decision.reuse) {
          ++state->result.coalesced_requests;
          send_request(state, resource_index, conn, true);
          return;
        }
      }
    }
    open_connection(state, resource_index, answer, dedicated);
  });
}

void WireClient::open_connection(std::shared_ptr<LoadState> state,
                                 int resource_index, const dns::Answer& answer,
                                 bool dedicated) {
  (void)dedicated;
  const web::Resource& res =
      state->page.resources[static_cast<std::size_t>(resource_index)];
  const Service* service = env_.find_service(res.hostname);
  const dns::IpAddress address = answer.addresses.front();

  // The connect attempt and its timeout race; whoever flips `settled`
  // first owns the resource's fate. A late SYN-ACK after the timeout is
  // closed immediately, like a kernel RST for an abandoned socket.
  auto settled = std::make_shared<bool>(false);
  const int attempt_at_dispatch =
      state->attempts[static_cast<std::size_t>(resource_index)];
  if (degradation_.enabled) {
    network_.simulator().schedule(
        degradation_.connect_timeout,
        [this, state, resource_index, settled, attempt_at_dispatch]() {
          if (*settled || state->finished) return;
          const auto idx = static_cast<std::size_t>(resource_index);
          if (state->resource_done[idx] ||
              state->attempts[idx] != attempt_at_dispatch) {
            return;
          }
          *settled = true;
          ++state->result.robustness.connect_timeouts;
          if (!retry_resource(state, resource_index)) {
            complete_resource(
                state, resource_index, false,
                "connect timeout for " +
                    state->page.resources[idx].hostname);
          }
        });
  }

  network_.connect(
      options_.network_tag, address,
      [this, state, resource_index, answer, address, service, settled](
          origin::util::Result<netsim::TcpEndpoint> endpoint) {
        if (*settled) {
          if (endpoint.ok()) {
            auto late = *endpoint;
            late.close("late connect after timeout");
          }
          return;
        }
        *settled = true;
        if (state->finished ||
            state->resource_done[static_cast<std::size_t>(resource_index)]) {
          if (endpoint.ok()) {
            auto unused = *endpoint;
            unused.close("load finished before connect");
          }
          return;
        }
        const web::Resource& res =
            state->page.resources[static_cast<std::size_t>(resource_index)];
        auto& entry =
            state->har.entries[static_cast<std::size_t>(resource_index)];
        if (!endpoint.ok()) {
          ++state->result.robustness.connect_failures;
          if (!retry_resource(state, resource_index)) {
            complete_resource(state, resource_index, false,
                              endpoint.error().message);
          }
          return;
        }
        // TLS handshake: validate the service certificate, then price the
        // handshake RTTs by delaying h2 startup.
        if (service == nullptr || service->certificate == nullptr) {
          complete_resource(state, resource_index, false,
                            "no service for " + res.hostname);
          return;
        }
        if (auto* injector = network_.fault_injector();
            injector != nullptr &&
            injector->tls_fault((*endpoint).connection_id()) &&
            injector->consume_budget()) {
          ++state->result.robustness.tls_failures;
          auto failed = *endpoint;
          failed.close("injected: tls handshake failure");
          if (!retry_resource(state, resource_index)) {
            complete_resource(state, resource_index, false,
                              "tls handshake failure for " + res.hostname);
          }
          return;
        }
        tls::CertificateChain chain;
        chain.leaf = *service->certificate;
        auto handshake = tls::simulate_handshake(chain, options_.handshake);
        if (!handshake.ok) {
          complete_resource(state, resource_index, false,
                            "ssl protocol error (oversized certificate)");
          return;
        }
        auto outcome = env_.trust_store().validate(
            *service->certificate, res.hostname, network_.simulator().now());
        if (outcome != tls::TrustStore::Outcome::kOk) {
          complete_resource(state, resource_index, false,
                            std::string("certificate validation failed: ") +
                                tls::TrustStore::outcome_name(outcome));
          return;
        }
        entry.new_tls_connection = true;
        entry.cert_serial = service->certificate->serial;
        entry.cert_issuer = service->certificate->issuer;
        entry.cert_san_count =
            static_cast<std::int64_t>(service->certificate->san_dns.size());
        ++state->result.connections_opened;

        auto conn = std::make_shared<LiveConnection>();
        conn->service = service;
        conn->endpoint = *endpoint;
        conn->record.id = next_connection_id_++;
        conn->record.sni = res.hostname;
        conn->record.connected_address = address;
        conn->record.available_set = answer.addresses;
        conn->record.certificate = *service->certificate;
        conn->record.http2 = true;
        conn->record.pool_key =
            (res.mode == web::RequestMode::kCorsAnonymous ||
             res.mode == web::RequestMode::kFetchApi)
                ? "anon"
                : "cred";
        h2::Origin initial;
        initial.host = res.hostname;
        conn->h2 = std::make_shared<h2::Connection>(
            h2::Connection::Role::kClient, initial);
        conn->record.origin_set = conn->h2->origin_set();

        h2::ConnectionCallbacks callbacks;
        std::weak_ptr<LiveConnection> weak_conn = conn;
        auto weak_state = std::weak_ptr<LoadState>(state);
        callbacks.on_headers = [this, weak_state, weak_conn](
                                   std::uint32_t stream_id,
                                   const hpack::HeaderList& headers,
                                   bool end_stream) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn || state->finished) return;
          auto it = conn->streams.find(stream_id);
          if (it == conn->streams.end()) return;
          const int resource_index = it->second.resource;
          const bool coalesced = it->second.coalesced;
          const std::string_view status =
              server::header_value(headers, ":status");
          auto& entry =
              state->har.entries[static_cast<std::size_t>(resource_index)];
          if (status == "421") {
            conn->streams.erase(it);
            if (entry.status_421) {
              // Already retried once on a dedicated connection and the
              // deployment still cannot serve the authority: terminal.
              complete_resource(state, resource_index, false,
                                "421 on dedicated connection");
              return;
            }
            // Misdirected: retry on a dedicated connection (§2.2), and
            // remember the pair — the browser will not re-coalesce a host
            // that answered 421 onto this origin again.
            if (coalesced) {
              add_avoid(
                  state,
                  state->page
                      .resources[static_cast<std::size_t>(resource_index)]
                      .hostname,
                  conn->record.sni);
            }
            entry.status_421 = true;
            ++state->result.retries_after_421;
            dispatch(state, resource_index, /*dedicated=*/true);
            return;
          }
          if (end_stream) {
            conn->streams.erase(it);
            complete_resource(state, resource_index, status == "200",
                              status == "200"
                                  ? ""
                                  : "status " + std::string(status));
          }
        };
        callbacks.on_data = [this, weak_state, weak_conn](
                                std::uint32_t stream_id,
                                std::span<const std::uint8_t>,
                                bool end_stream) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn || !end_stream || state->finished) return;
          auto it = conn->streams.find(stream_id);
          if (it == conn->streams.end()) return;
          const int resource_index = it->second.resource;
          conn->streams.erase(it);
          complete_resource(state, resource_index, true, "");
        };
        callbacks.on_goaway = [this, weak_state, weak_conn](
                                  const h2::GoAwayFrame& goaway) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn || state->finished) return;
          ++state->result.robustness.goaways_received;
          conn->draining = true;
          // Streams the server never processed (id > last_stream_id) are
          // safe to re-dispatch verbatim on another connection.
          std::vector<std::pair<std::uint32_t, PendingStream>> unprocessed;
          for (auto it = conn->streams.begin(); it != conn->streams.end();) {
            if (it->first > goaway.last_stream_id) {
              unprocessed.emplace_back(*it);
              it = conn->streams.erase(it);
            } else {
              ++it;
            }
          }
          // A graceful drain (NO_ERROR) re-dispatches budget-free; an
          // error GOAWAY goes through the normal retry budget.
          const bool graceful = goaway.error == h2::ErrorCode::kNoError;
          for (const auto& [stream_id, ps] : unprocessed) {
            (void)stream_id;
            if (graceful && redispatch_resource(state, ps.resource)) {
              ++state->result.robustness.goaway_redispatches;
            } else if (retry_resource(state, ps.resource)) {
              ++state->result.robustness.redispatched_streams;
            } else {
              complete_resource(state, ps.resource, false,
                                "goaway: stream not processed");
            }
          }
        };
        conn->h2->set_callbacks(std::move(callbacks));

        conn->endpoint.set_on_receive([this, weak_state, weak_conn](
                                          std::span<const std::uint8_t>
                                              bytes) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn) return;
          auto status = conn->h2->receive(bytes);
          // Flush first: a failed receive queues a GOAWAY that should
          // still reach the peer.
          if (conn->h2->has_output() && conn->endpoint.open()) {
            conn->endpoint.send(conn->h2->take_output());
          }
          if (!status.ok() && conn->alive) {
            // The h2 layer declared the connection dead (e.g. garbled
            // frames from a corrupting middlebox).
            conn->alive = false;
            if (state->finished) return;
            ++state->result.robustness.h2_protocol_errors;
            const std::string error =
                "h2 protocol error: " + status.error().message;
            if (conn->endpoint.open()) conn->endpoint.close(error);
            fail_pending_streams(state, conn, error,
                                 /*avoid_coalesced=*/true);
          }
        });
        conn->endpoint.set_on_close([this, weak_state, weak_conn](
                                        const std::string& reason) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn) return;
          const bool was_alive = conn->alive;
          conn->alive = false;
          conn->close_reason = reason;
          // finish_load closes its pool with "load complete"; that is not
          // a degradation event.
          if (state->finished) return;
          ++state->result.connections_torn_down;
          ++state->result.robustness.connections_torn_down;
          ++state->result.robustness.teardown_reasons[reason];
          if (!was_alive) return;  // streams already failed at the h2 layer
          // Every in-flight request on this connection fails (§6.7: the
          // user sees broken page loads) — or, with degradation enabled,
          // is re-dispatched on a dedicated connection with the coalesced
          // pair avoid-listed.
          fail_pending_streams(state, conn, "connection torn down: " + reason,
                               /*avoid_coalesced=*/true);
        });

        state->pool.push_back(conn);
        // Delay the first request by the handshake cost beyond the TCP
        // round trip netsim already charged.
        auto delay = options_.link.rtt() *
                         static_cast<double>(handshake.round_trips) +
                     options_.handshake.crypto_cost;
        auto& handshake_entry =
            state->har.entries[static_cast<std::size_t>(resource_index)];
        handshake_entry.timings.connect = options_.link.rtt();
        handshake_entry.timings.ssl = delay;
        network_.simulator().schedule(delay, [this, state, resource_index,
                                              conn]() {
          if (state->finished ||
              state->resource_done[static_cast<std::size_t>(
                  resource_index)]) {
            return;
          }
          if (!conn->alive) {
            // Torn down (e.g. by a §6.7 middlebox) before the first
            // request could be sent; the close reason propagates verbatim.
            const std::string reason =
                conn->close_reason.empty()
                    ? "connection torn down during handshake"
                    : "connection torn down during handshake: " +
                          conn->close_reason;
            if (!retry_resource(state, resource_index)) {
              complete_resource(state, resource_index, false, reason);
            }
            return;
          }
          send_request(state, resource_index, conn, false);
        });
      });
}

void WireClient::send_request(std::shared_ptr<LoadState> state,
                              int resource_index,
                              std::shared_ptr<LiveConnection> conn,
                              bool coalesced) {
  const web::Resource& res =
      state->page.resources[static_cast<std::size_t>(resource_index)];
  auto& entry = state->har.entries[static_cast<std::size_t>(resource_index)];
  entry.connection_id = conn->record.id;
  entry.server_address = conn->record.connected_address;
  entry.asn = conn->service != nullptr ? conn->service->asn : 0;

  if (!conn->alive || !conn->endpoint.open()) {
    if (!retry_resource(state, resource_index)) {
      complete_resource(state, resource_index, false,
                        "connection closed before request");
    }
    return;
  }
  auto stream_id = conn->h2->submit_request(
      server::make_get_request(res.hostname, res.path), true);
  if (!stream_id.ok()) {
    if (!retry_resource(state, resource_index)) {
      complete_resource(state, resource_index, false,
                        stream_id.error().message);
    }
    return;
  }
  conn->streams[*stream_id] = {resource_index, coalesced};
  if (conn->h2->has_output() && conn->endpoint.open()) {
    conn->endpoint.send(conn->h2->take_output());
  }

  if (!degradation_.enabled) return;
  // Request watchdog: if this attempt is still pending when it fires, the
  // stream is cancelled (RST_STREAM/CANCEL) and the resource retried.
  const int attempt = state->attempts[static_cast<std::size_t>(resource_index)];
  std::weak_ptr<LiveConnection> weak_conn = conn;
  auto weak_state = std::weak_ptr<LoadState>(state);
  const std::uint32_t sid = *stream_id;
  network_.simulator().schedule(
      degradation_.request_timeout,
      [this, weak_state, weak_conn, sid, resource_index, attempt]() {
        auto state = weak_state.lock();
        auto conn = weak_conn.lock();
        if (!state || !conn || state->finished) return;
        auto it = conn->streams.find(sid);
        if (it == conn->streams.end() || it->second.resource != resource_index) {
          return;
        }
        const auto idx = static_cast<std::size_t>(resource_index);
        if (state->resource_done[idx] || state->attempts[idx] != attempt) {
          return;
        }
        ++state->result.robustness.request_timeouts;
        const bool coalesced = it->second.coalesced;
        conn->streams.erase(it);
        if (conn->alive && conn->endpoint.open()) {
          // analyze:allow(error-discard): best-effort cancel of a stream
          // that already timed out; a failed RST_STREAM changes nothing
          (void)conn->h2->submit_rst_stream(sid, h2::ErrorCode::kCancel);
          if (conn->h2->has_output()) {
            conn->endpoint.send(conn->h2->take_output());
          }
        }
        if (coalesced) {
          add_avoid(state, state->page.resources[idx].hostname,
                    conn->record.sni);
        }
        if (!retry_resource(state, resource_index)) {
          complete_resource(state, resource_index, false,
                            "request timeout for " +
                                state->page.resources[idx].hostname);
        }
      });
}

void WireClient::complete_resource(std::shared_ptr<LoadState> state,
                                   int resource_index, bool success,
                                   const std::string& error) {
  const auto idx = static_cast<std::size_t>(resource_index);
  if (state->finished || state->resource_done[idx]) return;
  state->resource_done[idx] = 1;
  auto& entry = state->har.entries[idx];
  // Receive phase ends now; fold total elapsed into the waterfall.
  auto elapsed = network_.simulator().now() - entry.start;
  auto accounted = entry.timings.dns + entry.timings.connect + entry.timings.ssl;
  if (elapsed > accounted) {
    entry.timings.wait = elapsed - accounted;
  }
  if (!success) {
    state->har.success = false;
    state->result.errors.push_back(error);
  }
  ++state->completed;
  // Children become dispatchable after their parent's CPU-discovery delay.
  for (std::size_t i = 0; i < state->page.resources.size(); ++i) {
    const web::Resource& res = state->page.resources[i];
    if (res.parent == resource_index) {
      const int child = static_cast<int>(i);
      if (success) {
        network_.simulator().schedule(
            Duration::millis(res.discovery_cpu_ms), [this, state, child]() {
              if (state->finished) return;
              dispatch(state, child, false);
            });
      } else {
        // Parent failed: the child is never discovered.
        complete_resource(state, child, false, "parent failed");
      }
    }
  }
  maybe_finish(state);
}

void WireClient::maybe_finish(std::shared_ptr<LoadState> state) {
  if (state->finished ||
      state->completed < state->page.resources.size()) {
    return;
  }
  finish_load(state, true);
}

void WireClient::finish_load(std::shared_ptr<LoadState> state, bool complete) {
  if (state->finished) return;
  state->finished = true;
  state->result.complete = complete;
  state->result.har = state->har;
  // Drain: close what is still open (reaping the netsim connection state)
  // and release this load from active_ so long-lived clients do not
  // accumulate finished loads.
  for (auto& conn : state->pool) {
    if (conn->alive && conn->endpoint.open()) {
      conn->endpoint.close("load complete");
    }
    conn->alive = false;
  }
  std::erase(active_, state);
  if (state->done) state->done(state->result);
}

}  // namespace origin::browser
