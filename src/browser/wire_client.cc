#include "browser/wire_client.h"

#include "server/http2_server.h"
#include "tls/handshake.h"

namespace origin::browser {

using origin::util::Duration;

WireClient::WireClient(Environment& env, netsim::Network& network,
                       LoaderOptions options)
    : env_(env),
      network_(network),
      options_(std::move(options)),
      policy_(make_policy(options_.policy)) {
  if (policy_ == nullptr) policy_ = std::make_unique<ChromiumIpPolicy>();
}

void WireClient::load(const web::Webpage& page,
                      std::function<void(WireLoadResult)> done) {
  auto state = std::make_shared<LoadState>();
  state->page = page;
  state->har.tranco_rank = page.tranco_rank;
  state->har.base_hostname = page.base_hostname;
  state->har.entries.resize(page.resources.size());
  state->outstanding_children.assign(page.resources.size(), 0);
  state->resolver = std::make_unique<dns::Resolver>(
      env_.dns(), options_.resolver, resolver_seed_++);
  state->done = std::move(done);
  active_.push_back(state);

  for (std::size_t i = 0; i < page.resources.size(); ++i) {
    auto& entry = state->har.entries[i];
    entry.resource_index = static_cast<int>(i);
    entry.hostname = page.resources[i].hostname;
    entry.content_type = page.resources[i].content_type;
    entry.mode = page.resources[i].mode;
    entry.version = page.resources[i].version;
  }
  // Root resources (parent < 0) dispatch immediately; children when their
  // parent completes.
  for (std::size_t i = 0; i < page.resources.size(); ++i) {
    if (page.resources[i].parent < 0) {
      dispatch(state, static_cast<int>(i), false);
    }
  }
  if (page.resources.empty()) {
    state->result.complete = true;
    state->finished = true;
    state->done(state->result);
  }
}

void WireClient::dispatch(std::shared_ptr<LoadState> state, int resource_index,
                          bool after_421) {
  const web::Resource& res =
      state->page.resources[static_cast<std::size_t>(resource_index)];
  auto& entry = state->har.entries[static_cast<std::size_t>(resource_index)];
  entry.start = network_.simulator().now();

  const std::string pool_key =
      (res.mode == web::RequestMode::kCorsAnonymous ||
       res.mode == web::RequestMode::kFetchApi)
          ? "anon"
          : "cred";

  // Same-host reuse first; then policy coalescing (skipped when retrying
  // after a 421 — the client goes straight to a dedicated connection).
  if (!after_421) {
    for (auto& conn : state->pool) {
      if (!conn->alive || conn->record.pool_key != pool_key) continue;
      // Keep the policy view of the origin set fresh from the live h2
      // connection (ORIGIN frames may have arrived since the record was
      // created).
      conn->record.origin_set = conn->h2->origin_set();
      if (conn->record.sni == res.hostname) {
        ++state->result.coalesced_requests;
        send_request(state, resource_index, conn, true);
        return;
      }
      if (pool_key == "cred" &&
          policy_->can_decide_without_dns(conn->record, res.hostname) &&
          policy_->evaluate(conn->record, res.hostname, {}).reuse) {
        ++state->result.coalesced_requests;
        send_request(state, resource_index, conn, true);
        return;
      }
    }
  }

  // Blocking DNS query.
  auto answer = state->resolver->resolve(res.hostname, dns::Family::kV4,
                                         network_.simulator().now());
  entry.new_dns_query = !answer.from_cache;
  entry.timings.dns = answer.latency;
  network_.simulator().schedule(answer.latency, [this, state, resource_index,
                                                 answer, after_421, pool_key]() {
    const web::Resource& res =
        state->page.resources[static_cast<std::size_t>(resource_index)];
    if (!answer.ok) {
      complete_resource(state, resource_index, false,
                        "dns failure for " + res.hostname);
      return;
    }
    if (!after_421 && pool_key == "cred") {
      for (auto& conn : state->pool) {
        if (!conn->alive || conn->record.pool_key != pool_key) continue;
        conn->record.origin_set = conn->h2->origin_set();
        auto decision =
            policy_->evaluate(conn->record, res.hostname, answer.addresses);
        if (decision.reuse) {
          ++state->result.coalesced_requests;
          send_request(state, resource_index, conn, true);
          return;
        }
      }
    }
    open_connection(state, resource_index, answer, after_421);
  });
}

void WireClient::open_connection(std::shared_ptr<LoadState> state,
                                 int resource_index, const dns::Answer& answer,
                                 bool after_421) {
  const web::Resource& res =
      state->page.resources[static_cast<std::size_t>(resource_index)];
  const Service* service = env_.find_service(res.hostname);
  const dns::IpAddress address = answer.addresses.front();

  network_.connect(
      "wire-client", address,
      [this, state, resource_index, answer, address, service, after_421](
          origin::util::Result<netsim::TcpEndpoint> endpoint) {
        const web::Resource& res =
            state->page.resources[static_cast<std::size_t>(resource_index)];
        auto& entry =
            state->har.entries[static_cast<std::size_t>(resource_index)];
        if (!endpoint.ok()) {
          complete_resource(state, resource_index, false,
                            endpoint.error().message);
          return;
        }
        // TLS handshake: validate the service certificate, then price the
        // handshake RTTs by delaying h2 startup.
        if (service == nullptr || service->certificate == nullptr) {
          complete_resource(state, resource_index, false,
                            "no service for " + res.hostname);
          return;
        }
        tls::CertificateChain chain;
        chain.leaf = *service->certificate;
        auto handshake = tls::simulate_handshake(chain, options_.handshake);
        if (!handshake.ok) {
          complete_resource(state, resource_index, false,
                            "ssl protocol error (oversized certificate)");
          return;
        }
        auto outcome = env_.trust_store().validate(
            *service->certificate, res.hostname, network_.simulator().now());
        if (outcome != tls::TrustStore::Outcome::kOk) {
          complete_resource(state, resource_index, false,
                            std::string("certificate validation failed: ") +
                                tls::TrustStore::outcome_name(outcome));
          return;
        }
        entry.new_tls_connection = true;
        entry.cert_serial = service->certificate->serial;
        entry.cert_issuer = service->certificate->issuer;
        entry.cert_san_count =
            static_cast<std::int64_t>(service->certificate->san_dns.size());
        ++state->result.connections_opened;

        auto conn = std::make_shared<LiveConnection>();
        conn->service = service;
        conn->endpoint = *endpoint;
        conn->record.id = next_connection_id_++;
        conn->record.sni = res.hostname;
        conn->record.connected_address = address;
        conn->record.available_set = answer.addresses;
        conn->record.certificate = *service->certificate;
        conn->record.http2 = true;
        conn->record.pool_key =
            (res.mode == web::RequestMode::kCorsAnonymous ||
             res.mode == web::RequestMode::kFetchApi)
                ? "anon"
                : "cred";
        h2::Origin initial;
        initial.host = res.hostname;
        conn->h2 = std::make_shared<h2::Connection>(
            h2::Connection::Role::kClient, initial);
        conn->record.origin_set = conn->h2->origin_set();

        h2::ConnectionCallbacks callbacks;
        std::weak_ptr<LiveConnection> weak_conn = conn;
        auto weak_state = std::weak_ptr<LoadState>(state);
        callbacks.on_headers = [this, weak_state, weak_conn](
                                   std::uint32_t stream_id,
                                   const hpack::HeaderList& headers,
                                   bool end_stream) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn) return;
          auto it = conn->stream_to_resource.find(stream_id);
          if (it == conn->stream_to_resource.end()) return;
          const int resource_index = it->second;
          const std::string status =
              server::header_value(headers, ":status");
          auto& entry =
              state->har.entries[static_cast<std::size_t>(resource_index)];
          if (status == "421") {
            conn->stream_to_resource.erase(it);
            if (entry.status_421) {
              // Already retried once on a dedicated connection and the
              // deployment still cannot serve the authority: terminal.
              complete_resource(state, resource_index, false,
                                "421 on dedicated connection");
              return;
            }
            // Misdirected: retry on a dedicated connection (§2.2).
            entry.status_421 = true;
            ++state->result.retries_after_421;
            dispatch(state, resource_index, /*after_421=*/true);
            return;
          }
          if (end_stream) {
            conn->stream_to_resource.erase(it);
            complete_resource(state, resource_index, status == "200",
                              status == "200" ? "" : "status " + status);
          }
        };
        callbacks.on_data = [this, weak_state, weak_conn](
                                std::uint32_t stream_id,
                                std::span<const std::uint8_t>,
                                bool end_stream) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn || !end_stream) return;
          auto it = conn->stream_to_resource.find(stream_id);
          if (it == conn->stream_to_resource.end()) return;
          const int resource_index = it->second;
          conn->stream_to_resource.erase(it);
          complete_resource(state, resource_index, true, "");
        };
        conn->h2->set_callbacks(std::move(callbacks));

        conn->endpoint.set_on_receive(
            [conn](std::span<const std::uint8_t> bytes) {
              (void)conn->h2->receive(bytes);
              if (conn->h2->has_output() && conn->endpoint.open()) {
                conn->endpoint.send(conn->h2->take_output());
              }
            });
        conn->endpoint.set_on_close([this, weak_state, weak_conn](
                                        const std::string& reason) {
          auto state = weak_state.lock();
          auto conn = weak_conn.lock();
          if (!state || !conn) return;
          conn->alive = false;
          ++state->result.connections_torn_down;
          // Every in-flight request on this connection fails (§6.7: the
          // user sees broken page loads).
          auto pending = conn->stream_to_resource;
          conn->stream_to_resource.clear();
          for (const auto& [stream, resource_index] : pending) {
            complete_resource(state, resource_index, false,
                              "connection torn down: " + reason);
          }
        });

        state->pool.push_back(conn);
        // Delay the first request by the handshake cost beyond the TCP
        // round trip netsim already charged.
        auto delay = options_.link.rtt() *
                         static_cast<double>(handshake.round_trips) +
                     options_.handshake.crypto_cost;
        auto& handshake_entry =
            state->har.entries[static_cast<std::size_t>(resource_index)];
        handshake_entry.timings.connect = options_.link.rtt();
        handshake_entry.timings.ssl = delay;
        network_.simulator().schedule(
            delay, [this, state, resource_index, conn, after_421]() {
              (void)after_421;
              if (!conn->alive) {
                // Torn down (e.g. by a §6.7 middlebox) before the first
                // request could be sent.
                complete_resource(state, resource_index, false,
                                  "connection torn down during handshake");
                return;
              }
              send_request(state, resource_index, conn, false);
            });
      });
}

void WireClient::send_request(std::shared_ptr<LoadState> state,
                              int resource_index,
                              std::shared_ptr<LiveConnection> conn,
                              bool coalesced) {
  (void)coalesced;
  const web::Resource& res =
      state->page.resources[static_cast<std::size_t>(resource_index)];
  auto& entry = state->har.entries[static_cast<std::size_t>(resource_index)];
  entry.connection_id = conn->record.id;
  entry.server_address = conn->record.connected_address;
  entry.asn = conn->service != nullptr ? conn->service->asn : 0;

  if (!conn->alive || !conn->endpoint.open()) {
    complete_resource(state, resource_index, false,
                      "connection closed before request");
    return;
  }
  auto stream_id = conn->h2->submit_request(
      server::make_get_request(res.hostname, res.path), true);
  if (!stream_id.ok()) {
    complete_resource(state, resource_index, false, stream_id.error().message);
    return;
  }
  conn->stream_to_resource[*stream_id] = resource_index;
  if (conn->h2->has_output() && conn->endpoint.open()) {
    conn->endpoint.send(conn->h2->take_output());
  }
}

void WireClient::complete_resource(std::shared_ptr<LoadState> state,
                                   int resource_index, bool success,
                                   const std::string& error) {
  auto& entry = state->har.entries[static_cast<std::size_t>(resource_index)];
  // Receive phase ends now; fold total elapsed into the waterfall.
  auto elapsed = network_.simulator().now() - entry.start;
  auto accounted = entry.timings.dns + entry.timings.connect + entry.timings.ssl;
  if (elapsed > accounted) {
    entry.timings.wait = elapsed - accounted;
  }
  if (!success) {
    state->har.success = false;
    state->result.errors.push_back(error);
  }
  ++state->completed;
  // Children become dispatchable after their parent's CPU-discovery delay.
  for (std::size_t i = 0; i < state->page.resources.size(); ++i) {
    const web::Resource& res = state->page.resources[i];
    if (res.parent == resource_index) {
      const int child = static_cast<int>(i);
      if (success) {
        network_.simulator().schedule(
            Duration::millis(res.discovery_cpu_ms),
            [this, state, child]() { dispatch(state, child, false); });
      } else {
        // Parent failed: the child is never discovered.
        complete_resource(state, child, false, "parent failed");
      }
    }
  }
  maybe_finish(state);
}

void WireClient::maybe_finish(std::shared_ptr<LoadState> state) {
  if (state->finished ||
      state->completed < state->page.resources.size()) {
    return;
  }
  state->finished = true;
  state->result.complete = true;
  state->result.har = state->har;
  state->done(state->result);
  std::erase(active_, state);
}

}  // namespace origin::browser
