#include "browser/policy.h"

#include <algorithm>

namespace origin::browser {

namespace {

bool cert_covers(const ConnectionRecord& conn, const std::string& hostname) {
  return conn.certificate.covers(hostname);
}

bool contains(const std::vector<dns::IpAddress>& haystack,
              dns::IpAddress needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

bool sets_intersect(const std::vector<dns::IpAddress>& a,
                    const std::vector<dns::IpAddress>& b) {
  for (const auto& x : a) {
    if (contains(b, x)) return true;
  }
  return false;
}

}  // namespace

ReuseDecision ChromiumIpPolicy::evaluate(
    const ConnectionRecord& conn, const std::string& hostname,
    const std::vector<dns::IpAddress>& dns_answer) const {
  ReuseDecision decision;
  decision.dns_consulted = true;
  if (!conn.http2) {
    decision.reason = "h1 connection";
    return decision;
  }
  if (!cert_covers(conn, hostname)) {
    decision.reason = "certificate does not cover hostname";
    return decision;
  }
  // Connected-set only: the answer must contain the exact address this
  // connection uses. Transitivity through other answer members is lost.
  if (!contains(dns_answer, conn.connected_address)) {
    decision.reason = "connected address not in DNS answer";
    return decision;
  }
  decision.reuse = true;
  decision.reason = "ip match (connected set)";
  return decision;
}

ReuseDecision FirefoxTransitivePolicy::evaluate(
    const ConnectionRecord& conn, const std::string& hostname,
    const std::vector<dns::IpAddress>& dns_answer) const {
  ReuseDecision decision;
  decision.dns_consulted = true;
  if (!conn.http2) {
    decision.reason = "h1 connection";
    return decision;
  }
  if (!cert_covers(conn, hostname)) {
    decision.reason = "certificate does not cover hostname";
    return decision;
  }
  // ORIGIN frame first: an explicit origin set admits the hostname without
  // address checks (the DNS query still happened and was counted).
  if (conn.origin_set.received_origin_frame() &&
      conn.origin_set.contains(hostname)) {
    decision.reuse = true;
    decision.reason = "origin-set member";
    return decision;
  }
  // IP transitivity: any overlap between the connect-time available set and
  // the subresource's answer set.
  if (sets_intersect(conn.available_set, dns_answer)) {
    decision.reuse = true;
    decision.reason = "ip transitivity (available set)";
    return decision;
  }
  decision.reason = "no address overlap";
  return decision;
}

bool OriginFramePolicy::can_decide_without_dns(
    const ConnectionRecord& conn, const std::string& hostname) const {
  return conn.http2 && conn.origin_set.received_origin_frame() &&
         conn.origin_set.contains(hostname) &&
         conn.certificate.covers(hostname);
}

ReuseDecision OriginFramePolicy::evaluate(
    const ConnectionRecord& conn, const std::string& hostname,
    const std::vector<dns::IpAddress>& dns_answer) const {
  ReuseDecision decision;
  if (!conn.http2) {
    decision.dns_consulted = true;
    decision.reason = "h1 connection";
    return decision;
  }
  if (conn.origin_set.received_origin_frame() &&
      conn.origin_set.contains(hostname) &&
      conn.certificate.covers(hostname)) {
    decision.reuse = true;
    decision.dns_consulted = false;
    decision.reason = "origin-set member, no dns";
    return decision;
  }
  // Fallback: behave like Firefox's transitive IP coalescing.
  decision.dns_consulted = true;
  if (!conn.certificate.covers(hostname)) {
    decision.reason = "certificate does not cover hostname";
    return decision;
  }
  if (sets_intersect(conn.available_set, dns_answer)) {
    decision.reuse = true;
    decision.reason = "ip transitivity (available set)";
    return decision;
  }
  decision.reason = "no address overlap";
  return decision;
}

std::unique_ptr<CoalescingPolicy> make_policy(const std::string& name) {
  if (name == "chromium-ip") return std::make_unique<ChromiumIpPolicy>();
  if (name == "firefox-transitive") {
    return std::make_unique<FirefoxTransitivePolicy>();
  }
  if (name == "origin-frame") return std::make_unique<OriginFramePolicy>();
  return nullptr;
}

}  // namespace origin::browser
