// Analytic page loader: loads a Webpage against an Environment under a
// chosen coalescing policy and produces the HAR-style timeline the
// measurement and modeling layers consume.
//
// This is the WebPageTest stand-in: it reproduces the request waterfall —
// dependency-gated dispatch, per-request DNS / TCP / TLS phases, connection
// pooling with policy-driven coalescing, 421 retries, CORS pool
// partitioning, and the browser race conditions (§4.2: happy-eyeballs
// duplicate queries, speculative parallel connections) that make measured
// DNS and TLS counts diverge.
//
// The wire-level counterpart (wire_client.h) drives the same protocol
// decisions through real HTTP/2 connections over netsim; this loader exists
// so corpus-scale experiments (300K+ page loads) finish in seconds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "browser/environment.h"
#include "browser/policy.h"
#include "dns/resolver.h"
#include "netsim/network.h"
#include "tls/handshake.h"
#include "util/rng.h"
#include "web/har.h"
#include "web/resource.h"

namespace origin::browser {

struct LoaderOptions {
  std::string policy = "chromium-ip";  // see make_policy()
  netsim::LinkParams link;
  tls::HandshakeParams handshake;
  dns::Resolver::Params resolver;
  // Race-condition model (§4.2). Probabilities per *new-connection* event:
  double happy_eyeballs_extra_dns = 0.08;  // parallel AAAA/A double query
  double speculative_extra_connection = 0.05;  // duplicate socket, unused
  // Per-request chance the client must fall back after a 421 (stale
  // coalescing decision, e.g. resource moved off the socket).
  double misdirected_rate = 0.0;
  std::uint64_t seed = 1;
  // First connection id this loader hands out. Sharded collection gives
  // every site's loader a disjoint id block so connection ids stay globally
  // unique (the passive pipeline dedups on them) AND identical to the
  // serial run — ids must never depend on which worker loaded a page first.
  std::uint64_t first_connection_id = 1;
  // New browser session per page (paper method): fresh DNS cache, empty
  // connection pool.
  bool fresh_session = true;
  // Client tag the wire client connects under; middleboxes and the server's
  // per-client ORIGIN kill-switch key on it.
  std::string network_tag = "wire-client";
};

class PageLoader {
 public:
  PageLoader(Environment& env, LoaderOptions options);

  // Loads one page; returns its timeline. Deterministic given (options.seed,
  // page content, environment state).
  web::PageLoad load(const web::Webpage& page);

  // Counters across loads (speculative connections are not HAR entries but
  // do cost the network real handshakes — §4.2).
  struct RaceStats {
    std::uint64_t extra_dns_queries = 0;
    std::uint64_t extra_tls_connections = 0;
    std::uint64_t misdirected_421 = 0;
  };
  const RaceStats& race_stats() const { return race_stats_; }

 private:
  struct LiveConnection {
    ConnectionRecord record;
    const Service* service = nullptr;
    // h1 connections serialize requests; busy_until gates reuse.
    origin::util::SimTime busy_until;
  };

  Environment& env_;
  LoaderOptions options_;
  std::unique_ptr<CoalescingPolicy> policy_;
  origin::util::Rng rng_;
  RaceStats race_stats_;
  std::uint64_t next_connection_id_;
};

}  // namespace origin::browser
