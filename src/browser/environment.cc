#include "browser/environment.h"

#include "util/fnv.h"
#include "util/strings.h"

namespace origin::browser {

Environment::Environment() {
  default_ca_ = &add_ca("Repro Default CA");
}

tls::CertificateAuthority& Environment::add_ca(const std::string& name,
                                               std::size_t max_sans) {
  cas_.push_back(std::make_unique<tls::CertificateAuthority>(
      name, origin::util::fnv1a64(name), max_sans));
  trust_store_.add_ca(cas_.back().get());
  return *cas_.back();
}

tls::CertificateAuthority* Environment::find_ca(const std::string& name) {
  for (auto& ca : cas_) {
    if (ca->name() == name) return ca.get();
  }
  return nullptr;
}

Service& Environment::add_service(Service service) {
  services_.push_back(std::move(service));
  Service& added = services_.back();
  const std::size_t index = services_.size() - 1;
  for (const auto& hostname : added.served_hostnames) {
    // First registration wins, matching the previous std::map::emplace
    // semantics for hostnames served by several deployments.
    host_to_service_.emplace(hostnames_.intern(hostname), index);
    // One zone per registrable domain keeps longest-suffix resolution
    // working for sharded subdomains.
    const std::string apex = origin::util::registrable_domain(hostname);
    dns::Zone* zone = dns_.find_zone_for(hostname);
    if (zone == nullptr || zone->apex() != apex) zone = &dns_.add_zone(apex);
    // Each hostname of a multi-address deployment answers with its own
    // 2-address window into the service's address set. Windows of sibling
    // hostnames overlap (IP transitivity holds) but their first addresses
    // differ — the §2.3 situation in which Chromium's connected-set check
    // misses while Firefox's available-set check still matches, and in
    // which ideal-IP coalescing only merges some of the connections.
    if (added.addresses.size() >= 3) {
      const std::size_t offset =
          origin::util::fnv1a64(hostname) % added.addresses.size();
      zone->add_a(hostname, added.addresses[offset]);
      zone->add_a(hostname,
                  added.addresses[(offset + 1) % added.addresses.size()]);
    } else {
      for (const auto& address : added.addresses) {
        zone->add_a(hostname, address);
      }
    }
  }
  return added;
}

std::size_t Environment::service_index(std::string_view hostname) const {
  const util::SymbolId id = hostnames_.lookup(hostname);
  if (id == util::kInvalidSymbol) return kNoService;
  const std::size_t* index = host_to_service_.find(id);
  return index == nullptr ? kNoService : *index;
}

Service* Environment::find_service(const std::string& hostname) {
  const std::size_t index = service_index(hostname);
  return index == kNoService ? nullptr : &services_[index];
}

const Service* Environment::find_service(const std::string& hostname) const {
  const std::size_t index = service_index(hostname);
  return index == kNoService ? nullptr : &services_[index];
}

void Environment::repoint_dns(const std::string& hostname,
                              const std::vector<dns::IpAddress>& addresses) {
  dns::Zone* zone = dns_.find_zone_for(hostname);
  if (zone == nullptr) return;
  zone->clear_addresses(hostname);
  for (const auto& address : addresses) zone->add_a(hostname, address);
  // Keep the service's own view in sync so reachability checks (421) and
  // future connections agree with DNS.
  if (Service* service = find_service(hostname)) {
    service->addresses = addresses;
  }
}

}  // namespace origin::browser
