// Connection-coalescing policies (paper §2.3).
//
// The three implementations encode the behaviours the paper confirmed by
// code inspection and testing:
//
//  * ChromiumIpPolicy — net/http/http_stream_factory.cc behaviour: the
//    client keeps only the address it connected to; a subresource may reuse
//    the connection only if its own DNS answer contains that exact address.
//  * FirefoxTransitivePolicy — Http2Session.cpp behaviour: the client also
//    caches the *available set* returned by DNS at connect time; overlap
//    between that set and the subresource's answer set is accepted by
//    transitivity. Firefox is additionally the only browser honouring
//    ORIGIN frames — but it still issues a (blocking) DNS query for
//    origin-set members before reusing (§6.8).
//  * OriginFramePolicy — the spec-pure client the paper argues for: members
//    of an explicit origin set need no DNS query at all; certificate
//    coverage is the sole authority check (RFC 8336 §2.4).
//
// All policies require certificate coverage of the target hostname; none
// coalesce across connection-pool partitions (CORS-anonymous / fetch pools
// are keyed separately, which is what §5.3 observed in deployment).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dns/record.h"
#include "h2/origin_set.h"
#include "tls/certificate.h"

namespace origin::browser {

// Client-side record of one live connection.
struct ConnectionRecord {
  std::uint64_t id = 0;
  std::string sni;                          // hostname it was opened for
  dns::IpAddress connected_address;         // the address in use
  std::vector<dns::IpAddress> available_set;  // full DNS answer at connect
  tls::Certificate certificate;             // as validated at handshake
  h2::OriginSet origin_set{h2::Origin{}};   // updated by ORIGIN frames
  bool http2 = true;                        // h1 connections never coalesce
  std::string pool_key;                     // "cred" / "anon" partition
};

// The decision for one candidate (connection, hostname) pair.
struct ReuseDecision {
  bool reuse = false;
  // True when the policy needed a DNS answer to decide (the caller must
  // have performed — and will account — a blocking DNS query).
  bool dns_consulted = false;
  const char* reason = "";
};

class CoalescingPolicy {
 public:
  virtual ~CoalescingPolicy() = default;
  virtual const char* name() const = 0;

  // Can the decision be made without a DNS answer for `hostname`? When
  // true, evaluate() may be called with an empty answer set.
  virtual bool can_decide_without_dns(const ConnectionRecord& conn,
                                      const std::string& hostname) const = 0;

  virtual ReuseDecision evaluate(
      const ConnectionRecord& conn, const std::string& hostname,
      const std::vector<dns::IpAddress>& dns_answer) const = 0;
};

class ChromiumIpPolicy final : public CoalescingPolicy {
 public:
  const char* name() const override { return "chromium-ip"; }
  bool can_decide_without_dns(const ConnectionRecord&,
                              const std::string&) const override {
    return false;
  }
  ReuseDecision evaluate(
      const ConnectionRecord& conn, const std::string& hostname,
      const std::vector<dns::IpAddress>& dns_answer) const override;
};

class FirefoxTransitivePolicy final : public CoalescingPolicy {
 public:
  const char* name() const override { return "firefox-transitive"; }
  bool can_decide_without_dns(const ConnectionRecord&,
                              const std::string&) const override {
    // §6.8: Firefox issues blocking DNS queries even for origin-set
    // members.
    return false;
  }
  ReuseDecision evaluate(
      const ConnectionRecord& conn, const std::string& hostname,
      const std::vector<dns::IpAddress>& dns_answer) const override;
};

class OriginFramePolicy final : public CoalescingPolicy {
 public:
  const char* name() const override { return "origin-frame"; }
  bool can_decide_without_dns(const ConnectionRecord& conn,
                              const std::string& hostname) const override;
  ReuseDecision evaluate(
      const ConnectionRecord& conn, const std::string& hostname,
      const std::vector<dns::IpAddress>& dns_answer) const override;
};

std::unique_ptr<CoalescingPolicy> make_policy(const std::string& name);

}  // namespace origin::browser
