// Wire-level page loader: the same coalescing decisions as PageLoader, but
// executed over real HTTP/2 connections (frames, HPACK, flow control,
// ORIGIN frames) across the simulated network.
//
// Every protocol artifact is real here: the client opens TCP connections
// through netsim, performs simulated TLS handshakes validated against the
// trust store, receives the server's ORIGIN frame on stream 0, consults its
// coalescing policy before every subresource, retries on 421, and survives
// (or doesn't — §6.7) middlebox interference. Used by tests, examples, and
// the middlebox ablation; the analytic PageLoader covers corpus scale.
//
// Graceful degradation (DegradationOptions.enabled) layers browser-like
// robustness on top: connect/request timeouts, capped exponential backoff
// under a per-load retry budget, a coalescing avoid-list (a host pair that
// failed coalesced is retried on a dedicated connection and never
// re-coalesced, mirroring post-421/RST browser behavior), and
// GOAWAY/abrupt-close re-dispatch of in-flight streams. Every degradation
// event lands in WireLoadResult.robustness.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "browser/environment.h"
#include "browser/page_loader.h"
#include "browser/policy.h"
#include "dns/resolver.h"
#include "h2/connection.h"
#include "netsim/faults.h"
#include "netsim/network.h"
#include "web/har.h"
#include "web/resource.h"

namespace origin::browser {

// Robustness knobs. `enabled = false` (the default) reproduces the
// pre-degradation client exactly — no timeouts, no retries, no avoid-list —
// except for the load deadline, which always applies so a stalled load
// terminates with complete = false instead of hanging forever.
struct DegradationOptions {
  bool enabled = false;
  // A connect attempt whose SYN-ACK has not arrived by then is abandoned
  // (covers injected SYN blackholes).
  origin::util::Duration connect_timeout = origin::util::Duration::seconds(6);
  // A submitted request without a terminal response by then is cancelled
  // with RST_STREAM(CANCEL) and retried.
  origin::util::Duration request_timeout = origin::util::Duration::seconds(10);
  // Retry backoff: initial * multiplier^(attempt-1), capped.
  origin::util::Duration backoff_initial = origin::util::Duration::millis(50);
  double backoff_multiplier = 2.0;
  origin::util::Duration backoff_cap = origin::util::Duration::seconds(2);
  // Total retries one load may spend across all of its resources.
  int retry_budget = 16;
  // Attempts per resource (first try included).
  int max_attempts_per_resource = 4;
  bool use_avoid_list = true;
  // Hard simulated wall-clock bound on the whole load.
  origin::util::Duration load_deadline = origin::util::Duration::seconds(60);
};

struct WireLoadResult {
  web::PageLoad har;
  std::size_t connections_opened = 0;
  std::size_t coalesced_requests = 0;
  std::size_t retries_after_421 = 0;
  std::size_t connections_torn_down = 0;
  bool complete = false;  // every resource got a terminal outcome
  std::vector<std::string> errors;
  netsim::RobustnessStats robustness;
};

class WireClient {
 public:
  WireClient(Environment& env, netsim::Network& network, LoaderOptions options,
             DegradationOptions degradation = {});

  // Starts an asynchronous load; `done` fires on the simulator when every
  // resource has completed or failed (or the load deadline expired). Run
  // the simulator to completion.
  void load(const web::Webpage& page, std::function<void(WireLoadResult)> done);

 private:
  struct PendingStream {
    int resource = -1;
    bool coalesced = false;
  };

  struct LiveConnection {
    std::shared_ptr<h2::Connection> h2;
    netsim::TcpEndpoint endpoint;
    ConnectionRecord record;
    const Service* service = nullptr;
    std::map<std::uint32_t, PendingStream> streams;
    bool alive = true;
    // Set by GOAWAY: the connection finishes current streams but accepts
    // no new coalesced requests.
    bool draining = false;
    std::string close_reason;
  };

  struct LoadState {
    web::Webpage page;  // owned copy: loads outlive the caller's argument
    web::PageLoad har;
    std::vector<int> outstanding_children;  // per resource: children count
    std::size_t completed = 0;
    std::vector<std::shared_ptr<LiveConnection>> pool;
    std::unique_ptr<dns::Resolver> resolver;
    WireLoadResult result;
    std::function<void(WireLoadResult)> done;
    bool finished = false;
    // Per-resource terminal flag: guards against double completion when a
    // timeout, a teardown, and a late response race.
    std::vector<std::uint8_t> resource_done;
    // Per-resource attempt count (0 = first try) — a retry invalidates any
    // request timer armed for an earlier attempt.
    std::vector<int> attempts;
    int retry_budget_left = 0;
    // Canonical (min,max) host pairs that failed while coalesced; consulted
    // before every policy-coalescing decision.
    std::set<std::pair<std::string, std::string>> avoid;
  };

  void dispatch(std::shared_ptr<LoadState> state, int resource_index,
                bool dedicated);
  void send_request(std::shared_ptr<LoadState> state, int resource_index,
                    std::shared_ptr<LiveConnection> conn, bool coalesced);
  void open_connection(std::shared_ptr<LoadState> state, int resource_index,
                       const dns::Answer& answer, bool dedicated);
  void complete_resource(std::shared_ptr<LoadState> state, int resource_index,
                         bool success, const std::string& error);
  void maybe_finish(std::shared_ptr<LoadState> state);
  void finish_load(std::shared_ptr<LoadState> state, bool complete);

  // Schedules a retry after backoff. Returns false (caller must fail the
  // resource) when degradation is off, the budget or per-resource attempt
  // cap is exhausted, or the load already finished.
  bool retry_resource(std::shared_ptr<LoadState> state, int resource_index);
  // Immediate budget-free re-dispatch for streams a graceful GOAWAY
  // (NO_ERROR drain) left unprocessed: the server promised it never
  // touched them, so replaying on another connection is always safe and
  // costs no retry budget or backoff. Works even with degradation off;
  // still bounded by max_attempts_per_resource.
  bool redispatch_resource(std::shared_ptr<LoadState> state,
                           int resource_index);
  void add_avoid(std::shared_ptr<LoadState> state, const std::string& a,
                 const std::string& b);
  bool should_avoid(const std::shared_ptr<LoadState>& state,
                    const std::string& a, const std::string& b) const;
  // Fails pending streams of a dead connection, retrying what the budget
  // allows; `avoid_coalesced` records coalesced victims in the avoid-list.
  void fail_pending_streams(std::shared_ptr<LoadState> state,
                            std::shared_ptr<LiveConnection> conn,
                            const std::string& error, bool avoid_coalesced);

  Environment& env_;
  netsim::Network& network_;
  LoaderOptions options_;
  DegradationOptions degradation_;
  std::unique_ptr<CoalescingPolicy> policy_;
  // Keeps in-flight loads alive between simulator events (endpoint
  // callbacks hold only weak references to avoid cycles); drained as each
  // load finishes.
  std::vector<std::shared_ptr<LoadState>> active_;
  std::uint64_t next_connection_id_ = 1;
  std::uint64_t resolver_seed_ = 0x5eed;
};

}  // namespace origin::browser
