// Wire-level page loader: the same coalescing decisions as PageLoader, but
// executed over real HTTP/2 connections (frames, HPACK, flow control,
// ORIGIN frames) across the simulated network.
//
// Every protocol artifact is real here: the client opens TCP connections
// through netsim, performs simulated TLS handshakes validated against the
// trust store, receives the server's ORIGIN frame on stream 0, consults its
// coalescing policy before every subresource, retries on 421, and survives
// (or doesn't — §6.7) middlebox interference. Used by tests, examples, and
// the middlebox ablation; the analytic PageLoader covers corpus scale.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "browser/environment.h"
#include "browser/page_loader.h"
#include "browser/policy.h"
#include "dns/resolver.h"
#include "h2/connection.h"
#include "netsim/network.h"
#include "web/har.h"
#include "web/resource.h"

namespace origin::browser {

struct WireLoadResult {
  web::PageLoad har;
  std::size_t connections_opened = 0;
  std::size_t coalesced_requests = 0;
  std::size_t retries_after_421 = 0;
  std::size_t connections_torn_down = 0;
  bool complete = false;  // every resource got a terminal outcome
  std::vector<std::string> errors;
};

class WireClient {
 public:
  WireClient(Environment& env, netsim::Network& network, LoaderOptions options);

  // Starts an asynchronous load; `done` fires on the simulator when every
  // resource has completed or failed. Run the simulator to completion.
  void load(const web::Webpage& page, std::function<void(WireLoadResult)> done);

 private:
  struct LiveConnection {
    std::shared_ptr<h2::Connection> h2;
    netsim::TcpEndpoint endpoint;
    ConnectionRecord record;
    const Service* service = nullptr;
    std::map<std::uint32_t, int> stream_to_resource;
    bool alive = true;
  };

  struct LoadState {
    web::Webpage page;  // owned copy: loads outlive the caller's argument
    web::PageLoad har;
    std::vector<int> outstanding_children;  // per resource: children count
    std::size_t completed = 0;
    std::vector<std::shared_ptr<LiveConnection>> pool;
    std::unique_ptr<dns::Resolver> resolver;
    WireLoadResult result;
    std::function<void(WireLoadResult)> done;
    bool finished = false;
  };

  void dispatch(std::shared_ptr<LoadState> state, int resource_index,
                bool after_421);
  void send_request(std::shared_ptr<LoadState> state, int resource_index,
                    std::shared_ptr<LiveConnection> conn, bool coalesced);
  void open_connection(std::shared_ptr<LoadState> state, int resource_index,
                       const dns::Answer& answer, bool after_421);
  void complete_resource(std::shared_ptr<LoadState> state, int resource_index,
                         bool success, const std::string& error);
  void maybe_finish(std::shared_ptr<LoadState> state);

  Environment& env_;
  netsim::Network& network_;
  LoaderOptions options_;
  std::unique_ptr<CoalescingPolicy> policy_;
  // Keeps in-flight loads alive between simulator events (endpoint
  // callbacks hold only weak references to avoid cycles).
  std::vector<std::shared_ptr<LoadState>> active_;
  std::uint64_t next_connection_id_ = 1;
  std::uint64_t resolver_seed_ = 0x5eed;
};

}  // namespace origin::browser
