// The serving-side world a page load runs against: services (deployment
// units), their addresses, certificates, ORIGIN frame configuration, DNS
// zones, and CAs.
//
// A Service models one logical deployment — an origin server or one CDN
// customer configuration. The §4.1 model equates AS and coalescability;
// here each service carries its ASN and provider so the model layer can
// group either way.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dns/record.h"
#include "dns/zone.h"
#include "netsim/network.h"
#include "tls/ca.h"
#include "tls/certificate.h"
#include "util/flat_map.h"
#include "util/interner.h"
#include "web/resource.h"

namespace origin::browser {

struct Service {
  std::string name;
  std::uint32_t asn = 0;
  std::string provider;  // organization (Table 2 granularity)
  std::vector<dns::IpAddress> addresses;
  std::shared_ptr<tls::Certificate> certificate;
  // Hostnames this deployment can authoritatively serve on its addresses.
  // A coalesced request for a host outside this set draws a 421.
  std::set<std::string> served_hostnames;
  // ORIGIN frame support: when enabled, new connections advertise
  // `origin_advertisement` on stream 0.
  bool origin_frame_enabled = false;
  std::vector<std::string> origin_advertisement;
  // Server think time for the `wait` phase, per request.
  double server_think_ms = 8.0;
  // Path characteristics from the measurement vantage to this deployment
  // (anycast CDNs are close; single-origin sites can be far away).
  netsim::LinkParams link;

  bool serves(const std::string& hostname) const {
    return served_hostnames.contains(hostname);
  }
};

class Environment {
 public:
  static constexpr std::size_t kNoService = static_cast<std::size_t>(-1);

  Environment();

  // Registers a service and creates DNS records for `hostname`s it serves.
  Service& add_service(Service service);

  Service* find_service(const std::string& hostname);
  const Service* find_service(const std::string& hostname) const;

  // Index into services() for the deployment serving `hostname`, or
  // kNoService. Lock-free and safe to call concurrently with other
  // readers; the corpus build interns all hostnames before any parallel
  // phase reads them (DESIGN.md §10 determinism contract).
  std::size_t service_index(std::string_view hostname) const;

  // Re-points every address record of `hostname` at `addresses` (used by
  // the IP-coalescing deployment, §5.2, and undone for §5.3).
  void repoint_dns(const std::string& hostname,
                   const std::vector<dns::IpAddress>& addresses);

  dns::AuthoritativeDns& dns() { return dns_; }
  tls::TrustStore& trust_store() { return trust_store_; }

  // A shared CA used for convenience issuance in tests/examples.
  tls::CertificateAuthority& default_ca() { return *default_ca_; }
  tls::CertificateAuthority& add_ca(const std::string& name,
                                    std::size_t max_sans = 100);
  tls::CertificateAuthority* find_ca(const std::string& name);

  // Symbol table of every served hostname; the corpus layer reuses these
  // ids instead of re-hashing hostname strings.
  const util::Interner& hostnames() const { return hostnames_; }

  // Deque: service references stay valid as more services are added.
  std::deque<Service>& services() { return services_; }
  const std::deque<Service>& services() const { return services_; }

 private:
  std::deque<Service> services_;
  util::Interner hostnames_;
  util::FlatMap<util::SymbolId, std::size_t> host_to_service_;
  dns::AuthoritativeDns dns_;
  tls::TrustStore trust_store_;
  std::vector<std::unique_ptr<tls::CertificateAuthority>> cas_;
  tls::CertificateAuthority* default_ca_ = nullptr;
};

}  // namespace origin::browser
