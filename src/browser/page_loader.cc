#include "browser/page_loader.h"

#include <algorithm>

namespace origin::browser {

using origin::util::Duration;
using origin::util::SimTime;

namespace {

constexpr std::size_t kRequestBytes = 500;  // serialized request size

bool is_h2_capable(web::HttpVersion version) {
  return version == web::HttpVersion::kH2 || version == web::HttpVersion::kH3 ||
         version == web::HttpVersion::kQuic;
}

std::string pool_key_for(web::RequestMode mode) {
  // CORS-anonymous and fetch/XHR requests live in a credentialless pool and
  // never coalesce onto credentialed connections (§5.3 observation).
  switch (mode) {
    case web::RequestMode::kCorsAnonymous:
    case web::RequestMode::kFetchApi:
      return "anon";
    default:
      return "cred";
  }
}

}  // namespace

PageLoader::PageLoader(Environment& env, LoaderOptions options)
    : env_(env),
      options_(std::move(options)),
      policy_(make_policy(options_.policy)),
      rng_(options_.seed),
      next_connection_id_(options_.first_connection_id) {
  if (policy_ == nullptr) policy_ = std::make_unique<ChromiumIpPolicy>();
}

web::PageLoad PageLoader::load(const web::Webpage& page) {
  web::PageLoad result;
  result.tranco_rank = page.tranco_rank;
  result.base_hostname = page.base_hostname;

  // Fresh session per page: new resolver cache, empty pool (paper §3.1:
  // each trial used a new browser session to kill caching effects).
  origin::util::Rng page_rng = rng_.fork(page.tranco_rank + 1);
  dns::Resolver resolver(env_.dns(), options_.resolver, page_rng.next());
  std::vector<LiveConnection> pool;

  result.entries.reserve(page.resources.size());
  for (std::size_t i = 0; i < page.resources.size(); ++i) {
    const web::Resource& res = page.resources[i];
    web::HarEntry entry;
    entry.resource_index = static_cast<int>(i);
    entry.hostname = res.hostname;
    entry.version = res.recorded_version;
    entry.secure = res.secure;
    entry.mode = res.mode;
    entry.content_type = res.content_type;

    // Dependency gate: a request dispatches after its parent's response has
    // been parsed for `discovery_cpu_ms` (§4.1 keeps this CPU time fixed).
    SimTime ready;
    if (res.parent >= 0 &&
        static_cast<std::size_t>(res.parent) < result.entries.size()) {
      const auto& parent = result.entries[static_cast<std::size_t>(res.parent)];
      ready = parent.end() + Duration::millis(res.discovery_cpu_ms);
    }
    entry.start = ready;

    const Service* service = env_.find_service(res.hostname);
    if (service == nullptr) {
      // Dead reference on the page: DNS failure, no connection.
      auto answer = resolver.resolve(res.hostname, dns::Family::kV4, ready);
      entry.new_dns_query = !answer.from_cache;
      entry.timings.dns = answer.latency;
      result.entries.push_back(std::move(entry));
      continue;
    }
    entry.asn = service->asn;

    const std::string pool_key = pool_key_for(res.mode);
    const bool h2_capable = is_h2_capable(res.version) && res.secure;
    LiveConnection* chosen = nullptr;
    bool via_coalescing = false;
    Duration penalty;  // 421 retry cost, accrues into `blocked`

    // --- 1. same-host reuse -------------------------------------------
    // h2: any same-host connection multiplexes. h1: browsers cap parallel
    // connections per host (6 in practice; 2 here matches our coarser
    // request granularity) and queue on the least-busy one beyond that.
    std::size_t h1_conns_to_host = 0;
    LiveConnection* least_busy_h1 = nullptr;
    for (auto& conn : pool) {
      if (conn.record.pool_key != pool_key) continue;
      if (conn.record.sni != res.hostname) continue;
      if (conn.record.http2 && h2_capable) {
        chosen = &conn;
        break;
      }
      if (!conn.record.http2 && !h2_capable) {
        ++h1_conns_to_host;
        if (conn.busy_until <= ready) {
          chosen = &conn;  // idle keep-alive
          break;
        }
        if (least_busy_h1 == nullptr ||
            conn.busy_until < least_busy_h1->busy_until) {
          least_busy_h1 = &conn;
        }
      }
    }
    if (chosen == nullptr && least_busy_h1 != nullptr &&
        h1_conns_to_host >= 2) {
      // Queue behind the least-busy existing h1 connection; the queueing
      // delay is the request's `blocked` phase.
      chosen = least_busy_h1;
      penalty = chosen->busy_until - ready;
    }

    dns::Answer answer;
    bool resolved = false;

    // --- 2. cross-host coalescing -------------------------------------
    // Credentialless (CORS-anonymous / fetch) connections never coalesce
    // across hostnames — the obstruction §5.3 observed in deployment.
    if (chosen == nullptr && h2_capable && pool_key == "cred") {
      // 2a. without DNS (spec-pure ORIGIN clients only).
      for (auto& conn : pool) {
        if (conn.record.pool_key != pool_key || !conn.record.http2) continue;
        if (policy_->can_decide_without_dns(conn.record, res.hostname)) {
          auto decision = policy_->evaluate(conn.record, res.hostname, {});
          if (decision.reuse) {
            chosen = &conn;
            via_coalescing = true;
            break;
          }
        }
      }
      // 2b. with a blocking DNS query.
      if (chosen == nullptr) {
        answer = resolver.resolve(res.hostname, dns::Family::kV4, ready);
        resolved = true;
        entry.new_dns_query = !answer.from_cache;
        entry.timings.dns = answer.latency;
        if (answer.ok) {
          for (auto& conn : pool) {
            if (conn.record.pool_key != pool_key || !conn.record.http2) {
              continue;
            }
            auto decision =
                policy_->evaluate(conn.record, res.hostname, answer.addresses);
            if (decision.reuse) {
              chosen = &conn;
              via_coalescing = true;
              break;
            }
          }
        }
      }
    }

    // --- 3. 421 Misdirected Request -----------------------------------
    if (chosen != nullptr && via_coalescing) {
      const bool unreachable = !chosen->service->serves(res.hostname);
      const bool random_misdirect =
          options_.misdirected_rate > 0.0 &&
          page_rng.bernoulli(options_.misdirected_rate);
      if (unreachable || random_misdirect) {
        // The optimistic request costs a full round trip before the client
        // learns it must open its own connection (§2.2).
        penalty = chosen->service->link.rtt() +
                  Duration::millis(chosen->service->server_think_ms);
        entry.status_421 = true;
        ++race_stats_.misdirected_421;
        chosen = nullptr;
      }
    }

    // --- 4. new connection ---------------------------------------------
    if (chosen == nullptr) {
      if (!resolved) {
        answer = resolver.resolve(res.hostname, dns::Family::kV4, ready);
        resolved = true;
        entry.new_dns_query = !answer.from_cache;
        entry.timings.dns = answer.latency;
      }
      if (!answer.ok) {
        result.entries.push_back(std::move(entry));
        continue;
      }
      // Happy-eyeballs double query rides along with fresh resolutions.
      if (entry.new_dns_query &&
          page_rng.bernoulli(options_.happy_eyeballs_extra_dns)) {
        ++result.extra_dns_queries;
        ++race_stats_.extra_dns_queries;
      }

      LiveConnection conn;
      conn.record.id = next_connection_id_++;
      conn.record.sni = res.hostname;
      conn.record.connected_address = answer.addresses.front();
      conn.record.available_set = answer.addresses;
      conn.record.http2 = h2_capable;
      conn.record.pool_key = pool_key;
      conn.service = service;

      const netsim::LinkParams& link = service->link;
      const bool quic = res.version == web::HttpVersion::kH3 ||
                        res.version == web::HttpVersion::kQuic;
      if (!quic) entry.timings.connect = link.rtt();

      if (res.secure) {
        tls::CertificateChain chain;
        chain.leaf = *service->certificate;
        auto handshake = tls::simulate_handshake(chain, options_.handshake);
        // The handshake model reports round trips; price them at this
        // link's RTT. QUIC folds transport setup into the same flight.
        entry.timings.ssl =
            link.rtt() * static_cast<double>(handshake.round_trips) +
            options_.handshake.crypto_cost;
        if (!handshake.ok) {
          // Oversized certificate: SSL protocol error, request dies.
          result.entries.push_back(std::move(entry));
          continue;
        }
        entry.new_tls_connection = true;
        entry.cert_serial = service->certificate->serial;
        entry.cert_issuer = service->certificate->issuer;
        entry.cert_san_count =
            static_cast<std::int64_t>(service->certificate->san_dns.size());
        (void)env_.trust_store().validate(*service->certificate, res.hostname,
                                          ready);
        conn.record.certificate = *service->certificate;
        // Speculative duplicate socket (§4.2): costs a handshake, carries
        // nothing.
        if (h2_capable &&
            page_rng.bernoulli(options_.speculative_extra_connection)) {
          entry.speculative_duplicate = true;
          ++result.extra_tls_connections;
          ++race_stats_.extra_tls_connections;
        }
      }

      // ORIGIN frame arrives in the server's first flight.
      h2::Origin initial;
      initial.scheme = res.secure ? "https" : "http";
      initial.host = res.hostname;
      conn.record.origin_set = h2::OriginSet(initial);
      if (h2_capable && service->origin_frame_enabled) {
        conn.record.origin_set.apply_origin_frame(
            service->origin_advertisement);
      }
      pool.push_back(std::move(conn));
      chosen = &pool.back();
    }

    entry.connection_id = chosen->record.id;
    entry.server_address = chosen->record.connected_address;
    if (resolved && answer.ok) entry.dns_answer_set = answer.addresses;

    const netsim::LinkParams& link = service->link;
    entry.timings.blocked = penalty;
    entry.timings.send = link.transfer_time(kRequestBytes);
    entry.timings.wait =
        link.rtt() + Duration::millis(service->server_think_ms *
                                      (0.5 + page_rng.uniform_double()));
    entry.timings.receive = link.transfer_time(res.size_bytes);

    if (!chosen->record.http2) {
      chosen->busy_until = entry.end();
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

}  // namespace origin::browser
