#include "h1/message.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace origin::h1 {

namespace {

using origin::util::make_error;
using origin::util::Result;
using origin::util::Status;

std::string trim(std::string_view s) {
  std::size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

bool header_keep_alive(const std::map<std::string, std::string>& headers,
                       const std::string& version) {
  auto it = headers.find("connection");
  if (it != headers.end()) {
    const std::string value = origin::util::to_lower(it->second);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  // HTTP/1.1 defaults to persistent; 1.0 to close.
  return version == "HTTP/1.1";
}

void serialize_common(std::string& out,
                      const std::map<std::string, std::string>& headers,
                      const std::string& body) {
  const bool chunked = headers.count("transfer-encoding") > 0;
  bool wrote_length = false;
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
    if (name == "content-length") wrote_length = true;
  }
  if (!chunked && !wrote_length && !body.empty()) {
    out += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  if (chunked) {
    if (!body.empty()) {
      char size_line[32];
      std::snprintf(size_line, sizeof(size_line), "%zx\r\n", body.size());
      out += size_line;
      out += body;
      out += "\r\n";
    }
    out += "0\r\n\r\n";
  } else {
    out += body;
  }
}

}  // namespace

std::string Request::host() const {
  auto it = headers.find("host");
  return it == headers.end() ? "" : it->second;
}

bool Request::keep_alive() const { return header_keep_alive(headers, version); }
bool Response::keep_alive() const { return header_keep_alive(headers, version); }

std::string serialize(const Request& request) {
  std::string out =
      request.method + " " + request.target + " " + request.version + "\r\n";
  serialize_common(out, request.headers, request.body);
  return out;
}

std::string serialize(const Response& response) {
  std::string out = response.version + " " + std::to_string(response.status) +
                    " " + response.reason + "\r\n";
  serialize_common(out, response.headers, response.body);
  return out;
}

template <typename Message>
Status MessageParser<Message>::parse_head(std::string_view head, Message& out) {
  out = Message{};
  const auto lines = origin::util::split(std::string(head), '\n');
  if (lines.empty()) return make_error("h1: empty head");
  // Start line (strip the trailing \r).
  std::string start = lines[0];
  if (!start.empty() && start.back() == '\r') start.pop_back();
  const auto parts = origin::util::split(start, ' ');
  if constexpr (std::is_same_v<Message, Request>) {
    if (parts.size() != 3) return make_error("h1: bad request line");
    out.method = parts[0];
    out.target = parts[1];
    out.version = parts[2];
    if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0") {
      return make_error("h1: unsupported version " + out.version);
    }
  } else {
    if (parts.size() < 2) return make_error("h1: bad status line");
    out.version = parts[0];
    out.status = std::atoi(parts[1].c_str());
    if (out.status < 100 || out.status > 599) {
      return make_error("h1: bad status code");
    }
    out.reason = parts.size() > 2 ? parts[2] : "";
    for (std::size_t i = 3; i < parts.size(); ++i) out.reason += " " + parts[i];
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return make_error("h1: bad header line");
    out.headers[origin::util::to_lower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
  }
  return {};
}

template <typename Message>
Result<std::vector<Message>> MessageParser<Message>::feed(
    std::string_view bytes) {
  if (!ok_) return make_error("h1: parser poisoned");
  buffer_.append(bytes);
  std::vector<Message> complete;

  auto fail = [&](const std::string& message) -> Result<std::vector<Message>> {
    ok_ = false;
    return make_error(message);
  };

  for (;;) {
    switch (state_) {
      case State::kHeaders: {
        const auto end = buffer_.find("\r\n\r\n");
        if (end == std::string::npos) return complete;
        if (auto status = parse_head(
                std::string_view(buffer_).substr(0, end + 2), current_);
            !status.ok()) {
          return fail(status.error().message);
        }
        buffer_.erase(0, end + 4);
        const auto& headers = current_.headers;
        if (auto te = headers.find("transfer-encoding");
            te != headers.end() &&
            origin::util::to_lower(te->second).find("chunked") !=
                std::string::npos) {
          state_ = State::kChunkSize;
        } else if (auto cl = headers.find("content-length");
                   cl != headers.end()) {
          body_remaining_ =
              static_cast<std::size_t>(std::strtoull(cl->second.c_str(), nullptr, 10));
          state_ = body_remaining_ > 0 ? State::kBody : State::kHeaders;
          if (body_remaining_ == 0) complete.push_back(std::move(current_));
        } else {
          // No body framing: message ends at the head (GET requests and
          // bodyless responses in this codebase).
          complete.push_back(std::move(current_));
        }
        break;
      }
      case State::kBody: {
        const std::size_t take = std::min(body_remaining_, buffer_.size());
        current_.body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        body_remaining_ -= take;
        if (body_remaining_ > 0) return complete;
        state_ = State::kHeaders;
        complete.push_back(std::move(current_));
        break;
      }
      case State::kChunkSize: {
        const auto end = buffer_.find("\r\n");
        if (end == std::string::npos) return complete;
        chunk_remaining_ = static_cast<std::size_t>(
            std::strtoull(buffer_.substr(0, end).c_str(), nullptr, 16));
        buffer_.erase(0, end + 2);
        state_ = chunk_remaining_ > 0 ? State::kChunkData : State::kChunkTrailer;
        break;
      }
      case State::kChunkData: {
        // Chunk data plus its trailing CRLF.
        if (buffer_.size() < chunk_remaining_ + 2) return complete;
        current_.body.append(buffer_, 0, chunk_remaining_);
        if (buffer_[chunk_remaining_] != '\r' ||
            buffer_[chunk_remaining_ + 1] != '\n') {
          return fail("h1: chunk missing CRLF");
        }
        buffer_.erase(0, chunk_remaining_ + 2);
        state_ = State::kChunkSize;
        break;
      }
      case State::kChunkTrailer: {
        const auto end = buffer_.find("\r\n");
        if (end == std::string::npos) return complete;
        if (end != 0) return fail("h1: trailers unsupported");
        buffer_.erase(0, 2);
        state_ = State::kHeaders;
        complete.push_back(std::move(current_));
        break;
      }
    }
  }
}

template class MessageParser<Request>;
template class MessageParser<Response>;

}  // namespace origin::h1
