// HTTP/1.x message codec.
//
// The sharding-era substrate the paper's story begins with (§1–2): one
// request at a time per connection, keep-alive by default in 1.1, bodies
// delimited by Content-Length or chunked transfer coding. The parser is
// incremental so it runs over netsim byte streams.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace origin::h1 {

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  // Field names are case-insensitive; stored lowercase.
  std::map<std::string, std::string> headers;
  std::string body;

  std::string host() const;
  bool keep_alive() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  std::map<std::string, std::string> headers;
  std::string body;

  bool keep_alive() const;
};

// Serialization. Adds Content-Length when absent and the body is non-empty
// (unless Transfer-Encoding is set, in which case the body is emitted as a
// single chunk plus terminator).
std::string serialize(const Request& request);
std::string serialize(const Response& response);

// Incremental parser for one side of a connection. Feed bytes; complete
// messages pop out in order.
template <typename Message>
class MessageParser {
 public:
  // Appends bytes; returns all messages completed by them. A malformed
  // stream poisons the parser (ok() goes false).
  [[nodiscard]] origin::util::Result<std::vector<Message>> feed(std::string_view bytes);
  bool ok() const { return ok_; }
  std::size_t buffered() const { return buffer_.size(); }

 private:
  enum class State { kHeaders, kBody, kChunkSize, kChunkData, kChunkTrailer };

  [[nodiscard]] origin::util::Status parse_head(std::string_view head, Message& out);

  std::string buffer_;
  Message current_;
  State state_ = State::kHeaders;
  std::size_t body_remaining_ = 0;
  std::size_t chunk_remaining_ = 0;
  bool ok_ = true;
};

using RequestParser = MessageParser<Request>;
using ResponseParser = MessageParser<Response>;

}  // namespace origin::h1
